//! Machine-readable performance benchmarks for the simulation engines.
//!
//! Three head-to-head comparisons, each reported as steps/second and wall
//! milliseconds:
//!
//! 1. **compiled vs interpreted `dtsim`** — the Fig. 7 workload (the
//!    paper's Fig. 4 loop with the Fig. 5 IIR diagram inlined as primitive
//!    blocks) run on the boxed-trait interpreter and on
//!    [`dtsim::CompiledSim`];
//! 2. **batched vs sequential discrete loops** — a bank of Fig. 4
//!    recurrences advanced one [`DiscreteLoop`] at a time versus all lanes
//!    in lock-step through the SoA [`BatchLoop`] engine;
//! 3. **warm-started vs classic Fig. 9 panel** — [`fig9::run_panel`]
//!    against the coarse-to-fine [`fig9::run_panel_fast`], with the
//!    warm-up samples saved by the warm starts read back off the
//!    `margin_search.iterations_saved` telemetry counter;
//! 4. **cold vs warm result cache** — the same Fig. 9 panel through
//!    [`fig9::run_panel`] with a [`RunCtx`] cache attached, against an
//!    empty and a fully-populated on-disk store;
//! 5. **FIFO vs longest-job-first dispatch** — a synthetic sweep with a
//!    few heavy items parked at the end of the grid, scheduled in submission
//!    order versus by descending cost hint;
//! 6. **lane-count scaling** — the mixed-scheme lane bank at
//!    B ∈ {4, 16, 64, 256}: sequential `DiscreteLoop` runs vs the scalar
//!    SoA loop (`run_scalar`) vs the blocked lane-block engine (`run`),
//!    plus the multi-threaded lane-chunk dispatcher at 64+ lanes;
//! 7. **traceless summaries & Monte Carlo** — the summary-only block
//!    path ([`BatchLoop::run_summaries`]) against the traced blocked
//!    engine on the same bank, and the traceless
//!    [`McPanel`] against the per-instance
//!    pre-batch harness (one `System` event-loop run per sampled
//!    instance, the `runner::run_scheme` shape);
//! 8. **domain-bank scaling** — N uniform IIR clock domains at
//!    N ∈ {16, 64, 256}: one `DiscreteLoop` object per domain (the
//!    pre-bank ownership shape) versus the same domains as a single
//!    [`DomainBank`](adaptive_clock::bank::DomainBank) behind the
//!    traceless summary path — the shape the mesh and yield layers run.
//!
//! `repro bench --json BENCH.json` writes the whole report as JSON, so CI
//! and the committed `BENCH_*.json` trajectory files can track the numbers
//! across revisions.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use adaptive_clock::batch::{BatchLoop, BatchTrace, LaneController};
use adaptive_clock::controller::IirConfig;
use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};
use adaptive_clock::system::{Scheme as SystemScheme, SystemBuilder};
use adaptive_clock::tdc::Quantization;
use clock_telemetry::Telemetry;
use dtsim::blocks::{
    Constant, DelayN, Gain, Probe, Quantizer, Rounding, Sine, Sum, TappedDelayLine, UnitDelay,
};
use dtsim::{GraphBuilder, Simulation};
use variation::process::ProcessSpec;
use variation::sources::Harmonic;

use crate::batchrun::run_lane_chunks;
use crate::cache::SweepCache;
use crate::config::PaperParams;
use crate::fig9;
use crate::montecarlo::{McPanel, Scheme as McScheme};
use crate::render::Table;
use crate::runner::{RunCtx, RunSummary};
use crate::sweep::{parallel_map, parallel_map_planned, Plan};

/// One timed benchmark case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Case id (`"dtsim-compiled"`, `"fig9-warm-panel"`, …).
    pub name: String,
    /// What was run, in words.
    pub detail: String,
    /// Simulated steps (or samples) the timing covers.
    pub steps: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// `steps / wall seconds`.
    pub steps_per_sec: f64,
    /// Name of the baseline entry this one is compared against.
    pub baseline: Option<String>,
    /// `baseline wall_ms / this wall_ms` (> 1 means this case is faster).
    pub speedup: Option<f64>,
    /// Warm-up iterations the warm-started sweep skipped (from the
    /// `margin_search.iterations_saved` telemetry counter).
    pub iterations_saved: Option<u64>,
}

/// A full benchmark run. The `workers`/`engine_rev`/`git_rev` fields make
/// a written `BENCH_*.json` self-describing for [`compare`]: a baseline
/// taken on different hardware or a different engine generation is still
/// loadable, and the header shows what it was taken against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// True when the reduced `--quick` workloads were used (CI smoke mode).
    pub quick: bool,
    /// Set-point the workloads were built for.
    pub setpoint: i64,
    /// Sweep worker pool size when the report was taken (0 when unknown —
    /// pre-observability baselines).
    pub workers: u64,
    /// The engine fingerprint (crate version + `ENGINE_REV`s) the numbers
    /// belong to (empty when unknown).
    pub engine_rev: String,
    /// Short git revision of the working tree, when git was available.
    pub git_rev: Option<String>,
    /// The timed cases.
    pub entries: Vec<BenchEntry>,
}

// Hand-written so baselines written before the self-description fields
// existed still load (`field_or_default`); the derive would reject them.
impl serde::Deserialize for BenchReport {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("BenchReport: expected object"))?;
        Ok(BenchReport {
            quick: serde::field(obj, "quick")?,
            setpoint: serde::field(obj, "setpoint")?,
            workers: serde::field_or_default(obj, "workers")?,
            engine_rev: serde::field_or_default(obj, "engine_rev")?,
            git_rev: serde::field_or_default(obj, "git_rev")?,
            entries: serde::field(obj, "entries")?,
        })
    }
}

impl BenchReport {
    /// Look up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serialize to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable for these
    /// plain-data types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a report back from [`BenchReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Load a report from a JSON file (a committed `BENCH_*.json`).
    ///
    /// # Errors
    ///
    /// Returns a readable message for an unreadable file or a bad payload.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    }
}

/// Short git revision of the working tree, when a git binary and repo are
/// reachable from the current directory.
pub fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_owned();
    (!rev.is_empty()).then_some(rev)
}

/// Build the Fig. 7 workload as a fully-primitive `dtsim` graph: the
/// paper's Fig. 4 loop (CDN delay `M = 1`, TDC floor quantization, HoDV
/// sine, static mismatch) with the Fig. 5 IIR control filter inlined as
/// gains, sums and delays. Every block lowers to a compiled opcode, so the
/// same graph exercises both engines end to end.
pub fn build_fig7_workload(params: &PaperParams) -> Simulation {
    let c = params.setpoint as f64;
    let config = IirConfig::paper();
    let taps = config.taps_f64();
    let kexp = 2f64.powi(config.kexp_exp as i32);
    let k_star = config.k_star_f64();
    let depth = 3; // M + 2 with M = 1 (t_clk = c)

    let mut g = GraphBuilder::new();
    let c_src = g.add(Constant::new("c", c));
    // HoDV: amplitude 0.2c, period 50 clock periods (one step = one period).
    let e_src = g.add(Sine::new("e", params.amplitude(), 50.0, 0.0));
    let mu_src = g.add(Constant::new("mu", 0.05 * c));

    let cdn = g.add(DelayN::new("cdn", depth, c));
    let e_gen_delay = g.add(DelayN::new("e_gen_delay", depth, 0.0));
    let e_meas_delay = g.add(UnitDelay::new("e_meas_delay", 0.0));
    let mu_delay = g.add(DelayN::new("mu_delay", depth, 0.0));

    // τ[n] = l_RO[n−M−2] + e[n−M−2] − e[n−1] + μ[n−M−2], floor-quantized.
    let tau = g.add(Sum::new("tau", "++-+"));
    let tdc = g.add(Quantizer::new("tdc", 1.0, Rounding::Floor));
    let delta = g.add(Sum::new("delta", "+-"));

    // Fig. 5 filter: δ·kexp feeds the adder, w = z⁻¹ of k*·(x + Σ kᵢ·wᵢ),
    // output l_RO = c + w/kexp.
    let kexp_gain = g.add(Gain::new("kexp", kexp));
    let signs = "+".repeat(1 + taps.len());
    let adder = g.add(Sum::new("adder", &signs));
    let kstar_gain = g.add(Gain::new("k_star", k_star));
    let w_reg = g.add(UnitDelay::new("w", 0.0));
    let out_gain = g.add(Gain::new("kexp_inv", 1.0 / kexp));
    let base = g.add(Constant::new("base", c));
    let lro = g.add(Sum::new("lro", "++"));

    let p_tau = g.add(Probe::new("bench_tau"));
    let p_delta = g.add(Probe::new("bench_delta"));
    let p_lro = g.add(Probe::new("bench_lro"));

    let wire = |g: &mut GraphBuilder, a, ap, b, bp| {
        g.connect(a, ap, b, bp)
            .expect("bench workload wiring is statically correct");
    };
    wire(&mut g, lro, 0, cdn, 0);
    wire(&mut g, e_src, 0, e_gen_delay, 0);
    wire(&mut g, e_src, 0, e_meas_delay, 0);
    wire(&mut g, mu_src, 0, mu_delay, 0);
    wire(&mut g, cdn, 0, tau, 0);
    wire(&mut g, e_gen_delay, 0, tau, 1);
    wire(&mut g, e_meas_delay, 0, tau, 2);
    wire(&mut g, mu_delay, 0, tau, 3);
    wire(&mut g, tau, 0, tdc, 0);
    wire(&mut g, c_src, 0, delta, 0);
    wire(&mut g, tdc, 0, delta, 1);
    wire(&mut g, delta, 0, kexp_gain, 0);
    wire(&mut g, kexp_gain, 0, adder, 0);
    wire(&mut g, adder, 0, kstar_gain, 0);
    wire(&mut g, kstar_gain, 0, w_reg, 0);
    wire(&mut g, w_reg, 0, out_gain, 0);
    wire(&mut g, base, 0, lro, 0);
    wire(&mut g, out_gain, 0, lro, 1);

    // Tap bank: k1 reads w[n] directly, k2.. read the delay line on w.
    let k1 = g.add(Gain::new("k1", taps[0]));
    wire(&mut g, w_reg, 0, k1, 0);
    wire(&mut g, k1, 0, adder, 1);
    let tdl = g.add(TappedDelayLine::new("w_taps", taps.len() - 1, 0.0));
    wire(&mut g, w_reg, 0, tdl, 0);
    for (i, &k) in taps.iter().enumerate().skip(1) {
        let tap_gain = g.add(Gain::new(format!("k{}", i + 1), k));
        wire(&mut g, tdl, i - 1, tap_gain, 0);
        wire(&mut g, tap_gain, 0, adder, i + 1);
    }

    wire(&mut g, tdc, 0, p_tau, 0);
    wire(&mut g, delta, 0, p_delta, 0);
    wire(&mut g, lro, 0, p_lro, 0);

    g.build().expect("bench workload is well-formed")
}

/// The bank of discrete-loop lanes the batching benchmark advances: all
/// four controller kinds across CDN depths `M ∈ {0, 1, 2}`. Public so the
/// criterion harness (`benches/compiled.rs`) times the identical bank.
pub fn lane_specs(c: i64) -> Vec<(usize, LaneController, Quantization)> {
    let mut lanes = Vec::new();
    for i in 0..4 {
        let m = i % 3;
        lanes.push((
            m,
            LaneController::int_iir(&IirConfig::paper(), c).expect("paper config"),
            Quantization::Floor,
        ));
        lanes.push((
            m,
            LaneController::float_iir(&IirConfig::paper(), c as f64).expect("paper config"),
            Quantization::None,
        ));
        lanes.push((m, LaneController::teatime(c, 1.0), Quantization::Floor));
        lanes.push((m, LaneController::free(c), Quantization::Floor));
    }
    lanes
}

/// Lane specs for the scaling section and the lane-chunk dispatcher: the
/// same four-scheme × CDN-depth pattern as [`lane_specs`], cycled over an
/// arbitrary half-open lane range so a dispatcher chunk can rebuild
/// exactly its share of the bank.
pub fn scaling_specs(
    c: i64,
    lanes: std::ops::Range<usize>,
) -> Vec<(usize, LaneController, Quantization)> {
    lanes
        .map(|i| {
            let m = i % 3;
            match i % 4 {
                0 => (
                    m,
                    LaneController::int_iir(&IirConfig::paper(), c).expect("paper config"),
                    Quantization::Floor,
                ),
                1 => (
                    m,
                    LaneController::float_iir(&IirConfig::paper(), c as f64).expect("paper config"),
                    Quantization::None,
                ),
                2 => (m, LaneController::teatime(c, 1.0), Quantization::Floor),
                _ => (m, LaneController::free(c), Quantization::Floor),
            }
        })
        .collect()
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Repetitions per timed case: wall-clock noise on a shared box easily
/// exceeds the engine differences, so every case is timed `REPS` times and
/// the minimum (the least-disturbed run) is reported. Best-of-3 was
/// measured to still invert orderings on this hardware, and best-of-7 is
/// stable for compute-bound cases — but the memory-heavy long-horizon
/// cases show a right-skewed per-rep distribution (a measured 15-rep
/// spread of 33–85 ms for the same workload) whose minimum best-of-7
/// frequently misses. Best-of-15 pins the minima of both kinds.
const REPS: usize = 15;

fn best_ms(reps: usize, mut run_once: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| run_once()).fold(f64::INFINITY, f64::min)
}

fn entry(name: &str, detail: &str, steps: u64, wall_ms: f64) -> BenchEntry {
    BenchEntry {
        name: name.to_owned(),
        detail: detail.to_owned(),
        steps,
        wall_ms,
        steps_per_sec: steps as f64 / (wall_ms / 1e3).max(1e-12),
        baseline: None,
        speedup: None,
        iterations_saved: None,
    }
}

/// Run the full benchmark suite. `quick` shrinks every workload by roughly
/// an order of magnitude for CI smoke runs; the comparisons stay the same.
pub fn run(params: &PaperParams, quick: bool) -> BenchReport {
    let mut entries = Vec::new();

    // 1. Fig. 7 workload: interpreted vs compiled dtsim. Each rep runs a
    // freshly built engine so probe traces don't accumulate across reps.
    let dt_steps: u64 = if quick { 100_000 } else { 1_000_000 };
    let interp_ms = best_ms(REPS, || {
        let mut sim = build_fig7_workload(params);
        time_ms(|| {
            sim.run(dt_steps).expect("bench workload stays finite");
        })
    });
    let compiled_ms = best_ms(REPS, || {
        let mut sim = build_fig7_workload(params).compile();
        time_ms(|| {
            sim.run(dt_steps).expect("bench workload stays finite");
        })
    });
    let stats = build_fig7_workload(params).compile().schedule_stats();
    let detail = format!(
        "Fig. 7 workload ({} blocks, {} connections) for {dt_steps} steps",
        stats.blocks, stats.connections,
    );
    entries.push(entry(
        "dtsim-interpreted",
        &format!("{detail} on the boxed-trait interpreter"),
        dt_steps,
        interp_ms,
    ));
    let mut e = entry(
        "dtsim-compiled",
        &format!("{detail} on the enum-dispatch CompiledSim"),
        dt_steps,
        compiled_ms,
    );
    e.baseline = Some("dtsim-interpreted".to_owned());
    e.speedup = Some(interp_ms / compiled_ms.max(1e-12));
    entries.push(e);

    // 2. Discrete-loop bank: sequential DiscreteLoop vs SoA BatchLoop.
    let c = params.setpoint;
    let loop_steps: usize = if quick { 20_000 } else { 200_000 };
    let specs = lane_specs(c);
    let n_lanes = specs.len();
    let cs = constant(c as f64);
    let zero = constant(0.0);
    let amp = params.amplitude();
    let e_fn = move |n: i64| amp * (std::f64::consts::TAU * n as f64 / 37.5).sin();
    let seq_ms = best_ms(REPS, || {
        time_ms(|| {
            for (m, ctrl, q) in lane_specs(c) {
                let mut dl = DiscreteLoop::new(m, ctrl, q);
                std::hint::black_box(dl.run(
                    &LoopInputs {
                        setpoint: &cs,
                        homogeneous: &e_fn,
                        heterogeneous: &zero,
                    },
                    loop_steps,
                ));
            }
        })
    });
    let mut batch = BatchLoop::new();
    for (m, ctrl, q) in specs {
        batch.push(m, ctrl, q);
    }
    let inputs: Vec<LoopInputs<'_>> = (0..n_lanes)
        .map(|_| LoopInputs {
            setpoint: &cs,
            homogeneous: &e_fn,
            heterogeneous: &zero,
        })
        .collect();
    // Steady-state protocol: the trace is recycled between reps
    // (`run_recycled`), matching the sequential baseline whose per-lane
    // sub-threshold allocations the heap already reuses across reps. A
    // fresh 3 × 25 MB trace per rep would otherwise re-measure the
    // allocator's page-fault + zeroing cycle, not the engine.
    let mut spare = BatchTrace::default();
    let batch_ms = best_ms(REPS, || {
        batch.reset();
        let mut out = BatchTrace::default();
        let ms = time_ms(|| {
            out = batch.run_recycled(&inputs, loop_steps, std::mem::take(&mut spare));
            std::hint::black_box(&out);
        });
        spare = out;
        ms
    });
    let lane_steps = (n_lanes * loop_steps) as u64;
    entries.push(entry(
        "loop-sequential",
        &format!("{n_lanes} Fig. 4 lanes x {loop_steps} periods, one DiscreteLoop at a time"),
        lane_steps,
        seq_ms,
    ));
    let mut e = entry(
        "loop-batched",
        &format!("{n_lanes} Fig. 4 lanes x {loop_steps} periods in SoA lock-step"),
        lane_steps,
        batch_ms,
    );
    e.baseline = Some("loop-sequential".to_owned());
    e.speedup = Some(seq_ms / batch_ms.max(1e-12));
    entries.push(e);

    // 3. Fig. 9 panel: classic cold sweep vs coarse-to-fine warm starts.
    let points = if quick { 5 } else { 9 };
    let (t_clk, te) = (1.0, 37.5);
    let samples = params.samples_for(te) as u64;
    let classic_steps = 4 * points as u64 * samples;
    let bare_ctx = RunCtx::new(*params);
    let classic_ms = best_ms(REPS, || {
        time_ms(|| {
            std::hint::black_box(fig9::run_panel(&bare_ctx, t_clk, te, points));
        })
    });
    // Both panels are *timed* with telemetry disabled so the comparison is
    // engine-vs-engine, not event-emission overhead; the saved-iterations
    // counter comes from one untimed observed run afterwards.
    let fast_ms = best_ms(REPS, || {
        time_ms(|| {
            std::hint::black_box(fig9::run_panel_fast(&bare_ctx, t_clk, te, points));
        })
    });
    let telemetry = Telemetry::enabled();
    let observed_ctx = RunCtx::new(*params).with_telemetry(telemetry.clone());
    std::hint::black_box(fig9::run_panel_fast(&observed_ctx, t_clk, te, points));
    let saved = telemetry
        .snapshot()
        .counter("margin_search.iterations_saved")
        .unwrap_or(0);
    let fast_steps = classic_steps.saturating_sub(saved);
    entries.push(entry(
        "fig9-classic-panel",
        &format!("Fig. 9 panel (t_clk = {t_clk}c, Te = {te}c, {points} mu points), cold runs"),
        classic_steps,
        classic_ms,
    ));
    let mut e = entry(
        "fig9-warm-panel",
        &format!(
            "same panel, every {}-th mu cold, the rest warm-started from the \
             neighbouring settled length",
            fig9::COARSE_STRIDE
        ),
        fast_steps,
        fast_ms,
    );
    e.baseline = Some("fig9-classic-panel".to_owned());
    e.speedup = Some(classic_ms / fast_ms.max(1e-12));
    e.iterations_saved = Some(saved);
    entries.push(e);

    // 4. The same Fig. 9 panel through the result cache: every grid point
    // a miss (cold store, fresh dir per rep) vs every point a hit (store
    // populated once, reopened per rep so hits pay the disk read + decode,
    // not just the in-memory read-through).
    let cache_root = std::env::temp_dir().join(format!("repro-bench-cache-{}", std::process::id()));
    let off = Telemetry::disabled();
    let mut rep = 0u32;
    let cold_ms = best_ms(REPS, || {
        rep += 1;
        let dir = cache_root.join(format!("cold-{rep}"));
        let cache = SweepCache::persistent(&dir, &off).expect("temp cache dir");
        let ctx = RunCtx::new(*params).with_cache(cache);
        let ms = time_ms(|| {
            std::hint::black_box(fig9::run_panel(&ctx, t_clk, te, points));
        });
        let _ = std::fs::remove_dir_all(&dir);
        ms
    });
    let warm_dir = cache_root.join("warm");
    {
        let cache = SweepCache::persistent(&warm_dir, &off).expect("temp cache dir");
        let ctx = RunCtx::new(*params).with_cache(cache);
        std::hint::black_box(fig9::run_panel(&ctx, t_clk, te, points));
    }
    let warm_ms = best_ms(REPS, || {
        let cache = SweepCache::persistent(&warm_dir, &off).expect("temp cache dir");
        let ctx = RunCtx::new(*params).with_cache(cache);
        time_ms(|| {
            std::hint::black_box(fig9::run_panel(&ctx, t_clk, te, points));
        })
    });
    let _ = std::fs::remove_dir_all(&cache_root);
    entries.push(entry(
        "fig9-cold-cache",
        &format!(
            "Fig. 9 panel (t_clk = {t_clk}c, Te = {te}c, {points} mu points) \
             against an empty result cache (every point computes + writes)"
        ),
        classic_steps,
        cold_ms,
    ));
    let mut e = entry(
        "fig9-warm-cache",
        "same panel against the populated cache (every point a hit)",
        classic_steps,
        warm_ms,
    );
    e.baseline = Some("fig9-cold-cache".to_owned());
    e.speedup = Some(cold_ms / warm_ms.max(1e-12));
    entries.push(e);

    // 5. Dispatch policy on a deliberately unbalanced sweep: a few heavy
    // items parked at the *end* of the grid, where submission-order (FIFO)
    // dispatch strands them on a late worker while longest-job-first
    // starts them immediately.
    let n_items = 48usize;
    let heavy_iters: u64 = if quick { 1_000_000 } else { 4_000_000 };
    let light_iters: u64 = heavy_iters / 16;
    let costs: Vec<u64> = (0..n_items)
        .map(|i| {
            if i >= n_items - 4 {
                heavy_iters
            } else {
                light_iters
            }
        })
        .collect();
    let spin = |iters: u64| {
        let mut acc = 0f64;
        for k in 0..iters {
            acc += (k as f64).sqrt();
        }
        std::hint::black_box(acc)
    };
    let total_iters: u64 = costs.iter().sum();
    let fifo_ms = best_ms(REPS, || {
        // `parallel_map` gives every item a uniform cost hint, so the
        // stable sort leaves the submission order intact: chunked FIFO.
        time_ms(|| {
            std::hint::black_box(parallel_map(&costs, |&it| spin(it)));
        })
    });
    let ljf_ms = best_ms(REPS, || {
        time_ms(|| {
            std::hint::black_box(parallel_map_planned(
                &costs,
                |&it| Plan::<f64>::Compute(it),
                |&it| spin(it),
                &off,
            ));
        })
    });
    // On a single-core host both policies are bound by total work and tie;
    // the LJF advantage appears once workers > 1, so record the pool size.
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    entries.push(entry(
        "sweep-fifo",
        &format!(
            "{n_items}-item sweep, 4 heavy tail items ({heavy_iters} vs {light_iters} \
             spin iterations), submission-order dispatch, {workers} workers"
        ),
        total_iters,
        fifo_ms,
    ));
    let mut e = entry(
        "sweep-ljf",
        &format!(
            "same sweep, longest-job-first dispatch from per-item cost hints, \
             {workers} workers"
        ),
        total_iters,
        ljf_ms,
    );
    e.baseline = Some("sweep-fifo".to_owned());
    e.speedup = Some(fifo_ms / ljf_ms.max(1e-12));
    entries.push(e);

    // 6. Lane-count scaling: the mixed-scheme bank at B lanes through
    // three engines — one DiscreteLoop at a time, the scalar SoA loop,
    // and the blocked lane-block engine — plus the multi-threaded
    // lane-chunk dispatcher at 64+ lanes. All lanes share the setpoint
    // and HoDV closures, as sweep workloads do, so the blocked engine's
    // closure deduplication is exercised at every width.
    let scale_steps: usize = if quick { 2_000 } else { 25_000 };
    for b_lanes in [4usize, 16, 64, 256] {
        let label = format!("lanes-{b_lanes:03}");
        let lane_steps = (b_lanes * scale_steps) as u64;
        let seq_ms = best_ms(REPS, || {
            time_ms(|| {
                for (m, ctrl, q) in scaling_specs(c, 0..b_lanes) {
                    let mut dl = DiscreteLoop::new(m, ctrl, q);
                    std::hint::black_box(dl.run(
                        &LoopInputs {
                            setpoint: &cs,
                            homogeneous: &e_fn,
                            heterogeneous: &zero,
                        },
                        scale_steps,
                    ));
                }
            })
        });
        let scale_inputs: Vec<LoopInputs<'_>> = (0..b_lanes)
            .map(|_| LoopInputs {
                setpoint: &cs,
                homogeneous: &e_fn,
                heterogeneous: &zero,
            })
            .collect();
        let mut soa = BatchLoop::new();
        for (m, ctrl, q) in scaling_specs(c, 0..b_lanes) {
            soa.push(m, ctrl, q);
        }
        let soa_ms = best_ms(REPS, || {
            soa.reset();
            time_ms(|| {
                std::hint::black_box(soa.run_scalar(&scale_inputs, scale_steps));
            })
        });
        let mut blk = BatchLoop::new();
        for (m, ctrl, q) in scaling_specs(c, 0..b_lanes) {
            blk.push(m, ctrl, q);
        }
        // Same steady-state trace recycling as loop-batched above.
        let mut blk_spare = BatchTrace::default();
        let blk_ms = best_ms(REPS, || {
            blk.reset();
            let mut out = BatchTrace::default();
            let ms = time_ms(|| {
                out = blk.run_recycled(&scale_inputs, scale_steps, std::mem::take(&mut blk_spare));
                std::hint::black_box(&out);
            });
            blk_spare = out;
            ms
        });
        entries.push(entry(
            &format!("{label}-sequential"),
            &format!(
                "{b_lanes} mixed-scheme lanes x {scale_steps} periods, one DiscreteLoop at a time"
            ),
            lane_steps,
            seq_ms,
        ));
        entries.push(entry(
            &format!("{label}-soa"),
            &format!("{b_lanes} lanes x {scale_steps} periods on the scalar SoA loop (run_scalar)"),
            lane_steps,
            soa_ms,
        ));
        let mut e = entry(
            &format!("{label}-blocked"),
            &format!("{b_lanes} lanes x {scale_steps} periods on the blocked lane-block engine"),
            lane_steps,
            blk_ms,
        );
        e.baseline = Some(format!("{label}-sequential"));
        e.speedup = Some(seq_ms / blk_ms.max(1e-12));
        entries.push(e);
        if b_lanes >= 64 {
            // The dispatcher splits the same bank into 16-lane chunks over
            // the sweep worker pool. No speedup field on purpose: the
            // ratio against the single-thread engine depends on the host's
            // core count, which would make the CI regression gate compare
            // machines instead of code.
            let chunk = 16usize;
            let disp_ms = best_ms(REPS, || {
                time_ms(|| {
                    std::hint::black_box(run_lane_chunks(b_lanes, chunk, &off, |range| {
                        let mut part = BatchLoop::new();
                        for (m, ctrl, q) in scaling_specs(c, range.clone()) {
                            part.push(m, ctrl, q);
                        }
                        let part_inputs: Vec<LoopInputs<'_>> = range
                            .map(|_| LoopInputs {
                                setpoint: &cs,
                                homogeneous: &e_fn,
                                heterogeneous: &zero,
                            })
                            .collect();
                        part.run(&part_inputs, scale_steps)
                    }));
                })
            });
            entries.push(entry(
                &format!("{label}-dispatch"),
                &format!(
                    "{b_lanes} lanes x {scale_steps} periods, blocked engine in \
                     {chunk}-lane chunks across {workers} workers"
                ),
                lane_steps,
                disp_ms,
            ));
        }
    }

    // 7. Summary path & Monte Carlo: the traceless summary engine
    // against the traced blocked path on the same mixed bank, and the
    // traceless Monte Carlo panel against the per-instance pre-batch
    // harness (one full `System` event-loop run per sampled instance —
    // how `runner::run_scheme` runs every per-point experiment, and how
    // a panel had to be run before the batch engine existed).
    // Quick keeps the horizon long enough that the traced side's trace
    // still streams past cache; a short trace would sit cache-resident
    // and compress the measured ratio away from the full-run baseline.
    let sum_steps: usize = if quick { 6_000 } else { 12_000 };
    let sum_lanes = 256usize;
    let sum_inputs: Vec<LoopInputs<'_>> = (0..sum_lanes)
        .map(|_| LoopInputs {
            setpoint: &cs,
            homogeneous: &e_fn,
            heterogeneous: &zero,
        })
        .collect();
    let mut traced = BatchLoop::new();
    for (m, ctrl, q) in scaling_specs(c, 0..sum_lanes) {
        traced.push(m, ctrl, q);
    }
    // Steady-state trace recycling, as in section 2: the traced side is
    // charged for stepping + summarizing, not for first-touch faults on
    // a fresh trace allocation.
    let mut traced_spare = BatchTrace::default();
    let traced_ms = best_ms(REPS, || {
        traced.reset();
        let mut out = BatchTrace::default();
        let ms = time_ms(|| {
            out = traced.run_recycled(&sum_inputs, sum_steps, std::mem::take(&mut traced_spare));
            std::hint::black_box(out.summarize());
        });
        traced_spare = out;
        ms
    });
    let mut traceless = BatchLoop::new();
    for (m, ctrl, q) in scaling_specs(c, 0..sum_lanes) {
        traceless.push(m, ctrl, q);
    }
    let traceless_ms = best_ms(REPS, || {
        traceless.reset();
        time_ms(|| {
            std::hint::black_box(traceless.run_summaries(&sum_inputs, sum_steps));
        })
    });
    let sum_lane_steps = (sum_lanes * sum_steps) as u64;
    entries.push(entry(
        "summaries-traced",
        &format!(
            "{sum_lanes} mixed-scheme lanes x {sum_steps} periods through the \
             blocked engine, trace recycled between reps, then summarized"
        ),
        sum_lane_steps,
        traced_ms,
    ));
    let mut e = entry(
        "summaries-traceless",
        "same bank through run_summaries: blocks fold straight into 6-word \
         lane summaries, no trace ever materialized",
        sum_lane_steps,
        traceless_ms,
    );
    e.baseline = Some("summaries-traced".to_owned());
    e.speedup = Some(traced_ms / traceless_ms.max(1e-12));
    entries.push(e);

    // The Monte Carlo panel: the classic open-loop statistical-timing
    // shape — sampled process instances, margins folded over the
    // post-lock-in window. The adaptive-scheme panels (IIR, TEAtime) run
    // the same path; the free-running panel is the headline because the
    // controller arithmetic there is negligible on *both* sides, so the
    // ratio isolates the engine, not the filter.
    // Quick mode trims instances, not steps: per-run setup (system
    // build, event-loop allocations, block packing) amortizes over the
    // horizon, so shortening runs would shift the measured ratio away
    // from the committed full-panel baseline instead of just its noise.
    let (mc_instances, mc_steps, mc_warmup) = if quick {
        (256, 2_000, 500)
    } else {
        (1024, 2_000, 500)
    };
    let panel = McPanel {
        spec: ProcessSpec::paper(),
        seed: 0x0BE5_0BE5,
        instances: mc_instances,
        steps: mc_steps,
        warmup: mc_warmup,
        chunk: 128,
        sensors: 4,
        setpoint: c,
        m: 1,
        amplitude: params.amplitude(),
        te_periods: 200.0,
    };
    let mc_offsets = panel.sensed_offsets();
    let wave = Harmonic::new(panel.amplitude, panel.te_periods * c as f64, 0.0);
    let mc_naive_ms = best_ms(REPS, || {
        time_ms(|| {
            for &o in &mc_offsets {
                let system = SystemBuilder::new(c)
                    .cdn_delay(c as f64)
                    .scheme(SystemScheme::FreeRo { extra_length: 0 })
                    .single_sensor_mu(o)
                    .build()
                    .expect("bench system configuration is valid");
                let run = system.run(&wave, panel.steps).skip(panel.warmup);
                std::hint::black_box(RunSummary::of(&run));
            }
        })
    });
    let mc_traceless_ms = best_ms(REPS, || {
        time_ms(|| {
            std::hint::black_box(panel.summaries(McScheme::Free, &off));
        })
    });
    let mc_lane_steps = (panel.instances * panel.steps) as u64;
    entries.push(entry(
        "mc-panel-naive",
        &format!(
            "{mc_instances}-instance Monte Carlo margin panel x {mc_steps} periods, \
             one scalar System event-loop run per instance (the pre-batch \
             per-point harness), trace materialized then summarized"
        ),
        mc_lane_steps,
        mc_naive_ms,
    ));
    let mut e = entry(
        "mc-panel-traceless",
        "same panel through McPanel::summaries: instances batched into \
         128-lane chunks on the traceless static-mu block path",
        mc_lane_steps,
        mc_traceless_ms,
    );
    e.baseline = Some("mc-panel-naive".to_owned());
    e.speedup = Some(mc_naive_ms / mc_traceless_ms.max(1e-12));
    entries.push(e);

    // 8. Domain-bank scaling: N independent clock domains advanced as N
    // sequential DiscreteLoops (the pre-refactor ownership shape: one
    // loop object per domain, each materializing its own trace) versus
    // the same N domains held in one DomainBank and folded through the
    // traceless summary path. Uniform IIR domains so the blocked engine
    // sees full lane blocks, and shared input closures so deduplication
    // is exercised — both match how the mesh and yield layers build banks.
    let dom_steps: usize = if quick { 2_000 } else { 25_000 };
    for n_domains in [16usize, 64, 256] {
        let label = format!("domains-{n_domains:03}");
        let dom_lane_steps = (n_domains * dom_steps) as u64;
        let perloop_ms = best_ms(REPS, || {
            time_ms(|| {
                for _ in 0..n_domains {
                    let mut dl = DiscreteLoop::new(
                        1,
                        LaneController::int_iir(&IirConfig::paper(), c).expect("paper config"),
                        Quantization::Floor,
                    );
                    std::hint::black_box(dl.run(
                        &LoopInputs {
                            setpoint: &cs,
                            homogeneous: &e_fn,
                            heterogeneous: &zero,
                        },
                        dom_steps,
                    ));
                }
            })
        });
        let dom_inputs: Vec<LoopInputs<'_>> = (0..n_domains)
            .map(|_| LoopInputs {
                setpoint: &cs,
                homogeneous: &e_fn,
                heterogeneous: &zero,
            })
            .collect();
        let mut dom_bank = adaptive_clock::bank::DomainBank::new();
        for _ in 0..n_domains {
            dom_bank.push(
                1,
                LaneController::int_iir(&IirConfig::paper(), c).expect("paper config"),
                Quantization::Floor,
            );
        }
        let mut bank_loop = BatchLoop::from_bank(dom_bank);
        let bank_ms = best_ms(REPS, || {
            bank_loop.reset();
            time_ms(|| {
                std::hint::black_box(bank_loop.run_summaries(&dom_inputs, dom_steps));
            })
        });
        entries.push(entry(
            &format!("{label}-perloop"),
            &format!(
                "{n_domains} uniform IIR domains x {dom_steps} periods, one DiscreteLoop \
                 object per domain, each trace materialized"
            ),
            dom_lane_steps,
            perloop_ms,
        ));
        let mut e = entry(
            &format!("{label}-bank"),
            &format!(
                "{n_domains} domains x {dom_steps} periods as one DomainBank through \
                 the traceless summary path"
            ),
            dom_lane_steps,
            bank_ms,
        );
        e.baseline = Some(format!("{label}-perloop"));
        e.speedup = Some(perloop_ms / bank_ms.max(1e-12));
        entries.push(e);
    }

    BenchReport {
        quick,
        setpoint: params.setpoint,
        workers: workers as u64,
        engine_rev: crate::cache::engine_fingerprint(),
        git_rev: git_revision(),
        entries,
    }
}

/// One benchmark case matched between a current run and a stored baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareEntry {
    /// Case name (`BenchEntry::name`).
    pub name: String,
    /// Speedup recorded in the baseline report.
    pub baseline_speedup: f64,
    /// Speedup measured now.
    pub current_speedup: f64,
    /// Relative change: `(current - baseline) / baseline`. Negative means
    /// the optimisation bought less than it used to.
    pub delta_frac: f64,
    /// True when the loss exceeds the noise threshold.
    pub regressed: bool,
}

/// Outcome of [`compare`]: per-entry deltas plus bookkeeping on cases that
/// could not be matched up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Noise threshold the verdicts were computed with.
    pub noise: f64,
    /// Matched cases, in baseline order.
    pub entries: Vec<CompareEntry>,
    /// Baseline cases with a speedup that the current run does not have.
    pub missing: Vec<String>,
}

impl CompareReport {
    /// True when any matched entry regressed or a baseline case vanished.
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.entries.iter().any(|e| e.regressed)
    }
}

/// Default relative-loss threshold below which a speedup change is treated
/// as timer noise. Calibrated against quick-vs-full runs of the committed
/// workloads, whose speedup ratios wander by roughly ±8%; 25% keeps a wide
/// guard band on loaded CI machines while still catching a pairing whose
/// optimisation genuinely stopped working.
pub const DEFAULT_COMPARE_NOISE: f64 = 0.25;

/// Compare the optimisation speedups of `current` against a stored
/// `baseline`. Raw wall times are deliberately ignored — they track host
/// speed, not code quality — so only the dimensionless optimised-vs-naive
/// ratios are held to account. An entry regresses when its speedup drops
/// by more than `noise` relative to the baseline.
pub fn compare(current: &BenchReport, baseline: &BenchReport, noise: f64) -> CompareReport {
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.entries {
        let Some(baseline_speedup) = base.speedup else {
            continue;
        };
        match current.entry(&base.name).and_then(|e| e.speedup) {
            Some(current_speedup) => {
                let delta_frac = (current_speedup - baseline_speedup) / baseline_speedup;
                entries.push(CompareEntry {
                    name: base.name.clone(),
                    baseline_speedup,
                    current_speedup,
                    delta_frac,
                    regressed: delta_frac < -noise,
                });
            }
            None => missing.push(base.name.clone()),
        }
    }
    CompareReport {
        noise,
        entries,
        missing,
    }
}

/// Render a [`CompareReport`] as an ASCII table with a verdict line.
pub fn render_compare(report: &CompareReport, baseline: &BenchReport) -> String {
    let mut out = String::new();
    let base_rev = if baseline.engine_rev.is_empty() {
        "unknown engine".to_owned()
    } else {
        baseline.engine_rev.clone()
    };
    let git = baseline.git_rev.as_deref().unwrap_or("?");
    out.push_str(&format!(
        "baseline: {base_rev} @ git {git}, {} workers\n",
        baseline.workers
    ));
    let mut t = Table::new(vec![
        "case".to_owned(),
        "baseline x".to_owned(),
        "current x".to_owned(),
        "delta".to_owned(),
        "verdict".to_owned(),
    ]);
    for e in &report.entries {
        t.row(vec![
            e.name.clone(),
            format!("{:.2}", e.baseline_speedup),
            format!("{:.2}", e.current_speedup),
            format!("{:+.1}%", e.delta_frac * 100.0),
            if e.regressed { "REGRESSED" } else { "ok" }.to_owned(),
        ]);
    }
    out.push_str(&t.render());
    for name in &report.missing {
        out.push_str(&format!(
            "missing: baseline case `{name}` not in current run\n"
        ));
    }
    out.push_str(&format!(
        "verdict: {} (noise threshold {:.0}%)\n",
        if report.regressed() {
            "REGRESSION"
        } else {
            "no regression"
        },
        report.noise * 100.0
    ));
    out
}

/// Render a report as an ASCII table.
pub fn render(report: &BenchReport) -> String {
    let mut t = Table::new(vec![
        "case".to_owned(),
        "steps".to_owned(),
        "wall ms".to_owned(),
        "steps/s".to_owned(),
        "speedup".to_owned(),
        "iters saved".to_owned(),
    ]);
    for e in &report.entries {
        t.row(vec![
            e.name.clone(),
            e.steps.to_string(),
            format!("{:.1}", e.wall_ms),
            format!("{:.3e}", e.steps_per_sec),
            e.speedup
                .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}x")),
            e.iterations_saved
                .map_or_else(|| "-".to_owned(), |n| n.to_string()),
        ]);
    }
    let mode = if report.quick { " (quick)" } else { "" };
    format!(
        "Engine benchmarks{mode} — c = {}\n\n{}\nspeedup is baseline wall time over case wall time \
         (dtsim: interpreted/compiled; loops: sequential/batched; fig9: cold/warm-started).\n",
        report.setpoint,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The benchmark graph must behave identically on both engines —
    /// otherwise the speedup comparison is meaningless.
    #[test]
    fn workload_compiled_matches_interpreted_bitwise() {
        let params = PaperParams::default();
        let mut interp = build_fig7_workload(&params);
        let mut compiled = build_fig7_workload(&params).compile();
        assert_eq!(compiled.boxed_count(), 0, "workload must fully lower");
        interp.run(3000).expect("interpreted run stays finite");
        compiled.run(3000).expect("compiled run stays finite");
        for probe in ["bench_tau", "bench_delta", "bench_lro"] {
            assert_eq!(
                interp.trace(probe),
                compiled.trace(probe),
                "trace {probe} diverged"
            );
        }
    }

    /// The closed loop must actually regulate: τ is held near the
    /// set-point despite the HoDV and the mismatch.
    #[test]
    fn workload_loop_locks_onto_setpoint() {
        let params = PaperParams::default();
        let mut sim = build_fig7_workload(&params).compile();
        sim.run(4000).expect("clean run");
        let tau = sim.trace("bench_tau").expect("probe present");
        let tail = &tau.samples()[2000..];
        let c = params.setpoint as f64;
        let worst = tail.iter().map(|t| (t - c).abs()).fold(0.0, f64::max);
        assert!(
            worst < 0.5 * c,
            "loop failed to regulate: worst |tau - c| = {worst}"
        );
    }

    #[test]
    fn quick_report_is_complete_and_serializable() {
        let params = PaperParams::default();
        let report = run(&params, true);
        assert!(report.quick);
        for name in [
            "dtsim-interpreted",
            "dtsim-compiled",
            "loop-sequential",
            "loop-batched",
            "fig9-classic-panel",
            "fig9-warm-panel",
            "fig9-cold-cache",
            "fig9-warm-cache",
            "sweep-fifo",
            "sweep-ljf",
            "lanes-004-sequential",
            "lanes-004-soa",
            "lanes-004-blocked",
            "lanes-016-sequential",
            "lanes-016-soa",
            "lanes-016-blocked",
            "lanes-064-sequential",
            "lanes-064-soa",
            "lanes-064-blocked",
            "lanes-064-dispatch",
            "lanes-256-sequential",
            "lanes-256-soa",
            "lanes-256-blocked",
            "lanes-256-dispatch",
            "summaries-traced",
            "summaries-traceless",
            "mc-panel-naive",
            "mc-panel-traceless",
            "domains-016-perloop",
            "domains-016-bank",
            "domains-064-perloop",
            "domains-064-bank",
            "domains-256-perloop",
            "domains-256-bank",
        ] {
            let e = report.entry(name).unwrap_or_else(|| panic!("entry {name}"));
            assert!(e.steps > 0, "{name}: no steps");
            assert!(e.steps_per_sec > 0.0, "{name}: zero rate");
        }
        assert!(report.entry("dtsim-compiled").unwrap().speedup.is_some());
        assert!(report.entry("fig9-warm-cache").unwrap().speedup.is_some());
        assert!(report.entry("sweep-ljf").unwrap().speedup.is_some());
        for (fast, base) in [
            ("summaries-traceless", "summaries-traced"),
            ("mc-panel-traceless", "mc-panel-naive"),
        ] {
            let e = report.entry(fast).unwrap();
            assert_eq!(e.baseline.as_deref(), Some(base), "{fast} baseline");
            assert!(e.speedup.is_some(), "{fast} must be gated");
        }
        for lanes in ["004", "016", "064", "256"] {
            let blocked = report.entry(&format!("lanes-{lanes}-blocked")).unwrap();
            assert_eq!(
                blocked.baseline.as_deref(),
                Some(format!("lanes-{lanes}-sequential").as_str())
            );
            assert!(blocked.speedup.is_some(), "blocked {lanes} must be gated");
        }
        for domains in ["016", "064", "256"] {
            let bank = report.entry(&format!("domains-{domains}-bank")).unwrap();
            assert_eq!(
                bank.baseline.as_deref(),
                Some(format!("domains-{domains}-perloop").as_str())
            );
            assert!(bank.speedup.is_some(), "bank {domains} must be gated");
        }
        // Dispatch timings deliberately carry no speedup: the ratio would
        // compare host core counts, not code (see the section 6 comment).
        assert!(report
            .entry("lanes-064-dispatch")
            .unwrap()
            .speedup
            .is_none());
        assert!(report
            .entry("lanes-256-dispatch")
            .unwrap()
            .speedup
            .is_none());
        assert!(
            report
                .entry("fig9-warm-panel")
                .unwrap()
                .iterations_saved
                .unwrap_or(0)
                > 0,
            "warm panel must bank saved iterations"
        );
        let json = report.to_json().expect("plain data serializes");
        let back: BenchReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
        let text = render(&report);
        assert!(text.contains("dtsim-compiled"));
        assert!(text.contains("fig9-warm-panel"));
        assert_eq!(report.engine_rev, crate::cache::engine_fingerprint());
        assert!(report.workers >= 1, "worker pool size must be recorded");
    }

    /// Baselines committed before the self-description fields existed must
    /// still load, with the new fields at their defaults.
    #[test]
    fn pre_observability_baseline_still_loads() {
        let old = r#"{
            "quick": false,
            "setpoint": 40,
            "entries": [{
                "name": "dtsim-compiled",
                "detail": "x",
                "steps": 10,
                "wall_ms": 1.0,
                "steps_per_sec": 10000.0,
                "baseline": "dtsim-interpreted",
                "speedup": 2.0,
                "iterations_saved": null
            }]
        }"#;
        let report = BenchReport::from_json(old).expect("old schema loads");
        assert_eq!(report.workers, 0);
        assert_eq!(report.engine_rev, "");
        assert_eq!(report.git_rev, None);
        assert_eq!(report.entry("dtsim-compiled").unwrap().speedup, Some(2.0));
    }

    fn speedup_report(pairs: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            quick: false,
            setpoint: 40,
            workers: 4,
            engine_rev: "test-engine".to_owned(),
            git_rev: None,
            entries: pairs
                .iter()
                .map(|&(name, speedup)| BenchEntry {
                    name: name.to_owned(),
                    detail: String::new(),
                    steps: 1,
                    wall_ms: 1.0,
                    steps_per_sec: 1000.0,
                    baseline: Some("base".to_owned()),
                    speedup: Some(speedup),
                    iterations_saved: None,
                })
                .collect(),
        }
    }

    #[test]
    fn compare_flags_only_losses_beyond_noise() {
        let baseline = speedup_report(&[("a", 2.0), ("b", 3.0), ("c", 1.5)]);
        // a: tiny wobble, b: catastrophic loss, c: improvement.
        let current = speedup_report(&[("a", 1.9), ("b", 1.0), ("c", 2.0)]);
        let cmp = compare(&current, &baseline, DEFAULT_COMPARE_NOISE);
        assert!(cmp.regressed());
        let by_name = |n: &str| cmp.entries.iter().find(|e| e.name == n).unwrap();
        assert!(!by_name("a").regressed, "5% wobble is noise");
        assert!(by_name("b").regressed, "3.0x -> 1.0x is a regression");
        assert!(!by_name("c").regressed, "improvements never regress");
        let text = render_compare(&cmp, &baseline);
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("test-engine"));
    }

    #[test]
    fn compare_passes_identical_reports_and_catches_missing_cases() {
        let baseline = speedup_report(&[("a", 2.0), ("b", 3.0)]);
        let same = compare(&baseline, &baseline, DEFAULT_COMPARE_NOISE);
        assert!(!same.regressed(), "a report never regresses against itself");
        let current = speedup_report(&[("a", 2.0)]);
        let cmp = compare(&current, &baseline, DEFAULT_COMPARE_NOISE);
        assert_eq!(cmp.missing, vec!["b".to_owned()]);
        assert!(cmp.regressed(), "a vanished case counts as a regression");
    }
}
