//! The experiments-side view of the result cache: engine fingerprinting,
//! canonical key building for paper configurations, and the [`SweepCache`]
//! handle the sweeps consult per grid point.
//!
//! # What makes a key
//!
//! A cached result is only reusable if *every* input that can change the
//! numbers is part of its address. Keys therefore hash, in order:
//!
//! 1. the **engine fingerprint** ([`engine_fingerprint`]) — crate version
//!    plus the numeric-behaviour revisions of both simulation engines
//!    (`adaptive_clock::ENGINE_REV`, `dtsim::ENGINE_REV`). Bumping a
//!    revision retires every previously cached result at once;
//! 2. a **record kind** naming the payload schema (`"run-summary"`,
//!    `"fig7-errors"`, …);
//! 3. the full [`PaperParams`], the [`Scheme`] in its canonical
//!    serialization, the [`OperatingPoint`], and the explicit
//!    sample/warm-up budgets.
//!
//! The golden test in `tests/cache_keys.rs` pins one known tuple to its
//! hex digest, so any silent drift of the canonical encoding fails CI
//! instead of silently splitting (or worse, colliding) cache generations.
//!
//! # Counters
//!
//! Every lookup and store is mirrored onto the telemetry counters
//! `cache.hits`, `cache.misses` and `cache.bytes_written`, and the repro
//! CLI prints a hit/miss summary at end of run from [`SweepCache::stats`].

use std::path::Path;
use std::sync::Arc;

use adaptive_clock::system::Scheme;
use clock_rescache::{payload, Key, KeyHasher, Store, StoreStats};
use clock_telemetry::Telemetry;

use crate::config::PaperParams;
use crate::runner::OperatingPoint;

/// The engine fingerprint every cache key is namespaced under.
pub fn engine_fingerprint() -> String {
    format!(
        "adaptive-clock-repro/{}+core-r{}+dtsim-r{}",
        env!("CARGO_PKG_VERSION"),
        adaptive_clock::ENGINE_REV,
        dtsim::ENGINE_REV
    )
}

/// Start a canonical key for this engine generation.
pub fn key(kind: &str) -> KeyHasher {
    KeyHasher::new(&engine_fingerprint()).str("kind", kind)
}

/// Canonical-encoding extensions for the paper's configuration types.
pub trait CacheKeyExt: Sized {
    /// Hash every [`PaperParams`] field.
    #[must_use]
    fn params(self, params: &PaperParams) -> Self;
    /// Hash the scheme's canonical serialization.
    #[must_use]
    fn scheme(self, scheme: &Scheme) -> Self;
    /// Hash an operating point.
    #[must_use]
    fn point(self, point: OperatingPoint) -> Self;
}

impl CacheKeyExt for KeyHasher {
    fn params(self, params: &PaperParams) -> Self {
        self.i64("params.setpoint", params.setpoint)
            .f64("params.amplitude_frac", params.amplitude_frac)
            .u64("params.warmup", params.warmup as u64)
            .u64("params.min_samples", params.min_samples as u64)
            .u64("params.cycles", params.cycles as u64)
    }

    fn scheme(self, scheme: &Scheme) -> Self {
        self.str("scheme", &scheme.canonical_id())
    }

    fn point(self, point: OperatingPoint) -> Self {
        self.f64("point.t_clk_over_c", point.t_clk_over_c)
            .f64("point.te_over_c", point.te_over_c)
            .f64("point.mu_over_c", point.mu_over_c)
    }
}

/// The cache handle sweeps consult per grid point. A disabled handle turns
/// every lookup into a compute and every store into a no-op, so call sites
/// need no branching. Cloning shares the underlying store.
#[derive(Clone, Default)]
pub struct SweepCache {
    store: Option<Arc<Store>>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepCache")
            .field("enabled", &self.is_enabled())
            .field("dir", &self.store.as_ref().and_then(|s| s.dir()))
            .finish()
    }
}

impl SweepCache {
    /// The no-op handle (same as `SweepCache::default()`).
    pub fn disabled() -> Self {
        SweepCache::default()
    }

    /// A persistent cache rooted at `dir`; hits/misses/bytes are mirrored
    /// onto `telemetry` counters.
    ///
    /// # Errors
    ///
    /// Fails only when the root directory cannot be created.
    pub fn persistent(dir: impl AsRef<Path>, telemetry: &Telemetry) -> std::io::Result<Self> {
        Ok(SweepCache {
            store: Some(Arc::new(Store::open(dir.as_ref())?)),
            telemetry: telemetry.clone(),
        })
    }

    /// [`persistent`](Self::persistent), degraded to no-cache on failure.
    ///
    /// A result cache is an accelerator, not a correctness dependency: a
    /// read-only filesystem or a bad path should cost cache reuse, never
    /// the run. Open failures are reported on stderr and counted under the
    /// `cache.open_failures` telemetry counter, and the returned handle
    /// turns every lookup into a compute.
    pub fn persistent_or_disabled(dir: impl AsRef<Path>, telemetry: &Telemetry) -> Self {
        let dir = dir.as_ref();
        match SweepCache::persistent(dir, telemetry) {
            Ok(cache) => cache,
            Err(e) => {
                telemetry.counter("cache.open_failures").inc();
                eprintln!(
                    "warning: cannot open result cache {}: {e}; continuing without a cache",
                    dir.display()
                );
                SweepCache::disabled()
            }
        }
    }

    /// A memory-only cache (deduplicates repeated points within one
    /// process; nothing survives it).
    pub fn in_memory(telemetry: &Telemetry) -> Self {
        SweepCache {
            store: Some(Arc::new(Store::in_memory())),
            telemetry: telemetry.clone(),
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// The same underlying store with a different telemetry handle — how
    /// the experiment service gives every job its own hit/miss counters
    /// while all jobs share one persistent cache.
    #[must_use]
    pub fn rebind_telemetry(&self, telemetry: &Telemetry) -> SweepCache {
        SweepCache {
            store: self.store.clone(),
            telemetry: telemetry.clone(),
        }
    }

    /// Look up a flat float record. `expect_len` guards the payload schema:
    /// a record of any other arity (a stale or foreign payload) is treated
    /// as a miss and will be overwritten by the recompute.
    pub fn get_f64s(&self, key: Key, expect_len: usize) -> Option<Vec<f64>> {
        let store = self.store.as_ref()?;
        let _scope = self.telemetry.scope("cache.get");
        let decoded = store
            .get(key)
            .and_then(|bytes| payload::decode_f64s(&bytes))
            .filter(|values| values.len() == expect_len);
        match &decoded {
            Some(_) => self.telemetry.counter("cache.hits").inc(),
            None => self.telemetry.counter("cache.misses").inc(),
        }
        decoded
    }

    /// Look up a flat float record whose arity is data-dependent (windowed
    /// trace series); the caller owns schema validation.
    pub fn get_f64s_any(&self, key: Key) -> Option<Vec<f64>> {
        let store = self.store.as_ref()?;
        let _scope = self.telemetry.scope("cache.get");
        let decoded = store
            .get(key)
            .and_then(|bytes| payload::decode_f64s(&bytes));
        match &decoded {
            Some(_) => self.telemetry.counter("cache.hits").inc(),
            None => self.telemetry.counter("cache.misses").inc(),
        }
        decoded
    }

    /// Store a flat float record.
    pub fn put_f64s(&self, key: Key, values: &[f64]) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let _scope = self.telemetry.scope("cache.put");
        let bytes = payload::encode_f64s(values);
        self.telemetry
            .counter("cache.bytes_written")
            .add(bytes.len() as u64 + clock_rescache::record::HEADER_LEN as u64);
        store.put(key, &bytes);
    }

    /// Traffic counters of the underlying store, when enabled.
    pub fn stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_names_both_engine_revisions() {
        let fp = engine_fingerprint();
        assert!(fp.contains("core-r"), "{fp}");
        assert!(fp.contains("dtsim-r"), "{fp}");
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = SweepCache::disabled();
        let k = key("test").u64("x", 1).finish();
        assert!(!cache.is_enabled());
        assert!(cache.get_f64s(k, 1).is_none());
        cache.put_f64s(k, &[1.0]);
        assert!(cache.get_f64s(k, 1).is_none());
        assert!(cache.stats().is_none());
    }

    #[test]
    fn memory_cache_round_trips_and_counts() {
        let telemetry = Telemetry::enabled();
        let cache = SweepCache::in_memory(&telemetry);
        let k = key("test").u64("x", 2).finish();
        assert!(cache.get_f64s(k, 2).is_none());
        cache.put_f64s(k, &[1.5, -2.5]);
        assert_eq!(cache.get_f64s(k, 2), Some(vec![1.5, -2.5]));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert!(snap.counter("cache.bytes_written").unwrap_or(0) > 0);
    }

    #[test]
    fn unopenable_store_degrades_to_no_cache_and_counts() {
        let telemetry = Telemetry::enabled();
        // a path *under a regular file* can never become a directory
        let file = std::env::temp_dir().join(format!("cache-degrade-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let cache = SweepCache::persistent_or_disabled(file.join("store"), &telemetry);
        assert!(
            !cache.is_enabled(),
            "open failure must yield a no-op handle"
        );
        let k = key("test").u64("x", 9).finish();
        cache.put_f64s(k, &[1.0]);
        assert!(cache.get_f64s(k, 1).is_none(), "disabled handle never hits");
        assert_eq!(telemetry.snapshot().counter("cache.open_failures"), Some(1));
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn arity_mismatch_is_a_miss() {
        let cache = SweepCache::in_memory(&Telemetry::disabled());
        let k = key("test").u64("x", 3).finish();
        cache.put_f64s(k, &[1.0, 2.0, 3.0]);
        assert!(cache.get_f64s(k, 2).is_none(), "wrong arity must miss");
        assert!(cache.get_f64s(k, 3).is_some());
    }

    #[test]
    fn distinct_configurations_get_distinct_keys() {
        let params = PaperParams::default();
        let base = key("run-summary")
            .params(&params)
            .scheme(&Scheme::iir_paper())
            .point(OperatingPoint::new(1.0, 50.0))
            .finish();
        let other_scheme = key("run-summary")
            .params(&params)
            .scheme(&Scheme::TeaTime)
            .point(OperatingPoint::new(1.0, 50.0))
            .finish();
        let other_point = key("run-summary")
            .params(&params)
            .scheme(&Scheme::iir_paper())
            .point(OperatingPoint::new(1.0, 50.0).with_mu(0.1))
            .finish();
        let mut tweaked = params;
        tweaked.warmup += 1;
        let other_params = key("run-summary")
            .params(&tweaked)
            .scheme(&Scheme::iir_paper())
            .point(OperatingPoint::new(1.0, 50.0))
            .finish();
        let keys = [base, other_scheme, other_point, other_params];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(i == j, a == b, "keys {i} vs {j}");
            }
        }
    }
}
