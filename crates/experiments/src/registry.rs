//! The single table every `repro` surface is driven from: experiment ids,
//! descriptions, step budgets, bundle membership and dispatch itself.
//!
//! `repro --list`, id validation and the per-experiment runners all read
//! [`REGISTRY`], so an experiment added here is automatically listable,
//! dispatchable, and reachable through the meta bundles (`all`,
//! `extensions`, `everything`). The CLI (`src/bin/repro.rs`) owns only
//! flag parsing and the shared-handle plumbing; everything id-shaped
//! lives here.

use crate::runner::RunCtx;
use crate::{
    bench, constraints, ext_coupling, ext_faults, ext_lock, ext_mesh, ext_noise, ext_sensitivity,
    ext_stability, ext_throughput, ext_yield, fig2, fig7, fig8, fig9, table1, worked,
};

/// Everything one dispatch threads through to an experiment: the shared
/// [`RunCtx`] (parameters, result cache, telemetry) plus the CLI output
/// mode.
#[derive(Debug, Clone, Copy)]
pub struct Invocation<'a> {
    /// Parameters, result cache and telemetry for the run.
    pub ctx: &'a RunCtx,
    /// `--quick`: shrink the sweep grids for smoke runs.
    pub quick: bool,
    /// `--json`: machine-readable series on stdout instead of text.
    pub json: bool,
    /// `--json <out.json>`: write the payload to a file instead of stdout
    /// (honoured by `bench`).
    pub json_path: Option<&'a str>,
    /// `bench --compare <baseline.json>`: check the fresh report against a
    /// committed baseline and fail on regression.
    pub compare: Option<&'a str>,
    /// Relative speedup loss treated as timer noise by `--compare`
    /// (`--noise`, default [`bench::DEFAULT_COMPARE_NOISE`]).
    pub noise: f64,
}

impl Invocation<'_> {
    /// Grid size for a sweep: the classic point count, or the `--quick`
    /// shrink.
    #[must_use]
    pub fn points(&self, classic: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            classic
        }
    }
}

/// How a registry id runs.
#[derive(Debug, Clone, Copy)]
pub enum Runner {
    /// One experiment; returns `false` on failure.
    Leaf(fn(&Invocation<'_>) -> bool),
    /// A meta-id expanding to other registry ids, run in listed order.
    Bundle(&'static [&'static str]),
}

/// One `repro` experiment id: what `--list` shows and how it dispatches.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// The id given on the command line.
    pub id: &'static str,
    /// One-line description (shown by `--list`).
    pub description: &'static str,
    /// Approximate simulated-step budget (shown by `--list`; "analytic"
    /// means no time-domain simulation at all).
    pub steps: &'static str,
    /// How the id runs.
    pub runner: Runner,
}

/// The members of the `all` bundle: every paper artifact, in paper order.
const ALL: &[&str] = &[
    "table1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "worked-examples",
    "constraints",
];

/// The members of the `extensions` bundle.
const EXTENSIONS: &[&str] = &[
    "ext-sensitivity",
    "ext-throughput",
    "ext-noise",
    "ext-stability",
    "ext-lock",
    "ext-coupling",
];

/// Every dispatchable experiment, in `--list` order.
pub static REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        id: "table1",
        description: "Table I — variability taxonomy",
        steps: "static",
        runner: Runner::Leaf(run_table1),
    },
    ExperimentDef {
        id: "fig2",
        description: "Fig. 2 — worst-case induced mismatch vs t_clk/Tv",
        steps: "analytic",
        runner: Runner::Leaf(run_fig2),
    },
    ExperimentDef {
        id: "fig7",
        description: "Fig. 7 — timing-error traces for the four schemes",
        steps: "~20k steps",
        runner: Runner::Leaf(run_fig7),
    },
    ExperimentDef {
        id: "fig8",
        description: "Fig. 8 — relative adaptive period vs CDN delay / HoDV period",
        steps: "~800k steps",
        runner: Runner::Leaf(run_fig8),
    },
    ExperimentDef {
        id: "fig9",
        description: "Fig. 9 — relative adaptive period vs RO-TDC mismatch",
        steps: "~1.7M steps",
        runner: Runner::Leaf(run_fig9),
    },
    ExperimentDef {
        id: "worked-examples",
        description: "§IV worked examples (60 % / 70 % SM reduction)",
        steps: "~40k steps",
        runner: Runner::Leaf(run_worked),
    },
    ExperimentDef {
        id: "constraints",
        description: "§III-A constraints and the stability bound",
        steps: "analytic",
        runner: Runner::Leaf(run_constraints),
    },
    ExperimentDef {
        id: "bench",
        description: "engine benchmarks: compiled vs interpreted dtsim, batched loops, warm fig9, result cache, LJF dispatch",
        steps: "~3M steps",
        runner: Runner::Leaf(run_bench),
    },
    ExperimentDef {
        id: "ext-sensitivity",
        description: "z-domain prediction of the adaptation error envelope",
        steps: "~200k steps",
        runner: Runner::Leaf(run_ext_sensitivity),
    },
    ExperimentDef {
        id: "ext-throughput",
        description: "Razor-style pipeline throughput vs operated set-point",
        steps: "~80k steps",
        runner: Runner::Leaf(run_ext_throughput),
    },
    ExperimentDef {
        id: "ext-noise",
        description: "broadband (OU + SSN burst) robustness",
        steps: "~100k steps",
        runner: Runner::Leaf(run_ext_noise),
    },
    ExperimentDef {
        id: "ext-stability",
        description: "clock-domain-size stability map across gain sets",
        steps: "analytic",
        runner: Runner::Leaf(run_ext_stability),
    },
    ExperimentDef {
        id: "ext-lock",
        description: "cold-start lock time vs the modal-analysis prediction",
        steps: "~30k steps",
        runner: Runner::Leaf(run_ext_lock),
    },
    ExperimentDef {
        id: "ext-coupling",
        description: "additive (paper) vs multiplicative variation coupling",
        steps: "~20k steps",
        runner: Runner::Leaf(run_ext_coupling),
    },
    ExperimentDef {
        id: "ext-faults",
        description: "chaos sweep: fault class × rate × scheme violation/MTTR table",
        steps: "~670k steps",
        runner: Runner::Leaf(run_ext_faults),
    },
    ExperimentDef {
        id: "ext-yield",
        description: "Monte Carlo timing yield vs safety margin on the traceless batch path",
        steps: "~1M steps",
        runner: Runner::Leaf(run_ext_yield),
    },
    ExperimentDef {
        id: "ext-mesh",
        description: "GALS clock-mesh scenarios: domain failure, Byzantine neighbour, power event",
        steps: "~280k steps",
        runner: Runner::Leaf(run_ext_mesh),
    },
    ExperimentDef {
        id: "selftest-panic",
        description: "service selftest: panics on purpose (supervision demo; not in bundles)",
        steps: "instant",
        runner: Runner::Leaf(run_selftest_panic),
    },
    ExperimentDef {
        id: "selftest-slow",
        description: "service selftest: ~20 s (quick: ~2 s) cancellable idle loop (not in bundles)",
        steps: "wall-clock",
        runner: Runner::Leaf(run_selftest_slow),
    },
    ExperimentDef {
        id: "all",
        description: "bundle: every paper artifact",
        steps: "~2.6M steps",
        runner: Runner::Bundle(ALL),
    },
    ExperimentDef {
        id: "extensions",
        description: "bundle: every extension experiment",
        steps: "~450k steps",
        runner: Runner::Bundle(EXTENSIONS),
    },
    ExperimentDef {
        id: "everything",
        description: "bundle: all + extensions",
        steps: "~3M steps",
        runner: Runner::Bundle(&["all", "extensions"]),
    },
];

/// Look up a registry entry by id.
#[must_use]
pub fn find(id: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Run a registry id: a leaf directly, a bundle by running every member in
/// order — each leaf member under a `================ id ================`
/// banner, nested bundles flattened into their own members' banners.
/// Bundles always report success; unknown ids report failure.
pub fn run(id: &str, inv: &Invocation<'_>) -> bool {
    match find(id).map(|e| e.runner) {
        Some(Runner::Leaf(f)) => f(inv),
        Some(Runner::Bundle(members)) => {
            for member in members {
                match find(member).map(|e| e.runner) {
                    Some(Runner::Leaf(f)) => {
                        println!("================ {member} ================\n");
                        f(inv);
                    }
                    _ => {
                        run(member, inv);
                    }
                }
            }
            true
        }
        None => false,
    }
}

fn run_table1(_inv: &Invocation<'_>) -> bool {
    println!("{}", table1::render());
    true
}

fn run_fig2(inv: &Invocation<'_>) -> bool {
    let r = fig2::run(4.0, 401);
    if inv.json {
        println!("{}", r.to_json().expect("plain data serializes"));
    } else {
        println!("{}", fig2::render(&r));
    }
    true
}

fn run_fig7(inv: &Invocation<'_>) -> bool {
    for panel in fig7::run(inv.ctx) {
        if inv.json {
            println!("{}", panel.to_json().expect("plain data serializes"));
        } else {
            println!("{}", fig7::render(&panel));
            println!("needed safety margins (stages):");
            for (label, m) in fig7::panel_margins(&panel) {
                println!("  {label:<12} {m:.2}");
            }
            println!();
        }
    }
    true
}

fn run_fig8(inv: &Invocation<'_>) -> bool {
    let points = inv.points(17, 9);
    let upper = fig8::run_upper(inv.ctx, points);
    let lower = fig8::run_lower(inv.ctx, points);
    if inv.json {
        println!("{}", upper.to_json().expect("plain data serializes"));
        println!("{}", lower.to_json().expect("plain data serializes"));
    } else {
        println!("{}", fig8::render(&upper, "t_clk/c"));
        println!("{}", fig8::render(&lower, "Te/c"));
    }
    true
}

fn run_fig9(inv: &Invocation<'_>) -> bool {
    for panel in fig9::run(inv.ctx, inv.points(9, 5)) {
        if inv.json {
            println!("{}", panel.to_json().expect("plain data serializes"));
        } else {
            println!("{}", fig9::render(&panel));
        }
    }
    true
}

fn run_worked(_inv: &Invocation<'_>) -> bool {
    println!("{}", worked::render(&worked::run()));
    true
}

fn run_constraints(_inv: &Invocation<'_>) -> bool {
    println!("{}", constraints::render(&constraints::run(30)));
    true
}

/// Run the engine benchmark suite and emit the report as a table, as JSON
/// on stdout, or as a JSON file when `--json <out.json>` named one. With
/// `--compare <baseline.json>` the fresh speedups are then checked against
/// the stored baseline, and a regression fails the run.
fn run_bench(inv: &Invocation<'_>) -> bool {
    let report = bench::run(&inv.ctx.params, inv.quick);
    if let Some(path) = inv.json_path {
        let payload = report.to_json().expect("plain data serializes");
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            return false;
        }
        println!("{}", bench::render(&report));
        println!("bench report written to {path}");
    } else if inv.json {
        println!("{}", report.to_json().expect("plain data serializes"));
    } else {
        println!("{}", bench::render(&report));
    }
    if let Some(path) = inv.compare {
        let baseline = match bench::BenchReport::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return false;
            }
        };
        let cmp = bench::compare(&report, &baseline, inv.noise);
        println!("{}", bench::render_compare(&cmp, &baseline));
        if cmp.regressed() {
            eprintln!("error: benchmark speedups regressed against {path}");
            return false;
        }
    }
    true
}

fn run_ext_sensitivity(inv: &Invocation<'_>) -> bool {
    let r = ext_sensitivity::run(inv.ctx, inv.points(13, 7));
    if inv.json {
        println!("{}", r.to_json().expect("plain data serializes"));
    } else {
        println!("{}", ext_sensitivity::render(&r));
    }
    true
}

fn run_ext_throughput(inv: &Invocation<'_>) -> bool {
    let r = ext_throughput::run(inv.ctx, 8);
    if inv.json {
        println!("{}", r.to_json().expect("plain data serializes"));
    } else {
        println!("{}", ext_throughput::render(&r));
    }
    true
}

fn run_ext_noise(inv: &Invocation<'_>) -> bool {
    let seeds: &[u64] = if inv.quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let r = ext_noise::run(inv.ctx, seeds);
    if inv.json {
        println!("{}", r.to_json().expect("plain data serializes"));
    } else {
        println!("{}", ext_noise::render(&r));
    }
    true
}

fn run_ext_stability(_inv: &Invocation<'_>) -> bool {
    println!("{}", ext_stability::render(&ext_stability::run(300)));
    true
}

fn run_ext_lock(_inv: &Invocation<'_>) -> bool {
    println!("{}", ext_lock::render(&ext_lock::run()));
    true
}

fn run_ext_coupling(inv: &Invocation<'_>) -> bool {
    println!("{}", ext_coupling::render(&ext_coupling::run(inv.ctx)));
    true
}

fn run_ext_faults(inv: &Invocation<'_>) -> bool {
    println!(
        "{}",
        ext_faults::render(&ext_faults::run(inv.ctx, inv.quick))
    );
    true
}

fn run_ext_mesh(inv: &Invocation<'_>) -> bool {
    println!("{}", ext_mesh::render(&ext_mesh::run(inv.ctx, inv.quick)));
    true
}

fn run_ext_yield(inv: &Invocation<'_>) -> bool {
    println!("{}", ext_yield::render(&ext_yield::run(inv.ctx, inv.quick)));
    true
}

fn run_selftest_panic(_inv: &Invocation<'_>) -> bool {
    crate::service::selftest_panic()
}

fn run_selftest_slow(inv: &Invocation<'_>) -> bool {
    crate::service::selftest_slow(inv.ctx, inv.quick)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_unique() {
        let mut seen = BTreeSet::new();
        for def in REGISTRY {
            assert!(seen.insert(def.id), "duplicate registry id {}", def.id);
        }
    }

    #[test]
    fn bundle_members_resolve_to_registry_entries() {
        for def in REGISTRY {
            if let Runner::Bundle(members) = def.runner {
                for member in members {
                    assert!(
                        find(member).is_some(),
                        "{}: bundle member {member} is not a registry id",
                        def.id
                    );
                }
            }
        }
    }

    /// `everything` must transitively reach every leaf except `bench`
    /// (which is a benchmark, not a paper artifact or extension),
    /// `ext-faults` (the chaos sweep is opt-in so the `everything`
    /// golden fixture stays fault-free and byte-stable), `ext-yield`
    /// (the Monte Carlo panel is opt-in for the same reason — the MC
    /// path stays inert unless explicitly invoked), `ext-mesh` (the
    /// clock-mesh scenarios run standalone so the golden fixture never
    /// depends on the mesh layer) and the `selftest-*` ids (service
    /// supervision probes: one panics on purpose, one idles for seconds —
    /// neither belongs in a bundle).
    #[test]
    fn everything_covers_every_leaf_but_bench() {
        fn expand(id: &str, into: &mut BTreeSet<&'static str>) {
            match find(id).expect("resolvable").runner {
                Runner::Leaf(_) => {
                    into.insert(find(id).expect("resolvable").id);
                }
                Runner::Bundle(members) => {
                    for m in members {
                        expand(m, into);
                    }
                }
            }
        }
        let mut reached = BTreeSet::new();
        expand("everything", &mut reached);
        let leaves: BTreeSet<&str> = REGISTRY
            .iter()
            .filter(|d| {
                matches!(d.runner, Runner::Leaf(_))
                    && d.id != "bench"
                    && d.id != "ext-faults"
                    && d.id != "ext-yield"
                    && d.id != "ext-mesh"
                    && !d.id.starts_with("selftest-")
            })
            .map(|d| d.id)
            .collect();
        assert_eq!(reached, leaves);
    }
}
