//! Monte Carlo statistical timing on the traceless lane-block path.
//!
//! A Monte Carlo *panel* samples thousands of process instances from a
//! seeded [`ProcessSpec`], maps each instance to one **lane** of the
//! blocked batch engine (its sampled static mismatch entering through
//! the heterogeneous input, exactly where the paper's distributed TDC
//! sensors would observe it), and steps all instances at once through
//! [`BatchLoop::run_summaries`] — the summary-only path that never
//! materializes a `BatchTrace`. Per-instance results come back as
//! 6-word [`LaneSummary`] values and fold into streaming statistics:
//! mean/σ via [`Welford`], quantiles via the telemetry
//! [`QuantileSketch`] whose deterministic `merge` recombines per-chunk
//! sketches in lane order, so the panel's numbers are identical for any
//! chunk size and any `REPRO_THREADS` worker count.
//!
//! Everything is a pure function of `(spec, seed, instance)`: the
//! sampler carries no RNG state, so panels are reproducible, cacheable
//! (the `ext-yield` experiment keys its cache on the distribution spec
//! + seed + engine fingerprint), and embarrassingly parallel.
//!
//! [`naive_summaries`](McPanel::naive_summaries) keeps the honest
//! parity reference alive: one scalar [`DiscreteLoop`] per instance,
//! full trace materialized, then summarized. Its summaries are
//! **bit-identical** to the traceless path (the differential suite pins
//! this), which is what makes the two *the same computation*, faster.
//! `BENCH_5`'s `mc-panel-naive` denominator is the heavier incumbent:
//! one full `System` event-loop run per instance (the
//! `runner::run_scheme` shape every per-point experiment used before
//! the batch engine existed).

use adaptive_clock::batch::{BatchLoop, LaneController, LaneSummary};
use adaptive_clock::controller::IirConfig;
use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};
use adaptive_clock::tdc::Quantization;
use clock_telemetry::{QuantileSketch, Telemetry};
use variation::process::ProcessSpec;
use variation::spatial::Position;

use crate::batchrun::run_summary_chunks;

/// Control schemes a Monte Carlo panel sweeps (the closed-loop line-up
/// of the paper plus the free-running strawman).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's integer IIR controller.
    IntIir,
    /// The TEAtime bang-bang baseline.
    TeaTime,
    /// No feedback at all.
    Free,
}

/// Every scheme, in table order.
pub const SCHEMES: [Scheme; 3] = [Scheme::IntIir, Scheme::TeaTime, Scheme::Free];

impl Scheme {
    /// Table / cache-key label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::IntIir => "IIR RO",
            Scheme::TeaTime => "TEAtime RO",
            Scheme::Free => "Free RO",
        }
    }

    /// Build the lane controller for a set-point.
    pub fn controller(&self, setpoint: i64) -> LaneController {
        match self {
            Scheme::IntIir => LaneController::int_iir(&IirConfig::paper(), setpoint)
                .expect("paper IIR gains are a valid configuration"),
            Scheme::TeaTime => LaneController::teatime(setpoint, 1.0),
            Scheme::Free => LaneController::free(setpoint),
        }
    }
}

/// One Monte Carlo panel: a process distribution, a seed, and the
/// workload every sampled instance runs.
#[derive(Debug, Clone, PartialEq)]
pub struct McPanel {
    /// Process distribution instances are drawn from.
    pub spec: ProcessSpec,
    /// Master seed; `(spec, seed, instance)` fully determines a draw.
    pub seed: u64,
    /// Sampled process instances (= lanes in the batch).
    pub instances: usize,
    /// Periods each instance is stepped.
    pub steps: usize,
    /// Lock-in periods excluded from the margin folds (instances are
    /// stepped from period 0; statistics cover `warmup..steps`).
    pub warmup: usize,
    /// Lanes per dispatch chunk (one chunk = one `BatchLoop` on one
    /// worker).
    pub chunk: usize,
    /// TDC sensor grid size; the loop observes the mean sampled offset
    /// over these sites.
    pub sensors: usize,
    /// Set-point `c` in stages.
    pub setpoint: i64,
    /// Clock-distribution delay `m` in periods.
    pub m: usize,
    /// Background HoDV amplitude in stages.
    pub amplitude: f64,
    /// Background HoDV period in clock periods.
    pub te_periods: f64,
}

impl McPanel {
    /// What each instance's sensors observe: the mean sampled static
    /// offset over the sensor grid, per instance. Pure in
    /// `(spec, seed)`, so any chunking sees identical values.
    pub fn sensed_offsets(&self) -> Vec<f64> {
        let sampler = self.spec.sampler(self.seed);
        let sites = Position::grid(self.sensors);
        (0..self.instances as u64)
            .map(|i| sampler.sensed_offset(i, &sites))
            .collect()
    }

    fn hodv(&self) -> impl Fn(i64) -> f64 + Sync + '_ {
        let (amp, te) = (self.amplitude, self.te_periods);
        move |n: i64| amp * (std::f64::consts::TAU * n as f64 / te).sin()
    }

    /// Run the panel through the traceless chunked path: per-instance
    /// [`LaneSummary`] values in instance order, bit-identical for any
    /// chunk size or worker count (and to
    /// [`naive_summaries`](Self::naive_summaries)).
    ///
    /// Counters `mc.samples`, `mc.batches` and `mc.summary_lane_steps`
    /// account the work; the block kernels land on the
    /// `engine.batch.summaries` span under `--profile`.
    pub fn summaries(&self, scheme: Scheme, telemetry: &Telemetry) -> Vec<LaneSummary> {
        let offsets = self.sensed_offsets();
        let setpoint = constant(self.setpoint as f64);
        let hodv = self.hodv();
        let out = run_summary_chunks(self.instances, self.chunk.max(1), telemetry, |r| {
            let mut batch = BatchLoop::new();
            for _ in r.clone() {
                batch.push(
                    self.m,
                    scheme.controller(self.setpoint),
                    Quantization::Floor,
                );
            }
            // The sampled offsets are step-invariant, so they ride the
            // static-μ fast path: no per-lane closure, no μ ring traffic,
            // bit-identical to per-lane `constant(offset)` closures.
            batch.run_summaries_static(&setpoint, &hodv, &offsets[r], self.steps, self.warmup)
        });
        telemetry.counter("mc.samples").add(self.instances as u64);
        telemetry
            .counter("mc.batches")
            .add(self.instances.div_ceil(self.chunk.max(1)) as u64);
        telemetry
            .counter("mc.summary_lane_steps")
            .add((self.instances * self.steps) as u64);
        out
    }

    /// The naive per-instance parity reference: one scalar
    /// [`DiscreteLoop`] per instance, full
    /// [`LoopTrace`](adaptive_clock::loopsim::LoopTrace) materialized,
    /// then folded into a summary with the same arithmetic as
    /// [`BatchTrace::summarize`](adaptive_clock::batch::BatchTrace::summarize)
    /// — bit-identical
    /// to [`summaries`](Self::summaries), as the differential suite
    /// pins. (`BENCH_5`'s speedup denominator is the still-heavier
    /// pre-batch `System` harness; this path exists to anchor the
    /// bit-parity claim.)
    pub fn naive_summaries(&self, scheme: Scheme) -> Vec<LaneSummary> {
        let offsets = self.sensed_offsets();
        let setpoint = constant(self.setpoint as f64);
        let hodv = self.hodv();
        offsets
            .iter()
            .map(|&off| {
                let mu = constant(off);
                let inputs = LoopInputs {
                    setpoint: &setpoint,
                    homogeneous: &hodv,
                    heterogeneous: &mu,
                };
                let trace = DiscreteLoop::new(
                    self.m,
                    scheme.controller(self.setpoint),
                    Quantization::Floor,
                )
                .run(&inputs, self.steps);
                if self.steps == 0 {
                    return LaneSummary {
                        samples: 0,
                        mean_period: 0.0,
                        worst_negative_error: 0.0,
                        worst_positive_error: 0.0,
                        last_lro: f64::NAN,
                    };
                }
                let samples = self.steps - self.warmup;
                let mut wne = 0.0f64;
                let mut wpe = 0.0f64;
                let mut sum = 0.0f64;
                for n in self.warmup..self.steps {
                    wne = wne.max(trace.delta[n]);
                    wpe = wpe.max(-trace.delta[n]);
                    sum += trace.lro[n];
                }
                LaneSummary {
                    samples: samples as u64,
                    mean_period: sum / samples as f64,
                    worst_negative_error: wne,
                    worst_positive_error: wpe,
                    last_lro: trace.lro[self.steps - 1],
                }
            })
            .collect()
    }
}

/// Welford's online mean/variance accumulator with Chan's parallel
/// merge — the streaming first two moments of a Monte Carlo statistic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Merge another accumulator (Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64 / n as f64);
        self.mean += d * (other.n as f64 / n as f64);
        self.n = n;
    }

    /// Samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 while empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn sigma(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.m2 / (self.n - 1) as f64).sqrt()
    }
}

/// Streaming panel statistics over per-instance summaries: required
/// safety margin and mean period first moments plus a margin quantile
/// sketch.
#[derive(Debug, Clone)]
pub struct McStats {
    /// Instances folded in.
    pub samples: u64,
    /// Required safety margin (`worst_negative_error`) moments.
    pub margin: Welford,
    /// Mean adapted period moments.
    pub period: Welford,
    /// Margin quantiles (deterministically mergeable).
    pub margin_sketch: QuantileSketch,
}

impl Default for McStats {
    fn default() -> Self {
        Self::new()
    }
}

impl McStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        McStats {
            samples: 0,
            margin: Welford::new(),
            period: Welford::new(),
            margin_sketch: QuantileSketch::new(),
        }
    }

    /// Fold a slice of per-instance summaries (in instance order).
    pub fn push_all(&mut self, summaries: &[LaneSummary]) {
        for s in summaries {
            self.samples += 1;
            self.margin.push(s.required_margin());
            self.period.push(s.mean_period);
            self.margin_sketch.record(s.required_margin());
        }
    }

    /// Merge chunk statistics (in chunk order for bit-stable moments;
    /// the sketch merge is order-invariant either way).
    pub fn merge(&mut self, other: &McStats) {
        self.samples += other.samples;
        self.margin.merge(&other.margin);
        self.period.merge(&other.period);
        self.margin_sketch.merge(&other.margin_sketch);
    }

    /// Timing yield at deployed margin `m`: the fraction of instances
    /// whose required margin is at most `m`, over the sketch's retained
    /// population (exact while the panel fits the sketch capacity).
    pub fn yield_at(&self, summaries: &[LaneSummary], m: f64) -> f64 {
        if summaries.is_empty() {
            return 1.0;
        }
        summaries
            .iter()
            .filter(|s| s.required_margin() <= m)
            .count() as f64
            / summaries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::set_threads;

    fn panel() -> McPanel {
        McPanel {
            spec: ProcessSpec::paper(),
            seed: 0x000C_1A05,
            instances: 37,
            steps: 120,
            warmup: 30,
            chunk: 8,
            sensors: 4,
            setpoint: 64,
            m: 1,
            amplitude: 12.8,
            te_periods: 200.0,
        }
    }

    #[test]
    fn traceless_panel_is_bit_identical_to_naive_per_instance_baseline() {
        let p = panel();
        let t = Telemetry::disabled();
        for scheme in SCHEMES {
            let fast = p.summaries(scheme, &t);
            let naive = p.naive_summaries(scheme);
            assert_eq!(fast.len(), p.instances);
            for (i, (a, b)) in fast.iter().zip(&naive).enumerate() {
                assert_eq!(a.samples, b.samples, "{} lane {i}", scheme.label());
                for (fa, fb, what) in [
                    (a.mean_period, b.mean_period, "mean_period"),
                    (
                        a.worst_negative_error,
                        b.worst_negative_error,
                        "worst_negative_error",
                    ),
                    (
                        a.worst_positive_error,
                        b.worst_positive_error,
                        "worst_positive_error",
                    ),
                    (a.last_lro, b.last_lro, "last_lro"),
                ] {
                    assert_eq!(
                        fa.to_bits(),
                        fb.to_bits(),
                        "{} lane {i} {what}: {fa} vs {fb}",
                        scheme.label()
                    );
                }
            }
        }
    }

    #[test]
    fn panel_is_invariant_under_chunking_and_workers() {
        let t = Telemetry::disabled();
        let mut base = panel();
        let want = base.summaries(Scheme::IntIir, &t);
        for chunk in [1, 5, 37, 64] {
            for workers in [Some(1), Some(3)] {
                base.chunk = chunk;
                set_threads(workers);
                let got = base.summaries(Scheme::IntIir, &t);
                set_threads(None);
                assert_eq!(got, want, "chunk={chunk} workers={workers:?}");
            }
        }
    }

    #[test]
    fn counters_account_samples_batches_and_lane_steps() {
        let t = Telemetry::enabled();
        let p = panel();
        let _ = p.summaries(Scheme::Free, &t);
        let snap = t.snapshot();
        assert_eq!(snap.counter("mc.samples"), Some(37));
        assert_eq!(snap.counter("mc.batches"), Some(5));
        assert_eq!(snap.counter("mc.summary_lane_steps"), Some(37 * 120));
    }

    #[test]
    fn welford_merge_matches_sequential_fold() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 97) as f64 / 9.7).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut merged = Welford::new();
        for chunk in xs.chunks(111) {
            let mut part = Welford::new();
            chunk.iter().for_each(|&x| part.push(x));
            merged.merge(&part);
        }
        assert_eq!(whole.count(), merged.count());
        assert!((whole.mean() - merged.mean()).abs() < 1e-12);
        assert!((whole.sigma() - merged.sigma()).abs() < 1e-12);
    }

    #[test]
    fn stats_chunk_merge_is_deterministic() {
        let p = panel();
        let t = Telemetry::disabled();
        let summaries = p.summaries(Scheme::IntIir, &t);
        let fold = |chunk: usize| {
            let mut acc = McStats::new();
            for part in summaries.chunks(chunk) {
                let mut s = McStats::new();
                s.push_all(part);
                acc.merge(&s);
            }
            (
                acc.samples,
                acc.margin_sketch.quantile(0.5),
                acc.margin_sketch.quantile(0.99),
            )
        };
        // Quantiles come from the order-invariant sketch merge, so any
        // equal-chunk recombination answers identically; a whole-panel
        // fold agrees because nothing compacts at this size.
        let mut whole = McStats::new();
        whole.push_all(&summaries);
        assert_eq!(fold(8), fold(37));
        assert_eq!(fold(8).1, whole.margin_sketch.quantile(0.5));
        assert_eq!(whole.samples, p.instances as u64);
        assert!(whole.margin.sigma() > 0.0, "process spread must show up");
    }

    #[test]
    fn sampled_instances_actually_differ() {
        let p = panel();
        let offsets = p.sensed_offsets();
        let spread = offsets.iter().cloned().fold(f64::MIN, f64::max)
            - offsets.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.5, "spread {spread}");
        let t = Telemetry::disabled();
        let s = p.summaries(Scheme::IntIir, &t);
        let margins: Vec<f64> = s.iter().map(|x| x.required_margin()).collect();
        assert!(margins.iter().any(|&m| m != margins[0]));
    }
}
