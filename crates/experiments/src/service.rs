//! The experiments-side [`JobExecutor`]: registry dispatch under the
//! service's supervision contract.
//!
//! Every job gets its own JSONL telemetry sink (the event spool the
//! server's `/jobs/<id>/events` endpoint tails) and its own view of the
//! shared persistent result cache ([`SweepCache::rebind_telemetry`]), so
//! per-job cache hit/miss counters land in that job's event stream while
//! the underlying store is shared by every job the server ever runs — a
//! resubmitted experiment short-circuits through cache hits instead of
//! recomputing.
//!
//! Cancellation and deadlines arrive as the job handle's cancel flag and
//! deadline, converted here into the [`CancelToken`] threaded through
//! [`RunCtx`]; a fired token unwinds with [`SweepCancelled`], which this
//! executor downcasts back into `Cancelled`/`TimedOut` outcomes. Any
//! other unwind — including a [`crate::sweep::SweepPanics`] aggregate from a contained
//! sweep — becomes a `Failed` outcome with the message preserved.

use std::panic::{catch_unwind, AssertUnwindSafe};

use clock_serve::{JobExecutor, JobHandle, JobOutcome, JobSpec};
use clock_telemetry::Telemetry;

use crate::cache::{self, CacheKeyExt as _, SweepCache};
use crate::config::PaperParams;
use crate::registry::{self, Invocation, Runner};
use crate::runner::RunCtx;
use crate::sweep::{panic_message, CancelReason, CancelToken, SweepCancelled};

/// Runs registry experiment ids as supervised service jobs.
pub struct RegistryExecutor {
    params: PaperParams,
    cache: SweepCache,
}

impl RegistryExecutor {
    /// An executor over the given paper parameters and shared result
    /// cache (pass a persistent cache so jobs short-circuit across
    /// submissions and server restarts).
    pub fn new(params: PaperParams, cache: SweepCache) -> Self {
        RegistryExecutor { params, cache }
    }
}

impl JobExecutor for RegistryExecutor {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        match registry::find(&spec.experiment) {
            Some(_) => Ok(()),
            None => Err(format!(
                "unknown experiment '{}' (see repro --list)",
                spec.experiment
            )),
        }
    }

    fn dedupe_key(&self, spec: &JobSpec) -> String {
        // The content identity of a job: engine fingerprint + paper
        // params (both via cache::key) + what is being run. timeout_ms is
        // deliberately excluded — a deadline changes patience, not work.
        cache::key("serve-job")
            .params(&self.params)
            .str("experiment", &spec.experiment)
            .bool("quick", spec.quick)
            .finish()
            .to_hex()
    }

    fn run(&self, spec: &JobSpec, handle: &JobHandle) -> JobOutcome {
        let telemetry = Telemetry::to_jsonl_or_degraded(&handle.events_path);
        let cancel = CancelToken::new(handle.cancel_flag(), handle.deadline());
        let ctx = RunCtx::new(self.params)
            .with_cache(self.cache.rebind_telemetry(&telemetry))
            .with_telemetry(telemetry.clone())
            .with_cancel(cancel.clone());
        let inv = Invocation {
            ctx: &ctx,
            quick: spec.quick,
            json: false,
            json_path: None,
            compare: None,
            noise: crate::bench::DEFAULT_COMPARE_NOISE,
        };
        let experiment = spec.experiment.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut scope = telemetry.scope("serve.job");
            scope.attr("experiment", experiment.as_str());
            registry::run(&experiment, &inv)
        }));
        let _ = telemetry.flush();
        match result {
            Ok(true) => {
                let snap = telemetry.snapshot();
                let hits = snap.counter("cache.hits").unwrap_or(0);
                let misses = snap.counter("cache.misses").unwrap_or(0);
                JobOutcome::Completed {
                    detail: format!("ok; cache {hits} hits / {misses} misses"),
                }
            }
            Ok(false) => JobOutcome::Failed {
                error: format!("experiment '{}' reported failure", spec.experiment),
            },
            Err(payload) => {
                // A cooperative unwind is an outcome, not a crash. The
                // token is re-consulted for the reason: the sweep may
                // have unwound on the flag before noticing the deadline.
                if payload.is::<SweepCancelled>() {
                    match cancel.cancelled() {
                        Some(CancelReason::DeadlineExceeded) => JobOutcome::TimedOut,
                        _ => JobOutcome::Cancelled,
                    }
                } else {
                    JobOutcome::Failed {
                        error: panic_message(&*payload),
                    }
                }
            }
        }
    }
}

/// Leaf body of the `selftest-panic` registry id: panic on purpose, so
/// supervision (per-job `failed` containment) can be exercised end to end.
pub fn selftest_panic() -> ! {
    panic!("selftest-panic: intentional panic for supervisor testing")
}

/// Leaf body of the `selftest-slow` registry id: spin in small sleeps,
/// consulting the cancel token between them, for cancel/deadline tests.
/// Runs ~20 s (quick: ~2 s) when nobody cancels it.
pub fn selftest_slow(ctx: &RunCtx, quick: bool) -> bool {
    let total = std::time::Duration::from_millis(if quick { 2_000 } else { 20_000 });
    let started = std::time::Instant::now();
    while started.elapsed() < total {
        ctx.cancel.check();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    println!("selftest-slow: idled {} ms uncancelled", total.as_millis());
    true
}

/// Sanity helper for tests: whether an id resolves to a leaf runner.
pub fn is_leaf(id: &str) -> bool {
    matches!(registry::find(id).map(|d| d.runner), Some(Runner::Leaf(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn executor() -> RegistryExecutor {
        RegistryExecutor::new(
            PaperParams::default(),
            SweepCache::in_memory(&Telemetry::disabled()),
        )
    }

    fn handle(id: u64, tag: &str) -> JobHandle {
        let dir = std::env::temp_dir().join(format!("serve-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        JobHandle::new(
            id,
            Arc::new(AtomicBool::new(false)),
            None,
            dir.join(format!("job-{id}.jsonl")),
        )
    }

    fn spec(experiment: &str) -> JobSpec {
        JobSpec {
            experiment: experiment.to_owned(),
            quick: true,
            timeout_ms: 0,
        }
    }

    #[test]
    fn validate_knows_registry_ids() {
        let e = executor();
        assert!(e.validate(&spec("fig2")).is_ok());
        assert!(e.validate(&spec("selftest-slow")).is_ok());
        assert!(e.validate(&spec("no-such-thing")).is_err());
    }

    #[test]
    fn dedupe_key_separates_specs_and_is_stable() {
        let e = executor();
        let a = e.dedupe_key(&spec("fig2"));
        assert_eq!(a, e.dedupe_key(&spec("fig2")), "same spec, same key");
        assert_ne!(a, e.dedupe_key(&spec("table1")), "different experiment");
        let mut slow = spec("fig2");
        slow.quick = false;
        assert_ne!(a, e.dedupe_key(&slow), "quick changes the work");
        let mut patient = spec("fig2");
        patient.timeout_ms = 9_999;
        assert_eq!(a, e.dedupe_key(&patient), "timeout is not identity");
    }

    #[test]
    fn panicking_experiment_becomes_failed_outcome() {
        let e = executor();
        let outcome = e.run(&spec("selftest-panic"), &handle(1, "panic"));
        let JobOutcome::Failed { error } = outcome else {
            panic!("expected Failed, got {outcome:?}");
        };
        assert!(error.contains("selftest-panic"), "{error}");
    }

    #[test]
    fn cancelled_experiment_becomes_cancelled_outcome() {
        let e = executor();
        let h = handle(2, "cancel");
        let flag = h.cancel_flag();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            flag.store(true, Ordering::SeqCst);
        });
        let started = Instant::now();
        let outcome = e.run(&spec("selftest-slow"), &h);
        t.join().expect("canceller joins");
        assert_eq!(outcome, JobOutcome::Cancelled);
        assert!(
            started.elapsed() < Duration::from_millis(1_900),
            "cancel must cut the 2 s selftest short"
        );
    }

    #[test]
    fn deadline_becomes_timed_out_outcome() {
        let e = executor();
        let h = JobHandle::new(
            3,
            Arc::new(AtomicBool::new(false)),
            Some(Instant::now() + Duration::from_millis(150)),
            std::env::temp_dir().join(format!("serve-exec-deadline-{}.jsonl", std::process::id())),
        );
        let outcome = e.run(&spec("selftest-slow"), &h);
        assert_eq!(outcome, JobOutcome::TimedOut);
    }

    #[test]
    fn quick_experiment_completes_with_cache_traffic_summary() {
        let e = executor();
        let outcome = e.run(&spec("fig2"), &handle(4, "ok"));
        let JobOutcome::Completed { detail } = outcome else {
            panic!("expected Completed, got {outcome:?}");
        };
        assert!(detail.contains("cache"), "{detail}");
    }
}
