//! Extension: effective pipeline throughput vs operating set-point.
//!
//! The paper frames its benefit as safety-margin (period) reduction; with
//! the Razor-style pipeline contract of
//! [`adaptive_clock::pipeline::PipelineModel`], the same benefit can be
//! stated as *throughput*: run the clock faster, pay for the rare timing
//! violations with replays, and find the sweet spot. The adaptive clock's
//! sweet spot sits at a lower set-point (higher frequency) than the fixed
//! clock's because its violations start later.

use adaptive_clock::pipeline::PipelineModel;
use adaptive_clock::system::{Scheme, SystemBuilder};
use variation::sources::Harmonic;

use crate::cache::CacheKeyExt as _;
use crate::render::{fmt, Table};
use crate::results::{ExperimentResult, Series};
use crate::runner::RunCtx;
use crate::sweep::{parallel_map_planned, Plan};

/// The run budget of one throughput point: samples and discarded warm-up.
const SAMPLES: usize = 7000;
const WARMUP: usize = 1000;

/// Sweep the operated set-point for one scheme; return normalized
/// throughput per set-point (1.0 = an ideal violation-free clock running
/// exactly at `c_req`). The result cache is consulted per operated
/// set-point.
pub fn throughput_curve(
    ctx: &RunCtx,
    scheme: Scheme,
    replay_penalty: usize,
    setpoints: &[i64],
) -> Vec<f64> {
    let params = &ctx.params;
    let c_req = params.setpoint;
    let model = PipelineModel::new(c_req as f64, replay_penalty);
    let hodv = Harmonic::new(params.amplitude(), 50.0 * c_req as f64, 0.0);
    let point_key = |c_ctrl: i64| {
        crate::cache::key("ext-throughput")
            .params(params)
            .scheme(&scheme)
            .i64("c_ctrl", c_ctrl)
            .u64("replay_penalty", replay_penalty as u64)
            .u64("budget.samples", SAMPLES as u64)
            .u64("budget.warmup", WARMUP as u64)
            .finish()
    };
    parallel_map_planned(
        setpoints,
        |&c_ctrl| match ctx.cache.get_f64s(point_key(c_ctrl), 1) {
            Some(v) => Plan::Ready(v[0]),
            None => Plan::Compute(SAMPLES as u64),
        },
        |&c_ctrl| {
            let system = SystemBuilder::new(c_ctrl)
                .cdn_delay(c_req as f64)
                .scheme(scheme.clone())
                .build()
                .expect("valid configuration");
            let run = system.run(&hodv, SAMPLES).skip(WARMUP);
            let y = model.evaluate(&run).relative_throughput(c_req as f64);
            ctx.cache.put_f64s(point_key(c_ctrl), &[y]);
            y
        },
        &ctx.telemetry,
    )
}

/// Run the experiment for the IIR RO and the fixed clock.
pub fn run(ctx: &RunCtx, replay_penalty: usize) -> ExperimentResult {
    let c_req = ctx.params.setpoint;
    let setpoints: Vec<i64> = (c_req - 2..=c_req + 16).collect();
    let xs: Vec<f64> = setpoints.iter().map(|&c| c as f64).collect();
    let iir = throughput_curve(ctx, Scheme::iir_paper(), replay_penalty, &setpoints);
    let fixed = throughput_curve(ctx, Scheme::Fixed, replay_penalty, &setpoints);
    ExperimentResult::new(
        "ext-throughput",
        format!(
            "Normalized pipeline throughput vs operated set-point \
             (c_req = {c_req}, HoDV 0.2c @ Te = 50c, replay penalty {replay_penalty})"
        ),
    )
    .with_series(Series::new("IIR RO", xs.clone(), iir))
    .with_series(Series::new("Fixed clock", xs, fixed))
}

/// The throughput-optimal set-point and its value for a series.
pub fn optimum(series: &crate::results::Series) -> (f64, f64) {
    series
        .x
        .iter()
        .zip(&series.y)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite throughputs"))
        .map(|(&x, &y)| (x, y))
        .expect("non-empty series")
}

/// Render as a table with the optima highlighted.
pub fn render(result: &ExperimentResult) -> String {
    let mut headers = vec!["set-point".to_owned()];
    headers.extend(result.series.iter().map(|s| s.label.clone()));
    let mut t = Table::new(headers);
    if let Some(first) = result.series.first() {
        for (i, &x) in first.x.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            row.extend(result.series.iter().map(|s| fmt(s.y[i])));
            t.row(row);
        }
    }
    let mut out = format!("Extension — {}\n\n{}", result.description, t.render());
    for s in &result.series {
        let (x, y) = optimum(s);
        out.push_str(&format!(
            "optimal set-point for {}: {} (normalized throughput {:.4})\n",
            s.label, x, y
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;

    fn result() -> ExperimentResult {
        run(&RunCtx::new(PaperParams::default()), 8)
    }

    #[test]
    fn iir_peak_throughput_beats_fixed() {
        let r = result();
        let (_, iir_peak) = optimum(r.series_named("IIR RO").unwrap());
        let (_, fixed_peak) = optimum(r.series_named("Fixed clock").unwrap());
        assert!(
            iir_peak > 1.05 * fixed_peak,
            "IIR peak {iir_peak} vs fixed {fixed_peak}"
        );
    }

    #[test]
    fn iir_optimum_sits_at_lower_setpoint() {
        let r = result();
        let (iir_c, _) = optimum(r.series_named("IIR RO").unwrap());
        let (fixed_c, _) = optimum(r.series_named("Fixed clock").unwrap());
        assert!(
            iir_c <= fixed_c,
            "IIR optimum {iir_c} should not exceed fixed optimum {fixed_c}"
        );
    }

    #[test]
    fn throughput_collapses_below_requirement() {
        // Operating far below c_req makes every period violate: replays
        // swallow everything.
        let r = result();
        let iir = r.series_named("IIR RO").unwrap();
        let at_low = iir.nearest(62.0).unwrap();
        let (_, peak) = optimum(iir);
        assert!(
            at_low < 0.5 * peak,
            "throughput at c=62 ({at_low}) must collapse vs peak {peak}"
        );
    }

    #[test]
    fn heavily_margined_throughput_declines_linearly() {
        // well above the violation region, throughput ~ c_req / c_ctrl
        let r = result();
        let fixed = r.series_named("Fixed clock").unwrap();
        let y78 = fixed.nearest(78.0).unwrap();
        let y80 = fixed.nearest(80.0).unwrap();
        assert!(y78 > y80, "more margin must mean less throughput");
        assert!((y80 - 64.0 / 80.0).abs() < 0.02, "y(80) = {y80}");
    }

    #[test]
    fn render_reports_optima() {
        let text = render(&result());
        assert!(text.contains("optimal set-point for IIR RO"));
        assert!(text.contains("optimal set-point for Fixed clock"));
    }
}
