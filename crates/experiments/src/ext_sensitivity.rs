//! Extension: predict the time-domain adaptation error from the z-domain
//! sensitivity function — theory meets simulation.
//!
//! For a harmonic HoDV of amplitude `A` and period `T_e` (in clock
//! periods), the loop's residual error amplitude is predicted by
//!
//! ```text
//! |δ|_max ≈ A · |H_δ(e^{jω}) · W_e(e^{jω})| ,   ω = 2π / (T_e/c)
//! ```
//!
//! with `H_δ` the error transfer (Eq. 5) and `W_e = (1 − z^{−M−1})z^{−1}`
//! the homogeneous-input weight of `p(z)`. This experiment sweeps `T_e`,
//! measures the actual error envelope of the (float, unquantized) IIR loop
//! in the event-driven engine, and overlays the prediction — quantitative
//! evidence that the whole simulation tower and the paper's Eq. (4)–(5)
//! algebra describe the same system.

use adaptive_clock::controller::IirConfig;
use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::tdc::Quantization;
use variation::sources::Harmonic;
use zdomain::{closedloop, Complex, TransferFunction};

use crate::config::PaperParams;
use crate::render::{fmt, Table};
use crate::results::{ExperimentResult, Series};
use crate::sweep::{log_grid, parallel_map};

/// Predicted error amplitude for perturbation period `te_over_c` and CDN
/// depth `m` (whole periods), per unit perturbation amplitude.
pub fn predicted_gain(h: &TransferFunction, m: usize, te_over_c: f64) -> f64 {
    assert!(te_over_c >= 2.0, "beyond Nyquist");
    let omega = std::f64::consts::TAU / te_over_c;
    let z = Complex::unit_circle(omega);
    let hd = closedloop::error_transfer(h, m);
    let w = closedloop::input_weights(m);
    let weight = w.homogeneous.eval_z_complex(z);
    (hd.eval(z) * weight).abs()
}

/// Run the sweep: measured vs predicted error amplitude across `T_e/c`.
pub fn run(params: &PaperParams, points: usize) -> ExperimentResult {
    // Below Te ≈ 8 periods the loop's own period modulation makes the CDN
    // depth M[n] swing within one perturbation cycle, so the fixed-M linear
    // prediction stops being meaningful; sweep the regime it claims.
    let tes = log_grid(8.0, 500.0, points);
    let h = zdomain::iir_paper_filter();
    let c = params.setpoint;
    let amp = params.amplitude();

    let measured = parallel_map(&tes, |&te| {
        let system = SystemBuilder::new(c)
            .cdn_delay(c as f64)
            .scheme(Scheme::IirFloat(IirConfig::paper()))
            .quantization(Quantization::None)
            .build()
            .expect("valid configuration");
        let hodv = Harmonic::new(amp, te * c as f64, 0.0);
        let run = system
            .run(&hodv, params.samples_for(te))
            .skip(params.warmup);
        run.timing_errors()
            .iter()
            .fold(0.0f64, |a, e| a.max(e.abs()))
    });
    let predicted: Vec<f64> = tes
        .iter()
        .map(|&te| amp * predicted_gain(&h, 1, te))
        .collect();

    ExperimentResult::new(
        "ext-sensitivity",
        format!(
            "Measured vs z-domain-predicted |τ−c| amplitude for the IIR RO \
             (c = {c}, t_clk = c, HoDV amplitude 0.2c)"
        ),
    )
    .with_series(Series::new("measured", tes.clone(), measured))
    .with_series(Series::new("predicted", tes, predicted))
}

/// Render as a comparison table.
pub fn render(result: &ExperimentResult) -> String {
    let meas = result.series_named("measured").expect("series present");
    let pred = result.series_named("predicted").expect("series present");
    let mut t = Table::new(["Te/c", "measured |δ|max", "predicted |δ|max", "ratio"]);
    for (i, &x) in meas.x.iter().enumerate() {
        let ratio = if pred.y[i] > 1e-9 {
            meas.y[i] / pred.y[i]
        } else {
            f64::NAN
        };
        t.row([fmt(x), fmt(meas.y[i]), fmt(pred.y[i]), fmt(ratio)]);
    }
    format!(
        "Extension — sensitivity-function prediction of the adaptation error\n\n{}\n\
         The prediction uses only Eq. (4)–(5) algebra evaluated on the unit circle;\n\
         the measurement is the full event-driven simulation. The measurement\n\
         bottoms out at a ≈1-stage floor the linear fixed-M model cannot see:\n\
         the ±20% period modulation swings the CDN depth M[n] itself (a\n\
         second-order, amplitude-squared effect). Against the fixed-M discrete\n\
         loop the prediction is tight to 3% (see the module tests).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_clock::controller::FloatIir;
    use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};

    /// Against the discrete fixed-M loop — the system the prediction is
    /// derived for — the sensitivity formula is tight.
    #[test]
    fn prediction_matches_discrete_loop_tightly() {
        let h = zdomain::iir_paper_filter();
        let amp = 12.8;
        for te in [10.0f64, 25.0, 50.0, 100.0, 400.0] {
            let ctrl = FloatIir::from_config(&IirConfig::paper(), 64.0).expect("paper");
            let mut dl = DiscreteLoop::new(1, Box::new(ctrl), Quantization::None);
            let cs = constant(64.0);
            let zero = constant(0.0);
            let e = move |n: i64| amp * (std::f64::consts::TAU * n as f64 / te).sin();
            let steps = 2000 + (12.0 * te) as usize;
            let tr = dl.run(
                &LoopInputs {
                    setpoint: &cs,
                    homogeneous: &e,
                    heterogeneous: &zero,
                },
                steps,
            );
            let tail = &tr.delta[steps / 2..];
            let measured = tail.iter().fold(0.0f64, |a, d| a.max(d.abs()));
            let predicted = amp * predicted_gain(&h, 1, te);
            assert!(
                (measured - predicted).abs() <= 0.03 * predicted + 0.02,
                "Te={te}: discrete-loop measured {measured} vs predicted {predicted}"
            );
        }
    }

    /// Against the event-driven engine the prediction still tracks, but the
    /// time-varying CDN depth (M[n] swings with the ±20% period modulation)
    /// adds real second-order error the linear model cannot see.
    #[test]
    fn prediction_tracks_event_engine_loosely() {
        let params = PaperParams::default();
        let r = run(&params, 7);
        let meas = r.series_named("measured").unwrap();
        let pred = r.series_named("predicted").unwrap();
        for (i, &te) in meas.x.iter().enumerate() {
            let m = meas.y[i];
            let p = pred.y[i];
            assert!(
                (m - p).abs() <= 0.35 * p + 1.3,
                "Te/c={te}: measured {m} vs predicted {p}"
            );
        }
    }

    #[test]
    fn predicted_gain_shapes() {
        let h = zdomain::iir_paper_filter();
        // very slow perturbations are almost fully rejected
        assert!(predicted_gain(&h, 1, 500.0) < 0.1);
        // the waterbed hump amplifies mid-frequency perturbations
        assert!(predicted_gain(&h, 1, 10.0) > 0.8);
    }

    #[test]
    fn render_lists_every_point() {
        let params = PaperParams::default();
        let r = run(&params, 5);
        let text = render(&r);
        assert!(text.contains("predicted"));
        assert!(text.matches('\n').count() > 8);
    }
}
