//! Extension: predict the time-domain adaptation error from the z-domain
//! sensitivity function — theory meets simulation.
//!
//! For a harmonic HoDV of amplitude `A` and period `T_e` (in clock
//! periods), the loop's residual error amplitude is predicted by
//!
//! ```text
//! |δ|_max ≈ A · |H_δ(e^{jω}) · W_e(e^{jω})| ,   ω = 2π / (T_e/c)
//! ```
//!
//! with `H_δ` the error transfer (Eq. 5) and `W_e = (1 − z^{−M−1})z^{−1}`
//! the homogeneous-input weight of `p(z)`. This experiment sweeps `T_e`,
//! measures the actual error envelope of the (float, unquantized) IIR loop
//! in the event-driven engine, and overlays the prediction — quantitative
//! evidence that the whole simulation tower and the paper's Eq. (4)–(5)
//! algebra describe the same system.

use adaptive_clock::batch::{BatchLoop, LaneController};
use adaptive_clock::controller::IirConfig;
use adaptive_clock::loopsim::{constant, LoopInputs};
use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::tdc::Quantization;
use variation::sources::Harmonic;
use zdomain::{closedloop, Complex, TransferFunction};

use crate::cache::CacheKeyExt as _;
use crate::render::{fmt, Table};
use crate::results::{ExperimentResult, Series};
use crate::runner::RunCtx;
use crate::sweep::{log_grid, parallel_map_planned, Plan};

/// Predicted error amplitude for perturbation period `te_over_c` and CDN
/// depth `m` (whole periods), per unit perturbation amplitude.
pub fn predicted_gain(h: &TransferFunction, m: usize, te_over_c: f64) -> f64 {
    assert!(te_over_c >= 2.0, "beyond Nyquist");
    let omega = std::f64::consts::TAU / te_over_c;
    let z = Complex::unit_circle(omega);
    let hd = closedloop::error_transfer(h, m);
    let w = closedloop::input_weights(m);
    let weight = w.homogeneous.eval_z_complex(z);
    (hd.eval(z) * weight).abs()
}

/// Run the sweep: measured vs predicted error amplitude across `T_e/c`.
/// The result cache is consulted per measured `T_e` point (the
/// event-driven runs dominate the sweep; the batched discrete lanes and
/// the z-domain prediction are cheap enough to recompute every time).
pub fn run(ctx: &RunCtx, points: usize) -> ExperimentResult {
    let params = &ctx.params;
    // Below Te ≈ 8 periods the loop's own period modulation makes the CDN
    // depth M[n] swing within one perturbation cycle, so the fixed-M linear
    // prediction stops being meaningful; sweep the regime it claims.
    let tes = log_grid(8.0, 500.0, points);
    let h = zdomain::iir_paper_filter();
    let c = params.setpoint;
    let amp = params.amplitude();

    let te_key = |te: f64| {
        crate::cache::key("ext-sensitivity-measured")
            .params(params)
            .scheme(&Scheme::IirFloat(IirConfig::paper()))
            .str("quantization", "none")
            .f64("te_over_c", te)
            .u64("budget.samples", params.samples_for(te) as u64)
            .u64("budget.warmup", params.warmup as u64)
            .finish()
    };
    let measured = parallel_map_planned(
        &tes,
        |&te| match ctx.cache.get_f64s(te_key(te), 1) {
            Some(v) => Plan::Ready(v[0]),
            None => Plan::Compute(params.samples_for(te) as u64),
        },
        |&te| {
            let system = SystemBuilder::new(c)
                .cdn_delay(c as f64)
                .scheme(Scheme::IirFloat(IirConfig::paper()))
                .quantization(Quantization::None)
                .build()
                .expect("valid configuration");
            let hodv = Harmonic::new(amp, te * c as f64, 0.0);
            let run = system
                .run(&hodv, params.samples_for(te))
                .skip(params.warmup);
            let y = run
                .timing_errors()
                .iter()
                .fold(0.0f64, |a, e| a.max(e.abs()));
            ctx.cache.put_f64s(te_key(te), &[y]);
            y
        },
        &ctx.telemetry,
    );
    let predicted: Vec<f64> = tes
        .iter()
        .map(|&te| amp * predicted_gain(&h, 1, te))
        .collect();
    let batched = batched_errors(&tes, c, amp, &ctx.telemetry);

    ExperimentResult::new(
        "ext-sensitivity",
        format!(
            "Measured vs z-domain-predicted |τ−c| amplitude for the IIR RO \
             (c = {c}, t_clk = c, HoDV amplitude 0.2c)"
        ),
    )
    .with_series(Series::new("measured", tes.clone(), measured))
    .with_series(Series::new("discrete (batched)", tes.clone(), batched))
    .with_series(Series::new("predicted", tes, predicted))
}

/// The same error-amplitude sweep on the fixed-`M` discrete loop — the
/// system the prediction is actually derived for — with every `T_e` lane
/// advanced in lock-step by the blocked SoA batch engine and the lanes
/// spread over the sweep worker pool by the lane-chunk dispatcher. Lane
/// independence makes the recombined trace bit-identical to one
/// whole-batch [`BatchLoop::run`] call for any worker count, which is
/// what keeps the golden `everything` fixture stable across machines.
fn batched_errors(
    tes: &[f64],
    c: i64,
    amp: f64,
    telemetry: &clock_telemetry::Telemetry,
) -> Vec<f64> {
    // Settle even the slowest lane, then measure over the second half.
    let slowest = tes.iter().copied().fold(0.0f64, f64::max);
    let steps = 2000 + (12.0 * slowest) as usize;
    let trace = crate::batchrun::run_lane_chunks(tes.len(), 8, telemetry, |range| {
        let mut batch = BatchLoop::new();
        for _ in range.clone() {
            batch.push(
                1,
                LaneController::float_iir(&IirConfig::paper(), c as f64)
                    .expect("paper config is valid"),
                Quantization::None,
            );
        }
        let setpoint = constant(c as f64);
        let zero = constant(0.0);
        let e_fns: Vec<Box<dyn Fn(i64) -> f64 + Sync>> = range
            .map(|lane| {
                let te = tes[lane];
                Box::new(move |n: i64| amp * (std::f64::consts::TAU * n as f64 / te).sin())
                    as Box<dyn Fn(i64) -> f64 + Sync>
            })
            .collect();
        let inputs: Vec<LoopInputs<'_>> = e_fns
            .iter()
            .map(|e| LoopInputs {
                setpoint: &setpoint,
                homogeneous: e.as_ref(),
                heterogeneous: &zero,
            })
            .collect();
        batch.run(&inputs, steps)
    });
    (0..tes.len())
        .map(|lane| {
            let lt = trace.lane(lane);
            lt.delta[steps / 2..]
                .iter()
                .fold(0.0f64, |a, d| a.max(d.abs()))
        })
        .collect()
}

/// Render as a comparison table.
pub fn render(result: &ExperimentResult) -> String {
    let meas = result.series_named("measured").expect("series present");
    let pred = result.series_named("predicted").expect("series present");
    let batched = result.series_named("discrete (batched)");
    let mut headers = vec!["Te/c".to_owned(), "measured |δ|max".to_owned()];
    if batched.is_some() {
        headers.push("discrete |δ|max".to_owned());
    }
    headers.push("predicted |δ|max".to_owned());
    headers.push("ratio".to_owned());
    let mut t = Table::new(headers);
    for (i, &x) in meas.x.iter().enumerate() {
        let ratio = if pred.y[i] > 1e-9 {
            meas.y[i] / pred.y[i]
        } else {
            f64::NAN
        };
        let mut row = vec![fmt(x), fmt(meas.y[i])];
        if let Some(b) = batched {
            row.push(fmt(b.y[i]));
        }
        row.push(fmt(pred.y[i]));
        row.push(fmt(ratio));
        t.row(row);
    }
    format!(
        "Extension — sensitivity-function prediction of the adaptation error\n\n{}\n\
         The prediction uses only Eq. (4)–(5) algebra evaluated on the unit circle;\n\
         the measurement is the full event-driven simulation. The measurement\n\
         bottoms out at a ≈1-stage floor the linear fixed-M model cannot see:\n\
         the ±20% period modulation swings the CDN depth M[n] itself (a\n\
         second-order, amplitude-squared effect). Against the fixed-M discrete\n\
         loop the prediction is tight to 3% (see the module tests).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;
    use adaptive_clock::controller::FloatIir;
    use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};

    /// Against the discrete fixed-M loop — the system the prediction is
    /// derived for — the sensitivity formula is tight.
    #[test]
    fn prediction_matches_discrete_loop_tightly() {
        let h = zdomain::iir_paper_filter();
        let amp = 12.8;
        for te in [10.0f64, 25.0, 50.0, 100.0, 400.0] {
            let ctrl = FloatIir::from_config(&IirConfig::paper(), 64.0).expect("paper");
            let mut dl = DiscreteLoop::new(1, ctrl, Quantization::None);
            let cs = constant(64.0);
            let zero = constant(0.0);
            let e = move |n: i64| amp * (std::f64::consts::TAU * n as f64 / te).sin();
            let steps = 2000 + (12.0 * te) as usize;
            let tr = dl.run(
                &LoopInputs {
                    setpoint: &cs,
                    homogeneous: &e,
                    heterogeneous: &zero,
                },
                steps,
            );
            let tail = &tr.delta[steps / 2..];
            let measured = tail.iter().fold(0.0f64, |a, d| a.max(d.abs()));
            let predicted = amp * predicted_gain(&h, 1, te);
            assert!(
                (measured - predicted).abs() <= 0.03 * predicted + 0.02,
                "Te={te}: discrete-loop measured {measured} vs predicted {predicted}"
            );
        }
    }

    /// Against the event-driven engine the prediction still tracks, but the
    /// time-varying CDN depth (M[n] swings with the ±20% period modulation)
    /// adds real second-order error the linear model cannot see.
    #[test]
    fn prediction_tracks_event_engine_loosely() {
        let r = run(&RunCtx::new(PaperParams::default()), 7);
        let meas = r.series_named("measured").unwrap();
        let pred = r.series_named("predicted").unwrap();
        for (i, &te) in meas.x.iter().enumerate() {
            let m = meas.y[i];
            let p = pred.y[i];
            assert!(
                (m - p).abs() <= 0.35 * p + 1.3,
                "Te/c={te}: measured {m} vs predicted {p}"
            );
        }
    }

    /// The batched SoA sweep is the same fixed-M discrete loop the tight
    /// prediction holds for, so its whole series must hug the prediction.
    #[test]
    fn batched_series_matches_prediction_tightly() {
        let r = run(&RunCtx::new(PaperParams::default()), 7);
        let batched = r.series_named("discrete (batched)").expect("series");
        let pred = r.series_named("predicted").expect("series");
        for (i, &te) in batched.x.iter().enumerate() {
            let b = batched.y[i];
            let p = pred.y[i];
            assert!(
                (b - p).abs() <= 0.05 * p + 0.1,
                "Te/c={te}: batched {b} vs predicted {p}"
            );
        }
    }

    #[test]
    fn predicted_gain_shapes() {
        let h = zdomain::iir_paper_filter();
        // very slow perturbations are almost fully rejected
        assert!(predicted_gain(&h, 1, 500.0) < 0.1);
        // the waterbed hump amplifies mid-frequency perturbations
        assert!(predicted_gain(&h, 1, 10.0) > 0.8);
    }

    #[test]
    fn render_lists_every_point() {
        let r = run(&RunCtx::new(PaperParams::default()), 5);
        let text = render(&r);
        assert!(text.contains("predicted"));
        assert!(text.matches('\n').count() > 8);
    }
}
