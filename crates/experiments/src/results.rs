//! Structured, serializable experiment results.

use serde::{Deserialize, Serialize};

/// One named data series (a curve in a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Abscissa values.
    pub x: Vec<f64>,
    /// Ordinate values.
    pub y: Vec<f64>,
}

impl Series {
    /// A series from parallel x/y vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series x/y lengths differ");
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The y value at the x closest to `x0`, or `None` if empty.
    pub fn nearest(&self, x0: f64) -> Option<f64> {
        self.x
            .iter()
            .zip(&self.y)
            .min_by(|a, b| {
                (a.0 - x0)
                    .abs()
                    .partial_cmp(&(b.0 - x0).abs())
                    .expect("finite abscissae")
            })
            .map(|(_, &y)| y)
    }
}

/// A reproduced artifact: one figure panel or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`"fig8-upper"`, `"table1"`, …).
    pub id: String,
    /// Human description.
    pub description: String,
    /// The curves/rows of the artifact.
    pub series: Vec<Series>,
}

impl ExperimentResult {
    /// A result under construction.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            description: description.into(),
            series: Vec::new(),
        }
    }

    /// Add a series; returns `self` for chaining.
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Find a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Serialize to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable for these
    /// plain-data types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_nearest_lookup() {
        let s = Series::new("a", vec![0.0, 1.0, 2.0], vec![10.0, 11.0, 12.0]);
        assert_eq!(s.nearest(0.9), Some(11.0));
        assert_eq!(s.nearest(-5.0), Some(10.0));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn series_rejects_mismatched_lengths() {
        let _ = Series::new("bad", vec![0.0], vec![]);
    }

    #[test]
    fn result_roundtrips_through_json() {
        let r = ExperimentResult::new("fig2", "mismatch curves").with_series(Series::new(
            "harmonic",
            vec![0.0, 0.5],
            vec![0.0, 2.0],
        ));
        let json = r.to_json().unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(back.series_named("harmonic").is_some());
        assert!(back.series_named("nope").is_none());
    }
}
