//! Fig. 7 — timing error `τ − c` traces for the four clock generation
//! systems under a 20 % HoDV, CDN delay `t_clk = c`, no mismatch.
//!
//! Three panels with perturbation periods `T_e ∈ {25c, 37.5c, 50c}`; the
//! paper plots period numbers 500–600. The paper's observations, asserted
//! by the tests here:
//!
//! * upper panel (fast perturbation): the adaptive systems' negative error
//!   is close to the fixed clock's (little margin saved), though the error
//!   amplitude is already reduced;
//! * middle/lower panels: as `T_e` grows the adaptive systems track better
//!   and the error shrinks — "reduced to a minimum value" at `T_e = 50c`.

use adaptive_clock::system::Scheme;
use clock_rescache::Key;
use clock_telemetry::Event;

use crate::cache::CacheKeyExt as _;
use crate::config::PaperParams;
use crate::render::ascii_chart;
use crate::results::{ExperimentResult, Series};
use crate::runner::{run_scheme, OperatingPoint, RunCtx};
use crate::sweep::{parallel_map_planned, Plan};

/// The paper's three perturbation periods, in multiples of `c`.
pub const PANELS: [f64; 3] = [25.0, 37.5, 50.0];

/// The plotted window of period numbers.
pub const WINDOW: (usize, usize) = (500, 600);

/// The four schemes of the figure's legend.
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::iir_paper(),
        Scheme::FreeRo { extra_length: 0 },
        Scheme::TeaTime,
        Scheme::Fixed,
    ]
}

/// The content key of one scheme's windowed timing-error series.
fn errors_key(params: &PaperParams, scheme: &Scheme, point: OperatingPoint) -> Key {
    crate::cache::key("fig7-errors")
        .params(params)
        .scheme(scheme)
        .point(point)
        .u64("window.start", WINDOW.0 as u64)
        .u64("window.end", WINDOW.1 as u64)
        .u64("budget.samples", params.samples_for(point.te_over_c) as u64)
        .u64("budget.warmup", params.warmup as u64)
        .finish()
}

/// Run one panel: timing-error series over the plotted window for each
/// scheme. The result cache is consulted per `(scheme, Te)` point (the
/// cached payload is the plotted window's timing-error series); engine
/// counters/events flow through `ctx.telemetry`, and each scheme's needed
/// margin is reported as one margin-search iteration at coordinate
/// `te_over_c`.
pub fn run_panel(ctx: &RunCtx, te_over_c: f64) -> ExperimentResult {
    let params = &ctx.params;
    let point = OperatingPoint::new(1.0, te_over_c);
    let tasks = schemes();
    let error_series = parallel_map_planned(
        &tasks,
        |scheme| match ctx.cache.get_f64s_any(errors_key(params, scheme, point)) {
            Some(errors) => Plan::Ready(errors),
            None => Plan::Compute(params.samples_for(te_over_c) as u64),
        },
        |scheme| {
            let run = run_scheme(ctx, scheme.clone(), point);
            let errors = run.window(WINDOW.0, WINDOW.1).timing_errors();
            ctx.cache
                .put_f64s(errors_key(params, scheme, point), &errors);
            errors
        },
        &ctx.telemetry,
    );
    let series: Vec<Series> = tasks
        .iter()
        .zip(error_series)
        .map(|(scheme, errors)| {
            let x: Vec<f64> = (WINDOW.0..WINDOW.0 + errors.len())
                .map(|n| n as f64)
                .collect();
            Series::new(scheme.label(), x, errors)
        })
        .collect();
    if ctx.telemetry.is_enabled() {
        for s in &series {
            let worst = s.y.iter().fold(0.0f64, |a, &v| a.min(v));
            let margin = -worst;
            if margin.is_finite() {
                ctx.telemetry.emit(
                    te_over_c,
                    Event::MarginSearchIteration {
                        experiment: "fig7".to_owned(),
                        scheme: s.label.clone(),
                        x: te_over_c,
                        value: margin,
                    },
                );
            }
        }
    }
    let mut result = ExperimentResult::new(
        format!("fig7-te{te_over_c}c"),
        format!(
            "Timing error τ−c, c = {}, HoDV amplitude 0.2c, t_clk = c, Te = {te_over_c}c, \
             period numbers {}..{}",
            params.setpoint, WINDOW.0, WINDOW.1
        ),
    );
    for s in series {
        result = result.with_series(s);
    }
    result
}

/// Run all three panels.
pub fn run(ctx: &RunCtx) -> Vec<ExperimentResult> {
    PANELS.iter().map(|&te| run_panel(ctx, te)).collect()
}

/// Render one panel as an ASCII chart.
pub fn render(result: &ExperimentResult) -> String {
    let series: Vec<(&str, &[f64])> = result
        .series
        .iter()
        .map(|s| (s.label.as_str(), s.y.as_slice()))
        .collect();
    format!(
        "Fig. 7 panel — {}\n\n{}",
        result.description,
        ascii_chart(&series, 100, 18)
    )
}

/// Worst negative error per scheme of one panel (the needed safety margin).
pub fn panel_margins(result: &ExperimentResult) -> Vec<(String, f64)> {
    result
        .series
        .iter()
        .map(|s| {
            let worst = s.y.iter().fold(0.0f64, |a, &v| a.min(v));
            (s.label.clone(), -worst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RunCtx {
        RunCtx::new(PaperParams::default())
    }

    fn margins_of(te: f64) -> Vec<(String, f64)> {
        panel_margins(&run_panel(&ctx(), te))
    }

    fn margin(ms: &[(String, f64)], label: &str) -> f64 {
        ms.iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .1
    }

    #[test]
    fn all_four_series_present_and_window_sized() {
        let r = run_panel(&ctx(), 25.0);
        assert_eq!(r.series.len(), 4);
        for s in &r.series {
            assert_eq!(s.len(), WINDOW.1 - WINDOW.0, "{}", s.label);
            assert_eq!(s.x[0], WINDOW.0 as f64);
        }
    }

    #[test]
    fn adaptation_error_shrinks_as_perturbation_slows() {
        // Paper: middle plot shows "an appreciable adaptation error
        // reduction … once the perturbation frequency is decreased", lower
        // plot "reduced to a minimum value".
        let fast = margins_of(25.0);
        let slow = margins_of(50.0);
        for label in ["IIR RO", "Free RO", "TEAtime RO"] {
            let mf = margin(&fast, label);
            let ms = margin(&slow, label);
            assert!(
                ms < mf,
                "{label}: margin at Te=50c ({ms}) must beat Te=25c ({mf})"
            );
        }
    }

    #[test]
    fn fixed_clock_margin_tracks_full_amplitude_at_any_te() {
        for te in PANELS {
            let ms = margins_of(te);
            let mfix = margin(&ms, "Fixed clock");
            assert!(
                (mfix - 12.8).abs() < 1.5,
                "Te={te}c: fixed margin {mfix}, expected ≈ 12.8"
            );
        }
    }

    #[test]
    fn adaptive_beats_fixed_at_te_50c() {
        let ms = margins_of(50.0);
        let mfix = margin(&ms, "Fixed clock");
        for label in ["IIR RO", "Free RO", "TEAtime RO"] {
            let m = margin(&ms, label);
            assert!(
                m < 0.75 * mfix,
                "{label}: margin {m} vs fixed {mfix} at Te=50c"
            );
        }
    }

    #[test]
    fn upper_panel_margin_close_to_fixed_but_amplitude_reduced() {
        // Paper (upper plot): "the negative timing error … is quite close
        // to the margin that would need a fixed clock …, nevertheless the
        // τ−c amplitude is reduced."
        let r = run_panel(&ctx(), 25.0);
        let amp = |label: &str| -> f64 {
            let s = r.series_named(label).unwrap();
            let max = s.y.iter().fold(f64::MIN, |a, &v| a.max(v));
            let min = s.y.iter().fold(f64::MAX, |a, &v| a.min(v));
            max - min
        };
        let fixed_amp = amp("Fixed clock");
        let iir_amp = amp("IIR RO");
        assert!(
            iir_amp < fixed_amp,
            "IIR amplitude {iir_amp} vs fixed {fixed_amp}"
        );
        let ms = panel_margins(&r);
        let m_iir = margin(&ms, "IIR RO");
        let m_fix = margin(&ms, "Fixed clock");
        assert!(m_iir > 0.4 * m_fix, "at Te=25c the margin saving is modest");
    }

    #[test]
    fn render_has_legend() {
        let text = render(&run_panel(&ctx(), 37.5));
        for label in ["IIR RO", "Free RO", "TEAtime RO", "Fixed clock"] {
            assert!(text.contains(label));
        }
    }
}
