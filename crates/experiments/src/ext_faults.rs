//! `ext-faults` — chaos experiment: fault class × rate × scheme.
//!
//! The paper's robustness story is about *variation* — slow HoDV drift,
//! static mismatch, jitter. This extension asks the harsher question a
//! deployed self-adaptive clock faces: what happens under *faults* —
//! sensor dropout, stuck TDC codes, SEU bit-flips in the controller state
//! or the `l_RO` word, clock-edge glitches, dying RO stages?
//!
//! Every cell of the sweep runs the same deterministic
//! [`FaultSchedule::random`] strike plan (seeded from [`CHAOS_SEED`])
//! through four lanes of one [`BatchLoop`]:
//!
//! 1. **IIR RO** — the paper's integer IIR controller, unhardened;
//! 2. **IIR+res RO** — the same controller behind
//!    [`Resilience::hardened`] (median-of-sensors vote, saturation
//!    clamps, stale-sample watchdog with free-run + re-lock);
//! 3. **TEAtime RO** — the bang-bang baseline;
//! 4. **Free RO** — no feedback at all.
//!
//! Each lane is scored with [`violation_report`] against a deployed
//! safety margin of [`MARGIN`] stages: violation count and rate, worst
//! excursion, re-lock episodes, and mean/max time-to-re-lock (MTTR).
//! Identical schedules across lanes make the columns directly
//! comparable: the *fault exposure* is held fixed while the *scheme*
//! varies.
//!
//! Cells are cached under a key that hashes the canonical schedule id
//! and the resilience configuration, so faulted results can never
//! collide with clean-run summaries (different `kind`, and a "clean"
//! schedule id is itself part of the key).

use adaptive_clock::batch::{BatchLoop, LaneController};
use adaptive_clock::controller::IirConfig;
use adaptive_clock::loopsim::{constant, LoopInputs};
use adaptive_clock::resilience::Resilience;
use adaptive_clock::tdc::Quantization;
use clock_faults::{FaultClass, FaultSchedule};
use clock_metrics::{violation_report, ViolationReport};
use clock_rescache::Key;

use crate::cache::{key, CacheKeyExt};
use crate::render::{fmt, Table};
use crate::runner::RunCtx;
use crate::sweep::{parallel_map_planned, Plan};

/// The fixed chaos seed: every strike plan derives from it, so the whole
/// table is reproducible run-to-run and machine-to-machine.
pub const CHAOS_SEED: u64 = 0x000C_1A05;

/// Deployed safety margin (stages) the violation accounting is scored
/// against: an edge with `c − τ > MARGIN` is a timing violation.
pub const MARGIN: f64 = 6.0;

/// Lock is lost while `|c − τ|` exceeds this band (stages).
const LOCK_TOLERANCE: f64 = 2.0;

/// Consecutive in-band samples required to declare the loop re-locked.
const LOCK_RUN: usize = 20;

/// Redundant TDC sensors visible to the fault models and the median vote.
pub const SENSORS: usize = 3;

/// Background HoDV period in clock periods (slow drift, well inside the
/// loop bandwidth — the faults, not the drift, drive the violations).
const TE_PERIODS: f64 = 200.0;

/// Lane line-up, in table order.
pub const SCHEMES: [&str; 4] = ["IIR RO", "IIR+res RO", "TEAtime RO", "Free RO"];

/// Violation scoring of one scheme under one cell's strike plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOutcome {
    /// Scheme label (one of [`SCHEMES`]).
    pub scheme: &'static str,
    /// Violation / re-lock statistics of the lane's `τ` trace.
    pub report: ViolationReport,
}

/// One cell of the chaos grid: a fault class at an injection rate,
/// scored across the whole scheme line-up.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCell {
    /// Fault class injected.
    pub class: FaultClass,
    /// Requested injection rate (strikes per 1000 periods, before
    /// refractory thinning).
    pub rate: f64,
    /// Fault events that actually fired inside the horizon.
    pub injected: u64,
    /// One outcome per scheme, in [`SCHEMES`] order.
    pub lanes: Vec<LaneOutcome>,
}

const LANE_FIELDS: usize = 9;
const PAYLOAD: usize = 1 + SCHEMES.len() * LANE_FIELDS;

fn report_to_values(r: &ViolationReport) -> [f64; LANE_FIELDS] {
    [
        r.samples as f64,
        r.dropped as f64,
        r.violations as f64,
        r.violation_rate,
        r.worst_excursion,
        r.relock_events as f64,
        r.mean_time_to_relock,
        r.max_time_to_relock,
        if r.unresolved { 1.0 } else { 0.0 },
    ]
}

fn report_from_values(v: &[f64]) -> ViolationReport {
    ViolationReport {
        samples: v[0] as usize,
        dropped: v[1] as usize,
        violations: v[2] as usize,
        violation_rate: v[3],
        worst_excursion: v[4],
        relock_events: v[5] as usize,
        mean_time_to_relock: v[6],
        max_time_to_relock: v[7],
        unresolved: v[8] != 0.0,
    }
}

fn schedule_for(class: FaultClass, rate: f64, horizon: usize) -> FaultSchedule {
    FaultSchedule::random(
        CHAOS_SEED ^ rate.to_bits(),
        class,
        rate,
        horizon as u64,
        SENSORS,
    )
}

fn cell_key(ctx: &RunCtx, class: FaultClass, rate: f64, horizon: usize) -> Key {
    let schedule = schedule_for(class, rate, horizon);
    key("fault-cell")
        .params(&ctx.params)
        .str("class", class.label())
        .f64("rate", rate)
        .u64("horizon", horizon as u64)
        .u64("seed", CHAOS_SEED)
        .str("faults", &schedule.canonical_id())
        .str(
            "resilience",
            &Resilience::hardened(ctx.params.setpoint as f64).canonical_id(),
        )
        .str("schemes", &SCHEMES.join(","))
        .f64("margin", MARGIN)
        .f64("lock_tolerance", LOCK_TOLERANCE)
        .u64("lock_run", LOCK_RUN as u64)
        .u64("sensors", SENSORS as u64)
        .f64("te_periods", TE_PERIODS)
        .finish()
}

fn probe_cell(ctx: &RunCtx, class: FaultClass, rate: f64, horizon: usize) -> Plan<FaultCell> {
    match ctx
        .cache
        .get_f64s(cell_key(ctx, class, rate, horizon), PAYLOAD)
    {
        Some(v) => Plan::Ready(FaultCell {
            class,
            rate,
            injected: v[0] as u64,
            lanes: SCHEMES
                .iter()
                .enumerate()
                .map(|(i, &scheme)| LaneOutcome {
                    scheme,
                    report: report_from_values(&v[1 + i * LANE_FIELDS..1 + (i + 1) * LANE_FIELDS]),
                })
                .collect(),
        }),
        None => Plan::Compute((SCHEMES.len() * horizon) as u64),
    }
}

fn compute_cell(ctx: &RunCtx, class: FaultClass, rate: f64, horizon: usize) -> FaultCell {
    let c = ctx.params.setpoint;
    let schedule = schedule_for(class, rate, horizon);
    let cfg = IirConfig::paper();
    let iir =
        || LaneController::int_iir(&cfg, c).expect("paper IIR gains are a valid configuration");
    let mut batch = BatchLoop::new().with_telemetry(ctx.telemetry.clone());
    batch.push_with(
        1,
        iir(),
        Quantization::Floor,
        schedule.clone(),
        Resilience::default(),
    );
    batch.push_with(
        1,
        iir(),
        Quantization::Floor,
        schedule.clone(),
        Resilience::hardened(c as f64),
    );
    batch.push_with(
        1,
        LaneController::teatime(c, 1.0),
        Quantization::Floor,
        schedule.clone(),
        Resilience::default(),
    );
    batch.push_with(
        1,
        LaneController::free(c),
        Quantization::Floor,
        schedule.clone(),
        Resilience::default(),
    );

    let setpoint = constant(c as f64);
    let zero = constant(0.0);
    let amp = ctx.params.amplitude();
    let hodv = move |n: i64| amp * (std::f64::consts::TAU * n as f64 / TE_PERIODS).sin();
    let inputs: Vec<LoopInputs<'_>> = (0..SCHEMES.len())
        .map(|_| LoopInputs {
            setpoint: &setpoint,
            homogeneous: &hodv,
            heterogeneous: &zero,
        })
        .collect();
    let tr = batch.run(&inputs, horizon);

    let lanes: Vec<LaneOutcome> = SCHEMES
        .iter()
        .enumerate()
        .map(|(i, &scheme)| LaneOutcome {
            scheme,
            report: violation_report(c as f64, &tr.lane(i).tau, MARGIN, LOCK_TOLERANCE, LOCK_RUN),
        })
        .collect();
    ctx.telemetry
        .counter("faults.violations")
        .add(lanes.iter().map(|l| l.report.violations as u64).sum());
    FaultCell {
        class,
        rate,
        injected: schedule.injected_before(horizon as u64),
        lanes,
    }
}

fn store_cell(ctx: &RunCtx, cell: &FaultCell, horizon: usize) {
    let mut values = Vec::with_capacity(PAYLOAD);
    values.push(cell.injected as f64);
    for lane in &cell.lanes {
        values.extend_from_slice(&report_to_values(&lane.report));
    }
    ctx.cache
        .put_f64s(cell_key(ctx, cell.class, cell.rate, horizon), &values);
}

/// Run the chaos grid: every [`FaultClass`] at one rate (quick) or two
/// rates (full), horizon 4 000 (quick) or 12 000 (full) periods.
pub fn run(ctx: &RunCtx, quick: bool) -> Vec<FaultCell> {
    let horizon: usize = if quick { 4_000 } else { 12_000 };
    let rates: &[f64] = if quick { &[2.0] } else { &[1.0, 4.0] };
    let grid: Vec<(FaultClass, f64)> = FaultClass::ALL
        .iter()
        .flat_map(|&class| rates.iter().map(move |&rate| (class, rate)))
        .collect();
    parallel_map_planned(
        &grid,
        |&(class, rate)| probe_cell(ctx, class, rate, horizon),
        |&(class, rate)| {
            let cell = compute_cell(ctx, class, rate, horizon);
            store_cell(ctx, &cell, horizon);
            cell
        },
        &ctx.telemetry,
    )
}

/// Render the violation-rate / MTTR table plus the grep-able totals line.
pub fn render(cells: &[FaultCell]) -> String {
    let mut table = Table::new([
        "fault class",
        "rate/kP",
        "scheme",
        "inj",
        "viol",
        "viol rate",
        "worst",
        "re-locks",
        "MTTR",
        "lock",
    ]);
    for cell in cells {
        for lane in &cell.lanes {
            let r = &lane.report;
            table.row([
                cell.class.label().to_owned(),
                fmt(cell.rate),
                lane.scheme.to_owned(),
                cell.injected.to_string(),
                r.violations.to_string(),
                fmt(r.violation_rate),
                fmt(r.worst_excursion),
                r.relock_events.to_string(),
                fmt(r.mean_time_to_relock),
                if r.unresolved { "lost" } else { "ok" }.to_owned(),
            ]);
        }
    }
    let injected: u64 = cells.iter().map(|c| c.injected).sum();
    let (violations, relocks) = cells
        .iter()
        .flat_map(|c| c.lanes.iter())
        .fold((0usize, 0usize), |(v, l), lane| {
            (v + lane.report.violations, l + lane.report.relock_events)
        });
    format!(
        "ext-faults — chaos sweep at seed {CHAOS_SEED:#x}: deterministic fault schedules \
         (per class, {SENSORS} sensors) driven through four schemes sharing each schedule.\n\
         Violation: c − τ > {MARGIN} stages. Lock band: ±{LOCK_TOLERANCE} stages, re-lock \
         after {LOCK_RUN} quiet periods; MTTR in periods.\n\n{}\n\
         total: {injected} injected, {violations} violations, {relocks} re-locks\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;

    fn ctx() -> RunCtx {
        RunCtx::new(PaperParams::default())
    }

    #[test]
    fn chaos_grid_is_deterministic() {
        let a = run(&ctx(), true);
        let b = run(&ctx(), true);
        assert_eq!(a, b);
        assert_eq!(a.len(), FaultClass::ALL.len());
        for cell in &a {
            assert_eq!(cell.lanes.len(), SCHEMES.len());
            assert!(cell.injected > 0, "{:?} injected nothing", cell.class);
        }
    }

    #[test]
    fn hardened_iir_beats_unhardened_on_seus_and_relocks_every_strike() {
        let cells = run(&ctx(), true);
        for cell in cells.iter().filter(|c| {
            matches!(
                c.class,
                FaultClass::SeuControlState | FaultClass::SeuLroWord
            )
        }) {
            let unhardened = &cell.lanes[0].report;
            let hardened = &cell.lanes[1].report;
            assert!(
                unhardened.violations > hardened.violations,
                "{:?}: unhardened {} vs hardened {}",
                cell.class,
                unhardened.violations,
                hardened.violations
            );
            assert!(
                !hardened.unresolved,
                "{:?}: hardened ended out of lock",
                cell.class
            );
            assert!(
                hardened.relock_events as u64 >= cell.injected,
                "{:?}: {} re-locks for {} strikes",
                cell.class,
                hardened.relock_events,
                cell.injected
            );
        }
    }

    #[test]
    fn all_outputs_are_finite() {
        for cell in run(&ctx(), true) {
            for lane in &cell.lanes {
                let r = &lane.report;
                for v in [
                    r.violation_rate,
                    r.worst_excursion,
                    r.mean_time_to_relock,
                    r.max_time_to_relock,
                ] {
                    assert!(
                        v.is_finite(),
                        "{:?}/{}: non-finite",
                        cell.class,
                        lane.scheme
                    );
                }
            }
        }
    }

    #[test]
    fn render_ends_with_greppable_totals() {
        let out = render(&run(&ctx(), true));
        let last = out.trim_end().lines().last().unwrap();
        assert!(last.starts_with("total: "), "missing totals line: {last}");
        assert!(last.contains("violations"));
        assert!(out.contains("fault class"));
    }

    #[test]
    fn cached_cells_roundtrip_exactly() {
        use crate::cache::SweepCache;
        use clock_telemetry::Telemetry;
        let t = Telemetry::disabled();
        let ctx = RunCtx::new(PaperParams::default()).with_cache(SweepCache::in_memory(&t));
        let cold = run(&ctx, true);
        let warm = run(&ctx, true);
        assert_eq!(cold, warm);
    }
}
