//! Shared machinery for running scheme comparisons at one operating point.

use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::RunTrace;
use clock_metrics::margin;
use clock_telemetry::Telemetry;
use variation::sources::Harmonic;

use crate::config::PaperParams;

/// One operating point of the paper's evaluation: CDN delay and HoDV
/// period, both as multiples of `c`, plus a static RO↔TDC mismatch as a
/// fraction of `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// `t_clk / c`.
    pub t_clk_over_c: f64,
    /// `T_e / c` (HoDV period in nominal clock periods).
    pub te_over_c: f64,
    /// `μ / c`.
    pub mu_over_c: f64,
}

impl OperatingPoint {
    /// A mismatch-free point.
    pub fn new(t_clk_over_c: f64, te_over_c: f64) -> Self {
        OperatingPoint {
            t_clk_over_c,
            te_over_c,
            mu_over_c: 0.0,
        }
    }

    /// Same point with a mismatch.
    #[must_use]
    pub fn with_mu(mut self, mu_over_c: f64) -> Self {
        self.mu_over_c = mu_over_c;
        self
    }
}

/// The three adaptive schemes the paper compares (legend order of Fig. 8).
pub fn adaptive_schemes() -> Vec<Scheme> {
    vec![
        Scheme::iir_paper(),
        Scheme::TeaTime,
        Scheme::FreeRo { extra_length: 0 },
    ]
}

/// Run `scheme` at the operating point and return the post-warm-up trace.
pub fn run_scheme(params: &PaperParams, scheme: Scheme, point: OperatingPoint) -> RunTrace {
    run_scheme_observed(params, scheme, point, &Telemetry::disabled())
}

/// [`run_scheme`] with an instrumentation handle: the underlying event
/// loop reports its counters and violation/saturation/update events
/// through `telemetry`.
pub fn run_scheme_observed(
    params: &PaperParams,
    scheme: Scheme,
    point: OperatingPoint,
    telemetry: &Telemetry,
) -> RunTrace {
    let c = params.setpoint;
    let hodv = Harmonic::new(params.amplitude(), point.te_over_c * c as f64, 0.0);
    let system = SystemBuilder::new(c)
        .cdn_delay(point.t_clk_over_c * c as f64)
        .scheme(scheme)
        .single_sensor_mu(point.mu_over_c * c as f64)
        .telemetry(telemetry.clone())
        .build()
        .expect("paper operating points are valid configurations");
    let samples = params.samples_for(point.te_over_c);
    system.run(&hodv, samples).skip(params.warmup)
}

/// The relative adaptive period `⟨T_clk⟩/T_fixed` of `scheme` at the
/// operating point, with the fixed-clock baseline run under the identical
/// waveform and mismatch.
pub fn relative_period(params: &PaperParams, scheme: Scheme, point: OperatingPoint) -> f64 {
    relative_period_observed(params, scheme, point, &Telemetry::disabled())
}

/// [`relative_period`] with instrumentation attached to the adaptive run
/// (the fixed-clock baseline stays unobserved so events are not doubled).
pub fn relative_period_observed(
    params: &PaperParams,
    scheme: Scheme,
    point: OperatingPoint,
    telemetry: &Telemetry,
) -> f64 {
    let adaptive = run_scheme_observed(params, scheme, point, telemetry);
    let fixed = run_scheme(params, Scheme::Fixed, point);
    margin::relative_adaptive_period(&adaptive, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_builders() {
        let p = OperatingPoint::new(1.0, 25.0).with_mu(-0.2);
        assert_eq!(p.t_clk_over_c, 1.0);
        assert_eq!(p.te_over_c, 25.0);
        assert_eq!(p.mu_over_c, -0.2);
    }

    #[test]
    fn scheme_lineup_matches_paper() {
        let labels: Vec<&str> = adaptive_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["IIR RO", "TEAtime RO", "Free RO"]);
    }

    #[test]
    fn fixed_baseline_margin_equals_hodv_amplitude() {
        let params = PaperParams::default();
        let run = run_scheme(&params, Scheme::Fixed, OperatingPoint::new(1.0, 50.0));
        let m = clock_metrics::margin::required_margin(&run);
        // Fixed clock is fully exposed: needs the whole 0.2c = 12.8 plus
        // the TDC floor quantization (≤ 1 stage).
        assert!((m - 12.8).abs() < 1.2, "fixed margin {m}");
    }

    #[test]
    fn relative_period_sane_at_friendly_point() {
        let params = PaperParams::default();
        let r = relative_period(&params, Scheme::iir_paper(), OperatingPoint::new(1.0, 50.0));
        assert!(r > 0.7 && r < 1.1, "relative period {r}");
    }
}
