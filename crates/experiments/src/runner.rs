//! Shared machinery for running scheme comparisons at one operating point.

use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::RunTrace;
use clock_metrics::margin;
use clock_telemetry::Telemetry;
use variation::sources::Harmonic;

use crate::config::PaperParams;

/// One operating point of the paper's evaluation: CDN delay and HoDV
/// period, both as multiples of `c`, plus a static RO↔TDC mismatch as a
/// fraction of `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// `t_clk / c`.
    pub t_clk_over_c: f64,
    /// `T_e / c` (HoDV period in nominal clock periods).
    pub te_over_c: f64,
    /// `μ / c`.
    pub mu_over_c: f64,
}

impl OperatingPoint {
    /// A mismatch-free point.
    pub fn new(t_clk_over_c: f64, te_over_c: f64) -> Self {
        OperatingPoint {
            t_clk_over_c,
            te_over_c,
            mu_over_c: 0.0,
        }
    }

    /// Same point with a mismatch.
    #[must_use]
    pub fn with_mu(mut self, mu_over_c: f64) -> Self {
        self.mu_over_c = mu_over_c;
        self
    }
}

/// The three adaptive schemes the paper compares (legend order of Fig. 8).
pub fn adaptive_schemes() -> Vec<Scheme> {
    vec![
        Scheme::iir_paper(),
        Scheme::TeaTime,
        Scheme::FreeRo { extra_length: 0 },
    ]
}

/// Run `scheme` at the operating point and return the post-warm-up trace.
pub fn run_scheme(params: &PaperParams, scheme: Scheme, point: OperatingPoint) -> RunTrace {
    run_scheme_observed(params, scheme, point, &Telemetry::disabled())
}

/// [`run_scheme`] with an instrumentation handle: the underlying event
/// loop reports its counters and violation/saturation/update events
/// through `telemetry`.
pub fn run_scheme_observed(
    params: &PaperParams,
    scheme: Scheme,
    point: OperatingPoint,
    telemetry: &Telemetry,
) -> RunTrace {
    let c = params.setpoint;
    let hodv = Harmonic::new(params.amplitude(), point.te_over_c * c as f64, 0.0);
    let system = SystemBuilder::new(c)
        .cdn_delay(point.t_clk_over_c * c as f64)
        .scheme(scheme)
        .single_sensor_mu(point.mu_over_c * c as f64)
        .telemetry(telemetry.clone())
        .build()
        .expect("paper operating points are valid configurations");
    let samples = params.samples_for(point.te_over_c);
    system.run(&hodv, samples).skip(params.warmup)
}

/// [`run_scheme_observed`] with a warm start: the RO begins at
/// `initial_length` (when given) and only `warmup` samples are discarded
/// instead of the full `params.warmup`.
///
/// The measurement window keeps its classic length
/// (`params.samples_for(…) − params.warmup`), so the statistics stay
/// comparable with a cold run; only the discarded transient shrinks. Sweeps
/// seed `initial_length` from [`settled_length`] of a neighbouring grid
/// point, which puts the loop within a few stages of its operating point
/// from sample zero.
pub fn run_scheme_warm(
    params: &PaperParams,
    scheme: Scheme,
    point: OperatingPoint,
    initial_length: Option<i64>,
    warmup: usize,
    telemetry: &Telemetry,
) -> RunTrace {
    let c = params.setpoint;
    let hodv = Harmonic::new(params.amplitude(), point.te_over_c * c as f64, 0.0);
    let mut builder = SystemBuilder::new(c)
        .cdn_delay(point.t_clk_over_c * c as f64)
        .scheme(scheme)
        .single_sensor_mu(point.mu_over_c * c as f64)
        .telemetry(telemetry.clone());
    if let Some(length) = initial_length {
        builder = builder.initial_length(length);
    }
    let system = builder
        .build()
        .expect("paper operating points are valid configurations");
    let window = params
        .samples_for(point.te_over_c)
        .saturating_sub(params.warmup);
    system.run(&hodv, warmup + window).skip(warmup)
}

/// The RO length a run settled to, read off its last sample — the seed for
/// warm-starting the neighbouring grid point via [`run_scheme_warm`].
pub fn settled_length(run: &RunTrace) -> Option<i64> {
    run.samples().last().map(|s| s.lro.round() as i64)
}

/// The relative adaptive period `⟨T_clk⟩/T_fixed` of `scheme` at the
/// operating point, with the fixed-clock baseline run under the identical
/// waveform and mismatch.
pub fn relative_period(params: &PaperParams, scheme: Scheme, point: OperatingPoint) -> f64 {
    relative_period_observed(params, scheme, point, &Telemetry::disabled())
}

/// [`relative_period`] with instrumentation attached to the adaptive run
/// (the fixed-clock baseline stays unobserved so events are not doubled).
pub fn relative_period_observed(
    params: &PaperParams,
    scheme: Scheme,
    point: OperatingPoint,
    telemetry: &Telemetry,
) -> f64 {
    let adaptive = run_scheme_observed(params, scheme, point, telemetry);
    let fixed = run_scheme(params, Scheme::Fixed, point);
    margin::relative_adaptive_period(&adaptive, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_builders() {
        let p = OperatingPoint::new(1.0, 25.0).with_mu(-0.2);
        assert_eq!(p.t_clk_over_c, 1.0);
        assert_eq!(p.te_over_c, 25.0);
        assert_eq!(p.mu_over_c, -0.2);
    }

    #[test]
    fn scheme_lineup_matches_paper() {
        let labels: Vec<&str> = adaptive_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["IIR RO", "TEAtime RO", "Free RO"]);
    }

    #[test]
    fn fixed_baseline_margin_equals_hodv_amplitude() {
        let params = PaperParams::default();
        let run = run_scheme(&params, Scheme::Fixed, OperatingPoint::new(1.0, 50.0));
        let m = clock_metrics::margin::required_margin(&run);
        // Fixed clock is fully exposed: needs the whole 0.2c = 12.8 plus
        // the TDC floor quantization (≤ 1 stage).
        assert!((m - 12.8).abs() < 1.2, "fixed margin {m}");
    }

    #[test]
    fn warm_run_reproduces_cold_statistics_with_quarter_warmup() {
        let params = PaperParams::default();
        let point = OperatingPoint::new(1.0, 50.0);
        let cold = run_scheme(&params, Scheme::iir_paper(), point);
        let seed = settled_length(&cold).expect("cold run has samples");
        let warm = run_scheme_warm(
            &params,
            Scheme::iir_paper(),
            point,
            Some(seed),
            params.warmup / 4,
            &Telemetry::disabled(),
        );
        assert_eq!(warm.len(), cold.len(), "window length must be preserved");
        assert!(
            (warm.mean_period() - cold.mean_period()).abs() < 0.5,
            "warm mean {} vs cold {}",
            warm.mean_period(),
            cold.mean_period()
        );
        let dm = (margin::required_margin(&warm) - margin::required_margin(&cold)).abs();
        assert!(dm < 1.5, "margins differ by {dm}");
    }

    #[test]
    fn relative_period_sane_at_friendly_point() {
        let params = PaperParams::default();
        let r = relative_period(&params, Scheme::iir_paper(), OperatingPoint::new(1.0, 50.0));
        assert!(r > 0.7 && r < 1.1, "relative period {r}");
    }
}
