//! Shared machinery for running scheme comparisons at one operating point:
//! the [`RunCtx`] every experiment threads through its pipeline, the
//! compact per-run summary the result cache stores instead of the full
//! trace, and the declarative [`SweepSpec`] pipeline Fig.-8-style panels
//! are built from.

use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::RunTrace;
use clock_metrics::margin;
use clock_rescache::Key;
use clock_telemetry::{Event, Telemetry};
use variation::sources::Harmonic;

use crate::cache::{CacheKeyExt as _, SweepCache};
use crate::config::PaperParams;
use crate::results::{ExperimentResult, Series};
use crate::sweep::{parallel_map_planned, CancelToken, Plan};

/// The shared context one experiment invocation threads through the whole
/// pipeline: the paper parameters plus the cache and telemetry handles
/// every grid point consults. One `RunCtx` replaces the
/// `(params, cache, telemetry)` triplet the per-experiment
/// `*_observed`/`*_cached` entry-point ladders used to thread separately —
/// a plain [`RunCtx::new`] context *is* the classic uninstrumented,
/// uncached run.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    /// Paper parameters of the run.
    pub params: PaperParams,
    /// Result cache consulted per grid point (disabled by default).
    pub cache: SweepCache,
    /// Instrumentation handle (disabled by default).
    pub telemetry: Telemetry,
    /// Cooperative cancellation token consulted once per grid point
    /// (never fires by default). The experiment service arms this with
    /// the job's cancel flag and wall-clock deadline.
    pub cancel: CancelToken,
}

impl RunCtx {
    /// A context with the given parameters and no cache or instrumentation.
    pub fn new(params: PaperParams) -> Self {
        RunCtx {
            params,
            cache: SweepCache::disabled(),
            telemetry: Telemetry::disabled(),
            cancel: CancelToken::never(),
        }
    }

    /// Attach a result cache.
    #[must_use]
    pub fn with_cache(mut self, cache: SweepCache) -> Self {
        self.cache = cache;
        self
    }

    /// Attach an instrumentation handle.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a cancellation token. Sweeps consult it at every grid
    /// point (probe and compute), so a fired token stops an experiment
    /// within one point's wall time.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The same context with instrumentation stripped — for fixed-clock
    /// baseline runs, whose engine events must not be doubled into the
    /// adaptive runs' stream. The cache stays attached.
    #[must_use]
    pub fn unobserved(&self) -> RunCtx {
        RunCtx {
            telemetry: Telemetry::disabled(),
            ..self.clone()
        }
    }
}

/// One operating point of the paper's evaluation: CDN delay and HoDV
/// period, both as multiples of `c`, plus a static RO↔TDC mismatch as a
/// fraction of `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// `t_clk / c`.
    pub t_clk_over_c: f64,
    /// `T_e / c` (HoDV period in nominal clock periods).
    pub te_over_c: f64,
    /// `μ / c`.
    pub mu_over_c: f64,
}

impl OperatingPoint {
    /// A mismatch-free point.
    pub fn new(t_clk_over_c: f64, te_over_c: f64) -> Self {
        OperatingPoint {
            t_clk_over_c,
            te_over_c,
            mu_over_c: 0.0,
        }
    }

    /// Same point with a mismatch.
    #[must_use]
    pub fn with_mu(mut self, mu_over_c: f64) -> Self {
        self.mu_over_c = mu_over_c;
        self
    }
}

/// The three adaptive schemes the paper compares (legend order of Fig. 8).
pub fn adaptive_schemes() -> Vec<Scheme> {
    vec![
        Scheme::iir_paper(),
        Scheme::TeaTime,
        Scheme::FreeRo { extra_length: 0 },
    ]
}

/// Run `scheme` at the operating point and return the post-warm-up trace.
/// The underlying event loop reports its counters and
/// violation/saturation/update events through `ctx.telemetry`.
pub fn run_scheme(ctx: &RunCtx, scheme: Scheme, point: OperatingPoint) -> RunTrace {
    let c = ctx.params.setpoint;
    let hodv = Harmonic::new(ctx.params.amplitude(), point.te_over_c * c as f64, 0.0);
    let system = SystemBuilder::new(c)
        .cdn_delay(point.t_clk_over_c * c as f64)
        .scheme(scheme)
        .single_sensor_mu(point.mu_over_c * c as f64)
        .telemetry(ctx.telemetry.clone())
        .build()
        .expect("paper operating points are valid configurations");
    let samples = ctx.params.samples_for(point.te_over_c);
    system.run(&hodv, samples).skip(ctx.params.warmup)
}

/// [`run_scheme`] with a warm start: the RO begins at `initial_length`
/// (when given) and only `warmup` samples are discarded instead of the
/// full `ctx.params.warmup`.
///
/// The measurement window keeps its classic length
/// (`params.samples_for(…) − params.warmup`), so the statistics stay
/// comparable with a cold run; only the discarded transient shrinks. Sweeps
/// seed `initial_length` from [`settled_length`] of a neighbouring grid
/// point, which puts the loop within a few stages of its operating point
/// from sample zero.
pub fn run_scheme_warm(
    ctx: &RunCtx,
    scheme: Scheme,
    point: OperatingPoint,
    initial_length: Option<i64>,
    warmup: usize,
) -> RunTrace {
    let c = ctx.params.setpoint;
    let hodv = Harmonic::new(ctx.params.amplitude(), point.te_over_c * c as f64, 0.0);
    let mut builder = SystemBuilder::new(c)
        .cdn_delay(point.t_clk_over_c * c as f64)
        .scheme(scheme)
        .single_sensor_mu(point.mu_over_c * c as f64)
        .telemetry(ctx.telemetry.clone());
    if let Some(length) = initial_length {
        builder = builder.initial_length(length);
    }
    let system = builder
        .build()
        .expect("paper operating points are valid configurations");
    let window = ctx
        .params
        .samples_for(point.te_over_c)
        .saturating_sub(ctx.params.warmup);
    system.run(&hodv, warmup + window).skip(warmup)
}

/// The RO length a run settled to, read off its last sample — the seed for
/// warm-starting the neighbouring grid point via [`run_scheme_warm`].
pub fn settled_length(run: &RunTrace) -> Option<i64> {
    run.samples().last().map(|s| s.lro.round() as i64)
}

/// Everything the sweep figures read off a post-warm-up run, reduced to
/// six floats so a grid point caches in one small record instead of a
/// multi-thousand-sample trace. Each statistic is computed by the *same*
/// fold as the `RunTrace` methods, so figures assembled from summaries are
/// bit-identical to figures assembled from traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// The set-point the run used.
    pub setpoint: f64,
    /// Recorded (post-warm-up) sample count.
    pub samples: u64,
    /// Mean generated period ([`RunTrace::mean_period`]).
    pub mean_period: f64,
    /// Needed safety margin ([`RunTrace::worst_negative_error`]).
    pub worst_negative_error: f64,
    /// Performance left on the table ([`RunTrace::worst_positive_error`]).
    pub worst_positive_error: f64,
    /// RO length at the last sample (NaN when the run is empty) — the
    /// warm-start seed.
    pub last_lro: f64,
}

impl RunSummary {
    /// Flat-record arity (the cache payload schema).
    pub const FIELDS: usize = 6;

    /// Summarize a run.
    pub fn of(run: &RunTrace) -> Self {
        RunSummary {
            setpoint: run.setpoint(),
            samples: run.len() as u64,
            mean_period: run.mean_period(),
            worst_negative_error: run.worst_negative_error(),
            worst_positive_error: run.worst_positive_error(),
            last_lro: run.samples().last().map_or(f64::NAN, |s| s.lro),
        }
    }

    /// The summary as a flat cache record.
    pub fn to_values(self) -> [f64; Self::FIELDS] {
        [
            self.setpoint,
            self.samples as f64,
            self.mean_period,
            self.worst_negative_error,
            self.worst_positive_error,
            self.last_lro,
        ]
    }

    /// Rebuild from [`RunSummary::to_values`]; `None` on any other arity.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        let [setpoint, samples, mean_period, worst_negative_error, worst_positive_error, last_lro] =
            *values
        else {
            return None;
        };
        Some(RunSummary {
            setpoint,
            samples: samples as u64,
            mean_period,
            worst_negative_error,
            worst_positive_error,
            last_lro,
        })
    }

    /// The minimal error-free margin, `max(0, max_n (c − τ[n]))`.
    pub fn required_margin(&self) -> f64 {
        self.worst_negative_error
    }

    /// Mean period once margined: `⟨T⟩ + m*` (cf.
    /// [`margin::adaptive_needed_period`]).
    pub fn needed_adaptive_period(&self) -> f64 {
        self.mean_period + self.worst_negative_error
    }

    /// Fixed-clock period needed for error-free operation (cf.
    /// [`margin::needed_fixed_period`]).
    pub fn needed_fixed_period(&self) -> f64 {
        self.setpoint + self.worst_negative_error
    }

    /// The paper's figure of merit against a fixed-clock baseline run (cf.
    /// [`margin::relative_adaptive_period`]).
    pub fn relative_to(&self, fixed: &RunSummary) -> f64 {
        self.needed_adaptive_period() / fixed.needed_fixed_period()
    }

    /// Figure of merit under an externally-imposed margin (the free RO's
    /// design margin in Fig. 9).
    pub fn relative_with_margin(&self, margin: f64, fixed: &RunSummary) -> f64 {
        (self.mean_period + margin) / fixed.needed_fixed_period()
    }

    /// The settled RO length, when the run recorded anything.
    pub fn settled_length(&self) -> Option<i64> {
        self.last_lro
            .is_finite()
            .then(|| self.last_lro.round() as i64)
    }
}

/// The content key of one `(params, scheme, operating point)` standard run
/// (full warm-up, classic measurement window). The sample and warm-up
/// budgets are hashed explicitly even though they derive from `params`, so
/// a future budget-policy change cannot silently alias old records.
pub fn summary_key(params: &PaperParams, scheme: &Scheme, point: OperatingPoint) -> Key {
    crate::cache::key("run-summary")
        .params(params)
        .scheme(scheme)
        .point(point)
        .u64("budget.samples", params.samples_for(point.te_over_c) as u64)
        .u64("budget.warmup", params.warmup as u64)
        .finish()
}

/// Probe `ctx.cache` for a standard run's summary: `Ready` on a hit,
/// `Compute` with the point's simulated-step budget (the scheduler's cost
/// hint) on a miss.
pub fn summary_probe(ctx: &RunCtx, scheme: &Scheme, point: OperatingPoint) -> Plan<RunSummary> {
    let key = summary_key(&ctx.params, scheme, point);
    match ctx
        .cache
        .get_f64s(key, RunSummary::FIELDS)
        .and_then(|v| RunSummary::from_values(&v))
    {
        Some(summary) => Plan::Ready(summary),
        None => Plan::Compute(ctx.params.samples_for(point.te_over_c) as u64),
    }
}

/// Run the point for real, summarize, and backfill the cache.
pub fn summary_compute(ctx: &RunCtx, scheme: &Scheme, point: OperatingPoint) -> RunSummary {
    let run = run_scheme(ctx, scheme.clone(), point);
    let summary = RunSummary::of(&run);
    ctx.cache.put_f64s(
        summary_key(&ctx.params, scheme, point),
        &summary.to_values(),
    );
    summary
}

/// The relative adaptive period `⟨T_clk⟩/T_fixed` of `scheme` at the
/// operating point, with the fixed-clock baseline run under the identical
/// waveform and mismatch. Instrumentation is attached to the adaptive run
/// only (the baseline stays unobserved so events are not doubled).
pub fn relative_period(ctx: &RunCtx, scheme: Scheme, point: OperatingPoint) -> f64 {
    let adaptive = run_scheme(ctx, scheme, point);
    let fixed = run_scheme(&ctx.unobserved(), Scheme::Fixed, point);
    margin::relative_adaptive_period(&adaptive, &fixed)
}

/// The declarative description of one Fig.-8-style sweep panel: a grid of
/// x values, the adaptive scheme line-up, and the operating point each x
/// maps to. [`run_sweep`] turns a spec into an [`ExperimentResult`] with
/// one series per scheme, each y the relative adaptive period against the
/// shared per-point fixed-clock baseline.
pub struct SweepSpec<'a, F: Fn(f64) -> OperatingPoint + Sync> {
    /// Result id — also the `experiment` field of the margin-search events
    /// the sweep emits.
    pub id: &'a str,
    /// Human-readable result description.
    pub description: String,
    /// The sweep grid (the produced series' x values).
    pub grid: Vec<f64>,
    /// The adaptive schemes swept, in legend order.
    pub schemes: Vec<Scheme>,
    /// The operating point a grid value maps to.
    pub point_at: F,
}

/// Run a declarative sweep: the fixed-clock baselines first (one per grid
/// point, shared by every scheme — the baseline depends only on the
/// operating point, not on the scheme under test; they run unobserved so
/// adaptive-run telemetry is not doubled), then each scheme in line-up
/// order, reporting every grid point as a margin-search iteration on
/// `ctx.telemetry` (cache hits report too — the iteration happened, it
/// just cost nothing).
pub fn run_sweep<F>(ctx: &RunCtx, spec: &SweepSpec<'_, F>) -> ExperimentResult
where
    F: Fn(f64) -> OperatingPoint + Sync,
{
    let mut sweep_scope = ctx.telemetry.scope("sweep");
    sweep_scope.attr("experiment", spec.id);
    sweep_scope.attr("points", spec.grid.len());
    let xs = &spec.grid;
    // The baseline stage runs on the unobserved context, so its stage
    // span (like its per-point instrumentation) goes to the *observed*
    // handle explicitly — the stage's wall time is real even though its
    // engine events are intentionally dropped.
    let fixed: Vec<RunSummary> = {
        let mut stage_scope = ctx.telemetry.scope("sweep.stage");
        stage_scope.attr("scheme", "Fixed");
        let baseline_ctx = ctx.unobserved();
        parallel_map_planned(
            xs,
            |&x| {
                ctx.cancel.check();
                summary_probe(&baseline_ctx, &Scheme::Fixed, (spec.point_at)(x))
            },
            |&x| {
                ctx.cancel.check();
                summary_compute(&baseline_ctx, &Scheme::Fixed, (spec.point_at)(x))
            },
            &ctx.telemetry,
        )
    };
    let mut result = ExperimentResult::new(spec.id, spec.description.clone());
    for scheme in &spec.schemes {
        let summaries = {
            let mut stage_scope = ctx.telemetry.scope("sweep.stage");
            stage_scope.attr("scheme", scheme.label());
            parallel_map_planned(
                xs,
                |&x| {
                    ctx.cancel.check();
                    summary_probe(ctx, scheme, (spec.point_at)(x))
                },
                |&x| {
                    ctx.cancel.check();
                    summary_compute(ctx, scheme, (spec.point_at)(x))
                },
                &ctx.telemetry,
            )
        };
        let ys: Vec<f64> = summaries
            .iter()
            .zip(&fixed)
            .map(|(adaptive, baseline)| adaptive.relative_to(baseline))
            .collect();
        if ctx.telemetry.is_enabled() {
            for (&x, &y) in xs.iter().zip(&ys) {
                if y.is_finite() {
                    ctx.telemetry.emit(
                        x,
                        Event::MarginSearchIteration {
                            experiment: spec.id.to_owned(),
                            scheme: scheme.label().to_owned(),
                            x,
                            value: y,
                        },
                    );
                }
            }
        }
        result = result.with_series(Series::new(scheme.label(), xs.clone(), ys));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_builders() {
        let p = OperatingPoint::new(1.0, 25.0).with_mu(-0.2);
        assert_eq!(p.t_clk_over_c, 1.0);
        assert_eq!(p.te_over_c, 25.0);
        assert_eq!(p.mu_over_c, -0.2);
    }

    #[test]
    fn scheme_lineup_matches_paper() {
        let labels: Vec<&str> = adaptive_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["IIR RO", "TEAtime RO", "Free RO"]);
    }

    #[test]
    fn ctx_builders_attach_handles_and_unobserved_strips_telemetry() {
        let ctx = RunCtx::new(PaperParams::default())
            .with_cache(SweepCache::in_memory(&Telemetry::disabled()))
            .with_telemetry(Telemetry::enabled());
        assert!(ctx.cache.is_enabled());
        assert!(ctx.telemetry.is_enabled());
        let baseline = ctx.unobserved();
        assert!(baseline.cache.is_enabled(), "cache must stay attached");
        assert!(!baseline.telemetry.is_enabled());
    }

    #[test]
    fn fixed_baseline_margin_equals_hodv_amplitude() {
        let ctx = RunCtx::new(PaperParams::default());
        let run = run_scheme(&ctx, Scheme::Fixed, OperatingPoint::new(1.0, 50.0));
        let m = clock_metrics::margin::required_margin(&run);
        // Fixed clock is fully exposed: needs the whole 0.2c = 12.8 plus
        // the TDC floor quantization (≤ 1 stage).
        assert!((m - 12.8).abs() < 1.2, "fixed margin {m}");
    }

    #[test]
    fn warm_run_reproduces_cold_statistics_with_quarter_warmup() {
        let ctx = RunCtx::new(PaperParams::default());
        let point = OperatingPoint::new(1.0, 50.0);
        let cold = run_scheme(&ctx, Scheme::iir_paper(), point);
        let seed = settled_length(&cold).expect("cold run has samples");
        let warm = run_scheme_warm(
            &ctx,
            Scheme::iir_paper(),
            point,
            Some(seed),
            ctx.params.warmup / 4,
        );
        assert_eq!(warm.len(), cold.len(), "window length must be preserved");
        assert!(
            (warm.mean_period() - cold.mean_period()).abs() < 0.5,
            "warm mean {} vs cold {}",
            warm.mean_period(),
            cold.mean_period()
        );
        let dm = (margin::required_margin(&warm) - margin::required_margin(&cold)).abs();
        assert!(dm < 1.5, "margins differ by {dm}");
    }

    #[test]
    fn relative_period_sane_at_friendly_point() {
        let ctx = RunCtx::new(PaperParams::default());
        let r = relative_period(&ctx, Scheme::iir_paper(), OperatingPoint::new(1.0, 50.0));
        assert!(r > 0.7 && r < 1.1, "relative period {r}");
    }
}
