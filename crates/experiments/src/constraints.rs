//! §III-A — the control-block constraints (Eq. 6–8) and the closed-loop
//! stability limit versus CDN delay.
//!
//! Not a numbered figure in the paper, but its central piece of theory:
//! `N(1) ≠ 0` and `D(1) = 0` guarantee a nonzero steady-state length
//! correction and zero steady-state error under step perturbations. This
//! module verifies the constraints for the paper's filter, computes the
//! steady-state responses by the final value theorem, and quantifies the
//! paper's "clock domain size" warning: the largest whole-period CDN delay
//! `M` for which the loop of Eq. (4)–(5) is still stable.

use zdomain::{closedloop, iir_paper_filter};

use crate::render::{fmt, Table};

/// Constraint-check and stability summary of the paper's IIR filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintsReport {
    /// `N(1)` of the filter (must be nonzero).
    pub n_at_one: f64,
    /// `D(1)` of the filter (must be zero).
    pub d_at_one: f64,
    /// Whether Eq. (8) is satisfied.
    pub satisfied: bool,
    /// Steady-state error for a unit set-point step (Eq. 7: must be 0).
    pub ss_error_setpoint: f64,
    /// Steady-state error for a unit mismatch step (must be 0).
    pub ss_error_mismatch: f64,
    /// Steady-state length change for a unit mismatch step (Eq. 6: −1).
    pub ss_length_mismatch: f64,
    /// Per-`M` spectral radius of the closed loop.
    pub radius_by_m: Vec<(usize, f64)>,
    /// Largest stable `M`.
    pub max_stable_m: Option<usize>,
}

/// Run the constraint verification for `M ∈ 0..=max_m`.
pub fn run(max_m: usize) -> ConstraintsReport {
    let h = iir_paper_filter();
    let radius_by_m: Vec<(usize, f64)> = (0..=max_m)
        .map(|m| (m, closedloop::stability(&h, m).spectral_radius))
        .collect();
    ConstraintsReport {
        n_at_one: h.num().at_one(),
        d_at_one: h.den().at_one(),
        satisfied: closedloop::satisfies_constraints(&h),
        ss_error_setpoint: closedloop::steady_state_error(&h, 1, 1.0, 0.0, 0.0).unwrap_or(f64::NAN),
        ss_error_mismatch: closedloop::steady_state_error(&h, 1, 0.0, 0.0, 1.0).unwrap_or(f64::NAN),
        ss_length_mismatch: closedloop::steady_state_length(&h, 1, 0.0, 0.0, 1.0)
            .unwrap_or(f64::NAN),
        radius_by_m,
        max_stable_m: closedloop::max_stable_cdn_delay(&h, max_m),
    }
}

/// Render the report.
pub fn render(r: &ConstraintsReport) -> String {
    let mut out = String::new();
    out.push_str("§III-A constraints for the paper's IIR control block (Eq. 6–8)\n\n");
    out.push_str(&format!(
        "  N(1) = {} (must be ≠ 0)\n  D(1) = {} (must be = 0)\n  Eq. (8) satisfied: {}\n\n",
        fmt(r.n_at_one),
        fmt(r.d_at_one),
        r.satisfied
    ));
    out.push_str(&format!(
        "  steady-state δ for set-point step: {}\n  steady-state δ for mismatch step:  {}\n  \
         steady-state l_RO for mismatch step: {} (counteracts the unit mismatch)\n\n",
        fmt(r.ss_error_setpoint),
        fmt(r.ss_error_mismatch),
        fmt(r.ss_length_mismatch)
    ));
    let mut t = Table::new(["M (CDN periods)", "spectral radius", "stable"]);
    for (m, rad) in &r.radius_by_m {
        t.row([
            m.to_string(),
            fmt(*rad),
            if *rad < 1.0 { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nLargest stable CDN delay: M = {:?} periods — the 'clock domain size' limit \
         of the paper's conclusions.\n",
        r.max_stable_m
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_hold_for_paper_filter() {
        let r = run(20);
        assert!(r.satisfied);
        assert!(r.n_at_one.abs() > 1e-9);
        assert!(r.d_at_one.abs() < 1e-9);
        assert!(r.ss_error_setpoint.abs() < 1e-9);
        assert!(r.ss_error_mismatch.abs() < 1e-9);
        assert!((r.ss_length_mismatch + 1.0).abs() < 1e-6);
    }

    #[test]
    fn stability_bound_is_finite_and_consistent() {
        let r = run(60);
        let m = r.max_stable_m.expect("stable at M = 0");
        assert!(m >= 1, "the paper simulates t_clk = c (M ≈ 1) successfully");
        assert!(m < 60, "bound must exist within the scan");
        // radius table consistent with the bound
        for (mm, rad) in &r.radius_by_m {
            if *mm <= m {
                assert!(*rad < 1.0, "M={mm} should be stable, radius {rad}");
            }
        }
    }

    #[test]
    fn render_mentions_bound() {
        let r = run(10);
        let text = render(&r);
        assert!(text.contains("spectral radius"));
        assert!(text.contains("clock domain size"));
    }
}
