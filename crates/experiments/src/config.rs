//! Shared simulation parameters, matching the paper's §IV.

use serde::{Deserialize, Serialize};

/// The paper's global simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperParams {
    /// Set-point `c` ("the set-point value for all the simulations is
    /// c = 64").
    pub setpoint: i64,
    /// HoDV amplitude as a fraction of `c` ("the amplitude of the periodic
    /// perturbation e is set equal to 0.2c").
    pub amplitude_frac: f64,
    /// Samples to discard as warm-up before computing margins (the real
    /// system has been running forever; cold-start transients are not part
    /// of the paper's steady-state figures).
    pub warmup: usize,
    /// Minimum recorded samples after warm-up.
    pub min_samples: usize,
    /// Perturbation cycles to cover after warm-up.
    pub cycles: usize,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            setpoint: 64,
            amplitude_frac: 0.2,
            warmup: 1200,
            min_samples: 4000,
            cycles: 6,
        }
    }
}

impl PaperParams {
    /// HoDV amplitude in stages (`0.2c = 12.8` for the paper's values).
    pub fn amplitude(&self) -> f64 {
        self.amplitude_frac * self.setpoint as f64
    }

    /// Total samples to simulate for a perturbation of period
    /// `te_over_c · c`: warm-up plus enough cycles of the perturbation.
    pub fn samples_for(&self, te_over_c: f64) -> usize {
        let per_cycle = te_over_c.ceil().max(1.0) as usize;
        self.warmup + (self.cycles * per_cycle).max(self.min_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = PaperParams::default();
        assert_eq!(p.setpoint, 64);
        assert!((p.amplitude() - 12.8).abs() < 1e-12);
    }

    #[test]
    fn sample_budget_scales_with_perturbation_period() {
        let p = PaperParams::default();
        assert!(p.samples_for(1000.0) >= p.warmup + 6000);
        assert!(p.samples_for(1.0) >= p.warmup + p.min_samples);
    }
}
