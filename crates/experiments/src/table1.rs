//! Table I — sources of variability classified by time and space
//! characteristics.

use variation::taxonomy::{self, SpatialNature, TimeNature};

use crate::render::Table;

/// Render Table I in the paper's layout (rows = spatial nature, columns =
/// temporal nature; each cell lists its sources).
pub fn render() -> String {
    let mut t = Table::new(["", "Static", "Dynamic"]);
    for space in [SpatialNature::Homogeneous, SpatialNature::Heterogeneous] {
        let static_cell = cell_text(TimeNature::Static, space);
        let dynamic_cell = cell_text(TimeNature::Dynamic, space);
        t.row([format!("{space:?}"), static_cell, dynamic_cell]);
    }
    format!(
        "TABLE I — Sources of variability classified by time and space characteristics\n\n{}",
        t.render()
    )
}

fn cell_text(time: TimeNature, space: SpatialNature) -> String {
    taxonomy::cell(time, space)
        .iter()
        .map(|s| s.label())
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_table_contains_all_ten_sources() {
        let s = render();
        for src in variation::taxonomy::SourceKind::ALL {
            assert!(s.contains(src.label()), "missing {:?}", src);
        }
    }

    #[test]
    fn layout_matches_paper() {
        let s = render();
        // D2D sits in the static-homogeneous cell: same row as Homogeneous
        let homo_row = s
            .lines()
            .find(|l| l.contains("Homogeneous") && !l.contains("Heterogeneous"))
            .unwrap();
        assert!(homo_row.contains("Die to die"));
        assert!(homo_row.contains("VRM"));
        let hetero_row = s.lines().find(|l| l.contains("Heterogeneous")).unwrap();
        assert!(hetero_row.contains("Within die"));
        assert!(hetero_row.contains("IR drop"));
        assert!(hetero_row.contains("Ageing"));
    }
}
