//! `experiments` — the reproduction harness for every table and figure of
//! the SOCC 2012 adaptive-clock paper.
//!
//! Each module regenerates one artifact and prints the same rows/series the
//! paper reports:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — variability taxonomy |
//! | [`fig2`] | Fig. 2 — worst-case induced mismatch vs `t_clk/T_ν` |
//! | [`fig7`] | Fig. 7 — timing-error traces for the four schemes |
//! | [`fig8`] | Fig. 8 — relative adaptive period vs CDN delay / HoDV period |
//! | [`fig9`] | Fig. 9 — relative adaptive period vs RO↔TDC mismatch |
//! | [`worked`] | §IV worked examples (60 % / 70 % SM reduction) |
//! | [`constraints`] | §III-A constraints and the closed-loop stability bound |
//!
//! Beyond the paper's own artifacts, four extension experiments quantify
//! what the paper only sketches:
//!
//! | Module | Extension |
//! |---|---|
//! | [`ext_sensitivity`] | z-domain prediction of the adaptation error envelope |
//! | [`ext_throughput`] | Razor-style pipeline throughput vs operated set-point |
//! | [`ext_noise`] | broadband (OU + SSN burst) robustness |
//! | [`ext_stability`] | clock-domain-size stability map across gain sets |
//! | [`ext_lock`] | cold-start lock time vs the modal-analysis prediction |
//! | [`ext_coupling`] | additive (paper) vs multiplicative variation coupling |
//! | [`ext_faults`] | chaos sweep: fault class × rate × scheme violation/MTTR table |
//! | [`ext_yield`] | Monte Carlo timing-yield vs safety-margin surfaces per scheme |
//! | [`ext_mesh`] | GALS clock-mesh scenarios: domain failure, Byzantine neighbour, power event |
//!
//! The `repro` binary dispatches on experiment id:
//! `cargo run -p experiments --bin repro -- fig8`. It can also run as a
//! resident experiment service (`repro serve` / `submit` / `jobs` /
//! `cancel`): the [`service`] module plugs the registry into
//! `clock-serve`'s supervised job runtime, sharing one persistent result
//! cache across submissions.
//!
//! Results are returned as structured [`results`] values (serializable) and
//! rendered to text with [`render`], so EXPERIMENTS.md entries can be
//! regenerated and diffed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchrun;
pub mod bench;
pub mod cache;
pub mod config;
pub mod constraints;
pub mod ext_coupling;
pub mod ext_faults;
pub mod ext_lock;
pub mod ext_mesh;
pub mod ext_noise;
pub mod ext_sensitivity;
pub mod ext_stability;
pub mod ext_throughput;
pub mod ext_yield;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod montecarlo;
pub mod registry;
pub mod render;
pub mod results;
pub mod runner;
pub mod service;
pub mod sweep;
pub mod table1;
pub mod worked;
