//! Extension: robustness under realistic broadband variation instead of
//! the paper's single-tone HoDV — band-limited supply noise, an
//! Ornstein–Uhlenbeck temperature drift, and a train of SSN droop bursts,
//! all at once.
//!
//! The single-tone figures say adaptation wins when the perturbation is
//! slow relative to the loop delay; a broadband profile contains both
//! regimes, so this experiment checks which fraction of the fixed clock's
//! margin survives in the mix.

use adaptive_clock::system::{Scheme, SystemBuilder};
use clock_metrics::margin;
use variation::sources::Composite;
use variation::stochastic::{OuProcess, SsnBursts, SsnConfig};

use crate::cache::CacheKeyExt as _;
use crate::config::PaperParams;
use crate::render::{fmt, Table};
use crate::results::{ExperimentResult, Series};
use crate::runner::{adaptive_schemes, RunCtx};
use crate::sweep::{parallel_map_planned, Plan};

/// Build the broadband profile for a given seed: slow OU temperature drift
/// (σ = 0.1c, τ = 400c) + occasional SSN droops (amplitude up to 0.1c,
/// duration 20–60c, mean gap 300c).
pub fn broadband_profile(params: &PaperParams, seed: u64, horizon: f64) -> Composite {
    let c = params.setpoint as f64;
    Composite::new()
        .with(OuProcess::new(seed, 0.1 * c, 400.0 * c, horizon, c / 4.0))
        .with(SsnBursts::new(
            seed.wrapping_add(1),
            SsnConfig {
                mean_gap: 300.0 * c,
                amplitude: (0.02 * c, 0.1 * c),
                duration: (20.0 * c, 60.0 * c),
                horizon,
            },
        ))
}

/// Relative adaptive period per scheme, averaged over `seeds` independent
/// broadband profiles. The result cache is consulted per `(scheme, seed)`
/// grid point.
pub fn run(ctx: &RunCtx, seeds: &[u64]) -> ExperimentResult {
    let params = &ctx.params;
    let c = params.setpoint;
    let samples = 20_000usize;
    let horizon = (samples as f64 + 10.0) * 1.5 * c as f64;

    let mut result = ExperimentResult::new(
        "ext-noise",
        format!(
            "Relative adaptive period under broadband variation \
             (OU drift σ=0.1c τ=400c + SSN droops; c = {c}, t_clk = c; \
             {} seeds)",
            seeds.len()
        ),
    );
    for scheme in adaptive_schemes() {
        let seed_key = |seed: u64| {
            crate::cache::key("ext-noise")
                .params(params)
                .scheme(&scheme)
                .u64("seed", seed)
                .u64("budget.samples", samples as u64)
                .finish()
        };
        let ratios = parallel_map_planned(
            seeds,
            |&seed| match ctx.cache.get_f64s(seed_key(seed), 1) {
                Some(v) => Plan::Ready(v[0]),
                // The point runs the adaptive system *and* its fixed
                // baseline, so it costs two full simulations.
                None => Plan::Compute(2 * samples as u64),
            },
            |&seed| {
                let profile = broadband_profile(params, seed, horizon);
                let adaptive = SystemBuilder::new(c)
                    .cdn_delay(c as f64)
                    .scheme(scheme.clone())
                    .build()
                    .expect("valid configuration")
                    .run(&profile, samples)
                    .skip(params.warmup);
                let fixed = SystemBuilder::new(c)
                    .scheme(Scheme::Fixed)
                    .build()
                    .expect("valid configuration")
                    .run(&profile, samples)
                    .skip(params.warmup);
                let ratio = margin::relative_adaptive_period(&adaptive, &fixed);
                ctx.cache.put_f64s(seed_key(seed), &[ratio]);
                ratio
            },
            &ctx.telemetry,
        );
        let xs: Vec<f64> = seeds.iter().map(|&s| s as f64).collect();
        result = result.with_series(Series::new(scheme.label(), xs, ratios));
    }
    result
}

/// Render as a per-seed table with per-scheme means.
pub fn render(result: &ExperimentResult) -> String {
    let mut headers = vec!["seed".to_owned()];
    headers.extend(result.series.iter().map(|s| s.label.clone()));
    let mut t = Table::new(headers);
    if let Some(first) = result.series.first() {
        for (i, &x) in first.x.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            row.extend(result.series.iter().map(|s| fmt(s.y[i])));
            t.row(row);
        }
    }
    let mut out = format!("Extension — {}\n\n{}", result.description, t.render());
    for s in &result.series {
        if s.y.is_empty() {
            continue;
        }
        let ci = clock_metrics::bootstrap::bootstrap_mean_ci(&s.y, 0.95, 2000, 0xBEEF);
        out.push_str(&format!(
            "mean ratio for {}: {:.4}  (95% bootstrap CI [{:.4}, {:.4}])\n",
            s.label, ci.mean, ci.lo, ci.hi
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use variation::Waveform;

    #[test]
    fn adaptive_schemes_beat_fixed_under_broadband_variation() {
        let ctx = RunCtx::new(PaperParams::default());
        let r = run(&ctx, &[11, 22]);
        for s in &r.series {
            for (seed, ratio) in s.x.iter().zip(&s.y) {
                assert!(
                    *ratio < 1.0,
                    "{} seed {seed}: ratio {ratio} should be below 1 (slow-dominated profile)",
                    s.label
                );
                assert!(*ratio > 0.5, "{}: ratio {ratio} suspiciously low", s.label);
            }
        }
    }

    #[test]
    fn profile_is_reproducible() {
        let params = PaperParams::default();
        let a = broadband_profile(&params, 5, 1e6);
        let b = broadband_profile(&params, 5, 1e6);
        for k in 0..100 {
            let t = k as f64 * 1234.5;
            assert_eq!(a.value(t), b.value(t));
        }
    }

    #[test]
    fn render_reports_means_with_confidence_intervals() {
        let ctx = RunCtx::new(PaperParams::default());
        let r = run(&ctx, &[3, 4]);
        let text = render(&r);
        assert!(text.contains("mean ratio for IIR RO"));
        assert!(text.contains("95% bootstrap CI"));
    }
}
