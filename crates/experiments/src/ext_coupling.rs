//! Extension: additive vs multiplicative variation coupling — the cost of
//! the paper's modelling choice.
//!
//! The paper's Fig. 4 injects variations *additively*; physically, a
//! supply/temperature change scales every stage delay *multiplicatively*.
//! The two coincide when the RO sits at the reference length and diverge
//! as the loop stretches it. This experiment measures the needed safety
//! margin under both couplings across the paper's operating points and
//! reports the disagreement — the quantitative justification for the
//! paper's simpler model.

use adaptive_clock::ro::Coupling;
use adaptive_clock::system::{Scheme, SystemBuilder};
use clock_metrics::margin;
use variation::sources::Harmonic;

use crate::cache::CacheKeyExt as _;
use crate::config::PaperParams;
use crate::render::{fmt, Table};
use crate::runner::RunCtx;
use crate::sweep::{parallel_map_planned, Plan};

/// One measured operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingRow {
    /// Scheme label.
    pub scheme: String,
    /// HoDV period over `c`.
    pub te_over_c: f64,
    /// Static mismatch over `c` (pushes the RO off the reference length).
    pub mu_over_c: f64,
    /// Margin under the paper's additive model (stages).
    pub additive: f64,
    /// Margin under multiplicative coupling (stages).
    pub multiplicative: f64,
}

impl CouplingRow {
    /// Absolute disagreement between the models (stages).
    pub fn disagreement(&self) -> f64 {
        (self.additive - self.multiplicative).abs()
    }
}

fn margin_with(
    params: &PaperParams,
    coupling: Coupling,
    scheme: Scheme,
    te_over_c: f64,
    mu_over_c: f64,
) -> f64 {
    let c = params.setpoint;
    let hodv = Harmonic::new(params.amplitude(), te_over_c * c as f64, 0.0);
    let run = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(scheme)
        .coupling(coupling)
        .single_sensor_mu(mu_over_c * c as f64)
        .build()
        .expect("paper operating points are valid")
        .run(&hodv, params.samples_for(te_over_c))
        .skip(params.warmup);
    margin::required_margin(&run)
}

/// Run the ablation over schemes × {Te} × {μ}. The result cache is
/// consulted per grid point; the cached payload is the
/// `[additive, multiplicative]` margin pair.
pub fn run(ctx: &RunCtx) -> Vec<CouplingRow> {
    let params = &ctx.params;
    struct Task {
        scheme: Scheme,
        te: f64,
        mu: f64,
    }
    let mut tasks = Vec::new();
    for scheme in [
        Scheme::iir_paper(),
        Scheme::TeaTime,
        Scheme::FreeRo { extra_length: 0 },
    ] {
        for te in [25.0, 50.0] {
            for mu in [0.0, -0.15] {
                tasks.push(Task {
                    scheme: scheme.clone(),
                    te,
                    mu,
                });
            }
        }
    }
    let task_key = |t: &Task| {
        crate::cache::key("ext-coupling")
            .params(params)
            .scheme(&t.scheme)
            .f64("te_over_c", t.te)
            .f64("mu_over_c", t.mu)
            .u64("budget.samples", params.samples_for(t.te) as u64)
            .u64("budget.warmup", params.warmup as u64)
            .finish()
    };
    let margins = parallel_map_planned(
        &tasks,
        |t| match ctx.cache.get_f64s(task_key(t), 2) {
            Some(v) => Plan::Ready([v[0], v[1]]),
            // Both couplings are simulated, so the point costs two runs.
            None => Plan::Compute(2 * params.samples_for(t.te) as u64),
        },
        |t| {
            let c_ref = params.setpoint;
            let pair = [
                margin_with(params, Coupling::Additive, t.scheme.clone(), t.te, t.mu),
                margin_with(
                    params,
                    Coupling::Multiplicative { c_ref },
                    t.scheme.clone(),
                    t.te,
                    t.mu,
                ),
            ];
            ctx.cache.put_f64s(task_key(t), &pair);
            pair
        },
        &ctx.telemetry,
    );
    tasks
        .iter()
        .zip(margins)
        .map(|(t, [additive, multiplicative])| CouplingRow {
            scheme: t.scheme.label().to_owned(),
            te_over_c: t.te,
            mu_over_c: t.mu,
            additive,
            multiplicative,
        })
        .collect()
}

/// Render the ablation.
pub fn render(rows: &[CouplingRow]) -> String {
    let mut t = Table::new([
        "scheme",
        "Te/c",
        "μ/c",
        "additive margin",
        "multiplicative margin",
        "disagreement",
    ]);
    let mut worst = 0.0f64;
    for r in rows {
        worst = worst.max(r.disagreement());
        t.row([
            r.scheme.clone(),
            fmt(r.te_over_c),
            fmt(r.mu_over_c),
            fmt(r.additive),
            fmt(r.multiplicative),
            fmt(r.disagreement()),
        ]);
    }
    format!(
        "Extension — additive (paper) vs multiplicative variation coupling\n\n{}\n\
         Worst disagreement: {worst:.2} stages — the paper's additive\n\
         simplification does not change any margin conclusion at its 20% amplitudes.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_agree_within_second_order() {
        let params = PaperParams::default();
        for row in run(&RunCtx::new(params)) {
            // second-order bound: |μ/c_ref|·amplitude + quantization slack
            let bound = row.mu_over_c.abs() * params.amplitude() + 2.0;
            assert!(
                row.disagreement() <= bound,
                "{} Te={} μ={}: additive {} vs multiplicative {} (bound {bound})",
                row.scheme,
                row.te_over_c,
                row.mu_over_c,
                row.additive,
                row.multiplicative
            );
        }
    }

    #[test]
    fn all_twelve_points_measured() {
        let rows = run(&RunCtx::new(PaperParams::default()));
        assert_eq!(rows.len(), 12);
        let text = render(&rows);
        assert!(text.contains("Worst disagreement"));
        assert!(text.contains("IIR RO"));
        assert!(text.contains("Free RO"));
    }
}
