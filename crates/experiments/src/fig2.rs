//! Fig. 2 — mismatch induced between the RO and an arbitrary CP by the CDN
//! delay under harmonic and single-event HoDV.
//!
//! Reproduced twice: analytically (Eq. 2–3 in closed form) and empirically
//! (sweeping Eq. 1 over the actual waveforms); the run asserts both agree,
//! which is exactly the property the paper's figure illustrates.

use variation::analysis;
use variation::sources::{Harmonic, SingleEvent};

use crate::render::{ascii_chart, fmt, Table};
use crate::results::{ExperimentResult, Series};

/// Generate the Fig. 2 curves over `x = t_clk/T_ν ∈ [0, x_max]`.
pub fn run(x_max: f64, points: usize) -> ExperimentResult {
    let pts = analysis::fig2_series(x_max, points);
    let x: Vec<f64> = pts.iter().map(|p| p.x).collect();
    let harmonic: Vec<f64> = pts.iter().map(|p| p.harmonic).collect();
    let single: Vec<f64> = pts.iter().map(|p| p.single_event).collect();

    // Empirical counterparts from the actual waveforms (unit amplitude,
    // unit variation period/duration).
    let h_wave = Harmonic::new(1.0, 1.0, 0.0);
    let s_wave = SingleEvent::new(1.0, 1.0, 10.0);
    let emp_h: Vec<f64> = x
        .iter()
        .map(|&t_clk| analysis::empirical_worst_case(&h_wave, t_clk, 0.0, 10.0, 0.002))
        .collect();
    let emp_s: Vec<f64> = x
        .iter()
        .map(|&t_clk| analysis::empirical_worst_case(&s_wave, t_clk, 0.0, 30.0, 0.002))
        .collect();

    ExperimentResult::new(
        "fig2",
        "Worst-case induced mismatch Δν/ν0 vs t_clk/Tν for harmonic and \
         single-event HoDV (Eq. 2 and Eq. 3, with empirical validation)",
    )
    .with_series(Series::new("Harmonic HoDV", x.clone(), harmonic))
    .with_series(Series::new("Single event HoDV", x.clone(), single))
    .with_series(Series::new("Harmonic (empirical)", x.clone(), emp_h))
    .with_series(Series::new("Single event (empirical)", x, emp_s))
}

/// Render the figure as a chart plus the zero-mismatch-island table.
pub fn render(result: &ExperimentResult) -> String {
    let h = result
        .series_named("Harmonic HoDV")
        .expect("series present");
    let s = result
        .series_named("Single event HoDV")
        .expect("series present");
    let mut out = String::new();
    out.push_str("Fig. 2 — Δν/ν0 vs t_clk/Tν\n\n");
    out.push_str(&ascii_chart(
        &[("Harmonic HoDV", &h.y), ("Single event HoDV", &s.y)],
        72,
        16,
    ));
    out.push('\n');
    let mut t = Table::new(["t_clk/Tν", "harmonic Δν/ν0", "single event Δν/ν0"]);
    for (i, &x) in h.x.iter().enumerate() {
        if (x * 4.0).fract().abs() < 1e-9 {
            // quarter-integer rows only, to keep the table printable
            t.row([fmt(x), fmt(h.y[i]), fmt(s.y[i])]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nSafety-margin reduction islands (harmonic): t_clk < Tν/6 or \
         |t_clk/Tν − n| < 1/6;\nsingle event: no benefit once t_clk > Tν/2.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> ExperimentResult {
        run(4.0, 401)
    }

    #[test]
    fn analytic_and_empirical_agree() {
        let r = result();
        let h = r.series_named("Harmonic HoDV").unwrap();
        let eh = r.series_named("Harmonic (empirical)").unwrap();
        for k in 0..h.len() {
            assert!(
                (h.y[k] - eh.y[k]).abs() < 0.02,
                "x={}: analytic {} vs empirical {}",
                h.x[k],
                h.y[k],
                eh.y[k]
            );
        }
        let s = r.series_named("Single event HoDV").unwrap();
        let es = r.series_named("Single event (empirical)").unwrap();
        for k in 0..s.len() {
            assert!(
                (s.y[k] - es.y[k]).abs() < 0.02,
                "x={}: analytic {} vs empirical {}",
                s.x[k],
                s.y[k],
                es.y[k]
            );
        }
    }

    #[test]
    fn paper_shape_harmonic_peaks_at_two_and_islands_at_integers() {
        let r = result();
        let h = r.series_named("Harmonic HoDV").unwrap();
        assert!((h.nearest(0.5).unwrap() - 2.0).abs() < 0.01);
        assert!((h.nearest(1.5).unwrap() - 2.0).abs() < 0.01);
        assert!(h.nearest(1.0).unwrap() < 0.02);
        assert!(h.nearest(2.0).unwrap() < 0.02);
        assert!(h.nearest(3.0).unwrap() < 0.02);
    }

    #[test]
    fn paper_shape_single_event_saturates_at_one() {
        let r = result();
        let s = r.series_named("Single event HoDV").unwrap();
        assert!((s.nearest(0.25).unwrap() - 0.5).abs() < 0.01);
        assert!((s.nearest(0.5).unwrap() - 1.0).abs() < 0.01);
        for x in [0.75, 1.0, 2.0, 4.0] {
            assert!((s.nearest(x).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn render_mentions_boundaries() {
        let r = result();
        let text = render(&r);
        assert!(text.contains("Tν/6"));
        assert!(text.contains("Tν/2"));
        assert!(text.contains("Harmonic HoDV"));
    }
}
