//! Fig. 8 — relative adaptive period `⟨T_clk⟩/T_fixed` under a HoDV, for
//! the three adaptive systems.
//!
//! Upper panel: the variation period is fixed at `T_e = 100c` while the CDN
//! delay sweeps `t_clk/c ∈ [0.1, 10]` (log axis). Lower panel: the CDN
//! delay is fixed at `t_clk = c` while the perturbation period sweeps
//! `T_e/c ∈ [1, 1000]` (log axis).
//!
//! Both panels are declarative [`SweepSpec`]s run through the shared
//! [`run_sweep`] pipeline: grid, scheme line-up, and operating-point map —
//! the fixed-baseline accounting, cache probing, and margin-search
//! telemetry all live in the pipeline.
//!
//! Paper observations the tests assert:
//!
//! * upper: for `t_clk/c` up to ≈ 5 the IIR RO is the best option (ratio
//!   below 1 at small delays); the benefit erodes as the delay grows;
//! * lower: at very fast perturbations no adaptive system helps (ratios
//!   ≈ 1 or worse); the free RO is the first to drop below 1 as `T_e`
//!   grows; at mid frequencies (around `T_e = 100c`) the IIR RO is best;
//!   for `T_e/c > 200` the IIR RO and the free RO perform the same.

use adaptive_clock::system::Scheme;

use crate::render::{ascii_chart, fmt, Table};
use crate::results::ExperimentResult;
use crate::runner::{adaptive_schemes, run_sweep, OperatingPoint, RunCtx, SweepSpec};
use crate::sweep::log_grid;

/// Upper panel: sweep `t_clk/c` at fixed `T_e = 100c`.
pub fn run_upper(ctx: &RunCtx, points: usize) -> ExperimentResult {
    run_sweep(
        ctx,
        &SweepSpec {
            id: "fig8-upper",
            description: format!(
                "Relative adaptive period vs t_clk/c at Te = 100c \
                 (c = {}, HoDV amplitude 0.2c)",
                ctx.params.setpoint
            ),
            grid: log_grid(0.1, 10.0, points),
            schemes: adaptive_schemes(),
            point_at: |x| OperatingPoint::new(x, 100.0),
        },
    )
}

/// Lower panel: sweep `T_e/c` at fixed `t_clk = c`.
pub fn run_lower(ctx: &RunCtx, points: usize) -> ExperimentResult {
    run_sweep(
        ctx,
        &SweepSpec {
            id: "fig8-lower",
            description: format!(
                "Relative adaptive period vs Te/c at t_clk = c \
                 (c = {}, HoDV amplitude 0.2c)",
                ctx.params.setpoint
            ),
            grid: log_grid(1.0, 1000.0, points),
            schemes: adaptive_schemes(),
            point_at: |x| OperatingPoint::new(1.0, x),
        },
    )
}

/// Render a panel as chart plus table.
pub fn render(result: &ExperimentResult, x_label: &str) -> String {
    let series: Vec<(&str, &[f64])> = result
        .series
        .iter()
        .map(|s| (s.label.as_str(), s.y.as_slice()))
        .collect();
    let mut out = format!("Fig. 8 panel — {}\n\n", result.description);
    out.push_str(&ascii_chart(&series, 80, 16));
    out.push('\n');
    let mut headers = vec![x_label.to_owned()];
    headers.extend(result.series.iter().map(|s| s.label.clone()));
    let mut t = Table::new(headers);
    if let Some(first) = result.series.first() {
        for (i, &x) in first.x.iter().enumerate() {
            let mut row = vec![fmt(x)];
            row.extend(result.series.iter().map(|s| fmt(s.y[i])));
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Scheme label helper used by the tests and the CLI.
pub fn y_at(result: &ExperimentResult, scheme: &Scheme, x: f64) -> f64 {
    result
        .series_named(scheme.label())
        .and_then(|s| s.nearest(x))
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperParams;

    fn ctx() -> RunCtx {
        RunCtx::new(PaperParams::default())
    }

    #[test]
    fn upper_iir_wins_at_small_delay_and_degrades() {
        let r = run_upper(&ctx(), 9);
        let iir = Scheme::iir_paper();
        let at_small = y_at(&r, &iir, 0.1);
        let at_large = y_at(&r, &iir, 10.0);
        assert!(at_small < 1.0, "IIR at t_clk=0.1c: {at_small}");
        assert!(
            at_large > at_small,
            "IIR must degrade with CDN delay: {at_small} -> {at_large}"
        );
    }

    #[test]
    fn upper_iir_at_least_ties_free_ro_for_small_delays() {
        // Paper: "for the whole range until t_clk/c = 5 the IIR RO shows
        // the best performance, slightly better than the free RO".
        let r = run_upper(&ctx(), 9);
        let iir = Scheme::iir_paper();
        let free = Scheme::FreeRo { extra_length: 0 };
        for x in [0.1, 0.32, 1.0, 3.2] {
            let yi = y_at(&r, &iir, x);
            let yf = y_at(&r, &free, x);
            assert!(
                yi <= yf + 0.03,
                "t_clk/c={x}: IIR {yi} should not lose to free RO {yf}"
            );
        }
    }

    #[test]
    fn lower_no_benefit_at_very_fast_perturbation() {
        let r = run_lower(&ctx(), 9);
        for scheme in adaptive_schemes() {
            let y = y_at(&r, &scheme, 1.0);
            assert!(
                y > 0.93,
                "{}: ratio {y} at Te=c should show no real benefit",
                scheme.label()
            );
        }
    }

    #[test]
    fn lower_all_adaptive_win_at_slow_perturbation() {
        let r = run_lower(&ctx(), 9);
        for scheme in adaptive_schemes() {
            let y = y_at(&r, &scheme, 1000.0);
            assert!(
                y < 0.92,
                "{}: ratio {y} at Te=1000c should be well below 1",
                scheme.label()
            );
        }
    }

    #[test]
    fn lower_iir_and_free_converge_at_very_slow_perturbation() {
        // Paper: "For Te/c > 200 IIR RO and free RO show the same
        // performance."
        let r = run_lower(&ctx(), 9);
        let yi = y_at(&r, &Scheme::iir_paper(), 1000.0);
        let yf = y_at(&r, &Scheme::FreeRo { extra_length: 0 }, 1000.0);
        assert!((yi - yf).abs() < 0.05, "at Te=1000c: IIR {yi} vs free {yf}");
    }

    #[test]
    fn render_contains_all_series_and_axis() {
        let r = run_lower(&ctx(), 5);
        let text = render(&r, "Te/c");
        assert!(text.contains("Te/c"));
        assert!(text.contains("IIR RO"));
        assert!(text.contains("Free RO"));
        assert!(text.contains("TEAtime RO"));
    }
}
