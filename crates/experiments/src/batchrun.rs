//! Multi-threaded lane-chunk dispatch for [`BatchLoop`] workloads.
//!
//! The lane-block engine in `adaptive-clock` is single-threaded by design
//! (the core crate spawns no threads); this module scales it across
//! `REPRO_THREADS` workers by splitting a batch's *lanes* into contiguous
//! chunks, running each chunk as an independent `BatchLoop` on the sweep
//! worker pool, and recombining the chunk traces in deterministic lane
//! order with [`BatchTrace::concat`].
//!
//! Lane independence is what makes this exact rather than approximate:
//! lanes of a batch never interact, so running lanes `[0..k)` and
//! `[k..B)` in separate engines and concatenating is **bit-identical** to
//! one `B`-lane run — for any chunk size and any worker count. The
//! callback builds the chunk's `BatchLoop` *and* its input closures
//! itself because [`LoopInputs`](adaptive_clock::loopsim::LoopInputs)
//! borrows `&dyn Fn` (not `Sync`); each worker therefore constructs
//! private closures, which also keeps per-chunk closure deduplication
//! intact inside the blocked engine.
//!
//! [`BatchLoop`]: adaptive_clock::batch::BatchLoop

use std::ops::Range;

use adaptive_clock::batch::{BatchTrace, LaneSummary};
use clock_telemetry::Telemetry;

use crate::sweep::{parallel_map_planned, Plan};

/// Split `lanes` lanes into `chunk`-sized ranges, run every range through
/// `run_chunk` on the sweep worker pool, and recombine the partial traces
/// into one `lanes`-wide [`BatchTrace`] in lane order.
///
/// `run_chunk(r)` must return a trace with exactly `r.len()` lanes, all
/// chunks stepped for the same number of periods; the usual shape is
/// "build a `BatchLoop` and its inputs for lanes `r`, call `run`".
/// Dispatch cost hints are proportional to chunk width, so the
/// longest-job-first scheduler keeps a ragged final chunk off the
/// critical path. Under `--profile`, dispatch and recombination time land
/// on the `batch.dispatch` / `batch.recombine` spans (with the per-chunk
/// block kernels under each worker's own `engine.batch` spans).
///
/// # Panics
///
/// Panics when `chunk == 0` or the recombined parts disagree on step
/// count (a `run_chunk` that ignored its range).
pub fn run_lane_chunks<F>(
    lanes: usize,
    chunk: usize,
    telemetry: &Telemetry,
    run_chunk: F,
) -> BatchTrace
where
    F: Fn(Range<usize>) -> BatchTrace + Sync,
{
    assert!(chunk > 0, "chunk width must be positive");
    let ranges: Vec<Range<usize>> = (0..lanes)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(lanes))
        .collect();
    let parts = {
        let mut scope = telemetry.scope("batch.dispatch");
        scope.attr("lanes", lanes);
        scope.attr("chunks", ranges.len());
        parallel_map_planned(
            &ranges,
            |r| Plan::Compute(r.len() as u64),
            |r| run_chunk(r.clone()),
            telemetry,
        )
    };
    let _scope = telemetry.scope("batch.recombine");
    BatchTrace::concat(&parts)
}

/// The traceless twin of [`run_lane_chunks`]: split `lanes` lanes into
/// `chunk`-sized ranges, run every range through `run_chunk` on the sweep
/// worker pool, and concatenate the per-chunk
/// [`LaneSummary`] vectors in lane order.
///
/// `run_chunk(r)` must return exactly `r.len()` summaries — the usual
/// shape is "build a `BatchLoop` and its inputs for lanes `r`, call
/// [`run_summaries`](adaptive_clock::batch::BatchLoop::run_summaries)".
/// Because lanes never interact, the result is bit-identical to a single
/// `lanes`-wide `run_summaries` for any chunk size and worker count —
/// this is the dispatch layer Monte Carlo panels ride on, where the
/// whole point is that no chunk ever materializes a trace.
///
/// # Panics
///
/// Panics when `chunk == 0` or a chunk returns the wrong number of
/// summaries.
pub fn run_summary_chunks<F>(
    lanes: usize,
    chunk: usize,
    telemetry: &Telemetry,
    run_chunk: F,
) -> Vec<LaneSummary>
where
    F: Fn(Range<usize>) -> Vec<LaneSummary> + Sync,
{
    assert!(chunk > 0, "chunk width must be positive");
    let ranges: Vec<Range<usize>> = (0..lanes)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(lanes))
        .collect();
    let parts = {
        let mut scope = telemetry.scope("batch.dispatch");
        scope.attr("lanes", lanes);
        scope.attr("chunks", ranges.len());
        parallel_map_planned(
            &ranges,
            |r| Plan::Compute(r.len() as u64),
            |r| {
                let part = run_chunk(r.clone());
                assert_eq!(
                    part.len(),
                    r.len(),
                    "chunk {r:?} returned a wrong lane count"
                );
                part
            },
            telemetry,
        )
    };
    let _scope = telemetry.scope("batch.recombine");
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::set_threads;
    use adaptive_clock::batch::{BatchLoop, LaneController};
    use adaptive_clock::controller::IirConfig;
    use adaptive_clock::loopsim::{constant, step_at, LoopInputs};
    use adaptive_clock::tdc::Quantization;

    /// Run lanes `r` of a reference 23-lane mixed-scheme workload.
    fn run_range(r: Range<usize>, steps: usize) -> BatchTrace {
        let cfg = IirConfig::paper();
        let c = constant(64.0);
        let e = |n: i64| 6.0 * (std::f64::consts::TAU * n as f64 / 80.0).sin();
        let mut batch = BatchLoop::new();
        let mus: Vec<Box<dyn Fn(i64) -> f64>> = r
            .clone()
            .map(|k| Box::new(step_at(12, k as f64 - 5.0)) as Box<dyn Fn(i64) -> f64>)
            .collect();
        for k in r {
            match k % 3 {
                0 => batch.push(
                    k % 2,
                    LaneController::int_iir(&cfg, 64).unwrap(),
                    Quantization::Floor,
                ),
                1 => batch.push(
                    1,
                    LaneController::float_iir(&cfg, 64.0).unwrap(),
                    Quantization::None,
                ),
                _ => batch.push(0, LaneController::teatime(64, 1.0), Quantization::Floor),
            };
        }
        let inputs: Vec<LoopInputs<'_>> = mus
            .iter()
            .map(|mu| LoopInputs {
                setpoint: &c,
                homogeneous: &e,
                heterogeneous: mu.as_ref(),
            })
            .collect();
        batch.run(&inputs, steps)
    }

    #[test]
    fn dispatch_is_bit_identical_for_any_chunking_and_worker_count() {
        let (lanes, steps) = (23usize, 250usize);
        let whole = run_range(0..lanes, steps);
        let telemetry = Telemetry::disabled();
        for chunk in [1, 4, 7, 23, 64] {
            for workers in [None, Some(1), Some(3)] {
                set_threads(workers);
                let got = run_lane_chunks(lanes, chunk, &telemetry, |r| run_range(r, steps));
                set_threads(None);
                assert_eq!(
                    got, whole,
                    "chunk={chunk} workers={workers:?} diverged from the single run"
                );
            }
        }
    }

    #[test]
    fn dispatch_records_chunk_spans() {
        let telemetry = Telemetry::enabled();
        telemetry.enable_tracing();
        let tr = run_lane_chunks(9, 4, &telemetry, |r| run_range(r, 50));
        assert_eq!(tr.lanes(), 9);
        assert_eq!(tr.steps(), 50);
        let spans = telemetry.trace_spans();
        assert!(spans.iter().any(|s| s.name == "batch.dispatch"));
        assert!(spans.iter().any(|s| s.name == "batch.recombine"));
    }

    /// The summary twin of [`run_range`]: same workload, traceless path.
    fn run_range_summaries(r: Range<usize>, steps: usize) -> Vec<LaneSummary> {
        let cfg = IirConfig::paper();
        let c = constant(64.0);
        let e = |n: i64| 6.0 * (std::f64::consts::TAU * n as f64 / 80.0).sin();
        let mut batch = BatchLoop::new();
        let mus: Vec<Box<dyn Fn(i64) -> f64>> = r
            .clone()
            .map(|k| Box::new(step_at(12, k as f64 - 5.0)) as Box<dyn Fn(i64) -> f64>)
            .collect();
        for k in r {
            match k % 3 {
                0 => batch.push(
                    k % 2,
                    LaneController::int_iir(&cfg, 64).unwrap(),
                    Quantization::Floor,
                ),
                1 => batch.push(
                    1,
                    LaneController::float_iir(&cfg, 64.0).unwrap(),
                    Quantization::None,
                ),
                _ => batch.push(0, LaneController::teatime(64, 1.0), Quantization::Floor),
            };
        }
        let inputs: Vec<LoopInputs<'_>> = mus
            .iter()
            .map(|mu| LoopInputs {
                setpoint: &c,
                homogeneous: &e,
                heterogeneous: mu.as_ref(),
            })
            .collect();
        batch.run_summaries(&inputs, steps)
    }

    #[test]
    fn summary_dispatch_is_bit_identical_for_any_chunking_and_worker_count() {
        let (lanes, steps) = (23usize, 250usize);
        let whole = run_range_summaries(0..lanes, steps);
        assert_eq!(whole, run_range(0..lanes, steps).summarize());
        let telemetry = Telemetry::disabled();
        for chunk in [1, 4, 7, 23, 64] {
            for workers in [None, Some(1), Some(3)] {
                set_threads(workers);
                let got =
                    run_summary_chunks(lanes, chunk, &telemetry, |r| run_range_summaries(r, steps));
                set_threads(None);
                assert_eq!(
                    got, whole,
                    "chunk={chunk} workers={workers:?} diverged from the single run"
                );
            }
        }
    }

    #[test]
    fn zero_lanes_is_an_empty_trace() {
        let telemetry = Telemetry::disabled();
        let tr = run_lane_chunks(0, 8, &telemetry, |r| run_range(r, 10));
        assert_eq!(tr.lanes(), 0);
    }
}
