//! End-to-end tests for the `repro` binary: discovery flags, error
//! handling for unknown ids, and the full telemetry capture flow
//! (`--telemetry` JSONL parse-back, `--progress`, summary table).

use std::path::PathBuf;
use std::process::{Command, Output};

use clock_telemetry::{Event, EventRecord};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("repro-cli-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn list_prints_every_id_and_succeeds() {
    let out = repro(&["--list"]);
    assert!(out.status.success(), "--list must exit 0");
    let text = stdout(&out);
    for id in [
        "table1",
        "fig2",
        "fig7",
        "fig8",
        "fig9",
        "worked-examples",
        "constraints",
        "ext-sensitivity",
        "ext-throughput",
        "ext-noise",
        "ext-stability",
        "ext-lock",
        "ext-coupling",
        "ext-faults",
        "all",
        "extensions",
        "everything",
    ] {
        assert!(text.contains(id), "--list output missing `{id}`:\n{text}");
    }
}

/// The ids `--list` advertises and the ids the registry can dispatch are
/// the same set — the table cannot drift from the dispatcher because both
/// read [`experiments::registry::REGISTRY`], and this test pins the CLI
/// surface to it.
#[test]
fn list_ids_equal_dispatchable_ids() {
    let out = repro(&["--list"]);
    assert!(out.status.success(), "--list must exit 0");
    let text = stdout(&out);
    let listed: std::collections::BTreeSet<String> = text
        .lines()
        .skip(1) // "experiments:" header
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect();
    let dispatchable: std::collections::BTreeSet<String> = experiments::registry::REGISTRY
        .iter()
        .map(|def| def.id.to_owned())
        .collect();
    assert_eq!(
        listed, dispatchable,
        "--list ids and registry ids must be identical"
    );
}

#[test]
fn unknown_experiment_fails_and_lists_valid_ids() {
    let out = repro(&["frobnicate"]);
    assert!(!out.status.success(), "unknown id must exit non-zero");
    let err = stderr(&out);
    assert!(
        err.contains("unknown experiment 'frobnicate'"),
        "stderr should name the bad id:\n{err}"
    );
    for id in ["fig7", "ext-lock", "everything"] {
        assert!(
            err.contains(id),
            "stderr should list valid id `{id}`:\n{err}"
        );
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: repro"));
}

#[test]
fn telemetry_flag_requires_a_value() {
    let out = repro(&["fig7", "--telemetry"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--telemetry needs a value"));
}

#[test]
fn fig7_telemetry_capture_round_trips() {
    let path = tmp_jsonl("fig7");
    let out = repro(&["fig7", "--telemetry", path.to_str().unwrap(), "--progress"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Live progress line on stderr and a summary table on stdout.
    assert!(
        stderr(&out).contains("sweep "),
        "progress line expected on stderr"
    );
    let text = stdout(&out);
    assert!(
        text.contains("telemetry summary"),
        "missing summary:\n{text}"
    );
    assert!(text.contains("core.samples"));
    assert!(text.contains("TimingViolation"));
    assert!(text.contains("ControllerUpdate"));

    // Every JSONL line parses back through serde into an EventRecord and
    // the sink preserves the sequence order exactly.
    let raw = std::fs::read_to_string(&path).expect("telemetry sink written");
    std::fs::remove_file(&path).ok();
    let records: Vec<EventRecord> = raw
        .lines()
        .map(|line| serde_json::from_str(line).expect("valid JSONL event record"))
        .collect();
    assert!(!records.is_empty(), "fig7 must emit events");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "JSONL order must match sequence numbers");
        assert!(r.time.is_finite(), "event timestamps are finite");
    }
    let has = |pred: fn(&Event) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(
        has(|e| matches!(e, Event::TimingViolation { .. })),
        "fig7 drives the loop through violations"
    );
    assert!(
        has(|e| matches!(e, Event::ControllerUpdate { .. })),
        "fig7 drives controller updates"
    );
    assert!(
        has(|e| matches!(e, Event::MarginSearchIteration { .. })),
        "fig7 reports per-scheme margins"
    );
    for r in &records {
        if let Event::TimingViolation {
            tau,
            setpoint,
            margin,
        } = &r.event
        {
            assert!(tau.is_finite() && margin.is_finite());
            assert!(*margin > 0.0, "violations only fire for positive margin");
            assert_eq!(*setpoint, 64.0, "paper set-point");
        }
    }
}

#[test]
fn threads_flag_rejects_non_positive_values() {
    for bad in ["0", "bogus"] {
        let out = repro(&["--threads", bad, "fig2"]);
        assert!(!out.status.success(), "--threads {bad} must fail");
        assert!(
            stderr(&out).contains("positive integer"),
            "stderr should explain --threads {bad}:\n{}",
            stderr(&out)
        );
    }
}

#[test]
fn threads_flag_accepts_explicit_worker_count() {
    let out = repro(&["--threads", "2", "fig2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

/// Strip the run-dependent cache summary line, leaving the figure output.
fn without_cache_line(text: &str) -> String {
    text.lines()
        .filter(|l| !l.starts_with("cache:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn cache_round_trip_hits_fully_and_reproduces_output() {
    let dir = std::env::temp_dir().join(format!("repro-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let cold = repro(&["--quick", "--cache", dir_s, "fig9"]);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let cold_text = stdout(&cold);
    assert!(
        cold_text.contains("cache: 0 hits"),
        "cold run must miss everything:\n{cold_text}"
    );

    let warm = repro(&["--quick", "--cache", dir_s, "fig9"]);
    assert!(warm.status.success(), "stderr: {}", stderr(&warm));
    let warm_text = stdout(&warm);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        warm_text.contains("0 misses (100% hit rate)"),
        "warm run must hit everything:\n{warm_text}"
    );
    assert_eq!(
        without_cache_line(&cold_text),
        without_cache_line(&warm_text),
        "warm figures must be bit-identical to cold"
    );
}

#[test]
fn no_cache_flag_overrides_the_environment_default() {
    let dir = std::env::temp_dir().join(format!("repro-cli-nocache-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--no-cache", "fig9"])
        .env("REPRO_CACHE", &dir)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        !stdout(&out).contains("cache:"),
        "--no-cache must print no cache summary"
    );
    assert!(!dir.exists(), "--no-cache must not create the cache dir");
}

#[test]
fn json_mode_is_machine_readable() {
    let out = repro(&["--json", "fig2"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let parsed: experiments::results::ExperimentResult =
        serde_json::from_str(text.trim()).expect("--json emits an ExperimentResult document");
    assert_eq!(parsed.id, "fig2");
    assert!(!parsed.series.is_empty());
}
