//! End-to-end tests for the `repro` binary: discovery flags, error
//! handling for unknown ids, and the full telemetry capture flow
//! (`--telemetry` JSONL parse-back, `--progress`, summary table).

use std::path::PathBuf;
use std::process::{Command, Output};

use clock_telemetry::{Event, EventRecord};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("repro-cli-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn list_prints_every_id_and_succeeds() {
    let out = repro(&["--list"]);
    assert!(out.status.success(), "--list must exit 0");
    let text = stdout(&out);
    for id in [
        "table1",
        "fig2",
        "fig7",
        "fig8",
        "fig9",
        "worked-examples",
        "constraints",
        "ext-sensitivity",
        "ext-throughput",
        "ext-noise",
        "ext-stability",
        "ext-lock",
        "ext-coupling",
        "ext-faults",
        "all",
        "extensions",
        "everything",
    ] {
        assert!(text.contains(id), "--list output missing `{id}`:\n{text}");
    }
}

/// The ids `--list` advertises and the ids the registry can dispatch are
/// the same set — the table cannot drift from the dispatcher because both
/// read [`experiments::registry::REGISTRY`], and this test pins the CLI
/// surface to it.
#[test]
fn list_ids_equal_dispatchable_ids() {
    let out = repro(&["--list"]);
    assert!(out.status.success(), "--list must exit 0");
    let text = stdout(&out);
    let listed: std::collections::BTreeSet<String> = text
        .lines()
        .skip(1) // "experiments:" header
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect();
    let dispatchable: std::collections::BTreeSet<String> = experiments::registry::REGISTRY
        .iter()
        .map(|def| def.id.to_owned())
        .collect();
    assert_eq!(
        listed, dispatchable,
        "--list ids and registry ids must be identical"
    );
}

#[test]
fn unknown_experiment_fails_and_lists_valid_ids() {
    let out = repro(&["frobnicate"]);
    assert!(!out.status.success(), "unknown id must exit non-zero");
    let err = stderr(&out);
    assert!(
        err.contains("unknown experiment 'frobnicate'"),
        "stderr should name the bad id:\n{err}"
    );
    for id in ["fig7", "ext-lock", "everything"] {
        assert!(
            err.contains(id),
            "stderr should list valid id `{id}`:\n{err}"
        );
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: repro"));
}

#[test]
fn telemetry_flag_requires_a_value() {
    let out = repro(&["fig7", "--telemetry"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--telemetry needs a value"));
}

#[test]
fn fig7_telemetry_capture_round_trips() {
    let path = tmp_jsonl("fig7");
    let out = repro(&["fig7", "--telemetry", path.to_str().unwrap(), "--progress"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Live progress line on stderr and a summary table on stdout.
    assert!(
        stderr(&out).contains("sweep "),
        "progress line expected on stderr"
    );
    let text = stdout(&out);
    assert!(
        text.contains("telemetry summary"),
        "missing summary:\n{text}"
    );
    assert!(text.contains("core.samples"));
    assert!(text.contains("TimingViolation"));
    assert!(text.contains("ControllerUpdate"));

    // Every JSONL line parses back through serde into an EventRecord and
    // the sink preserves the sequence order exactly.
    let raw = std::fs::read_to_string(&path).expect("telemetry sink written");
    std::fs::remove_file(&path).ok();
    let records: Vec<EventRecord> = raw
        .lines()
        .map(|line| serde_json::from_str(line).expect("valid JSONL event record"))
        .collect();
    assert!(!records.is_empty(), "fig7 must emit events");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "JSONL order must match sequence numbers");
        assert!(r.time.is_finite(), "event timestamps are finite");
    }
    let has = |pred: fn(&Event) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(
        has(|e| matches!(e, Event::TimingViolation { .. })),
        "fig7 drives the loop through violations"
    );
    assert!(
        has(|e| matches!(e, Event::ControllerUpdate { .. })),
        "fig7 drives controller updates"
    );
    assert!(
        has(|e| matches!(e, Event::MarginSearchIteration { .. })),
        "fig7 reports per-scheme margins"
    );
    for r in &records {
        if let Event::TimingViolation {
            tau,
            setpoint,
            margin,
        } = &r.event
        {
            assert!(tau.is_finite() && margin.is_finite());
            assert!(*margin > 0.0, "violations only fire for positive margin");
            assert_eq!(*setpoint, 64.0, "paper set-point");
        }
    }
}

#[test]
fn threads_flag_rejects_non_positive_values() {
    for bad in ["0", "bogus"] {
        let out = repro(&["--threads", bad, "fig2"]);
        assert!(!out.status.success(), "--threads {bad} must fail");
        assert!(
            stderr(&out).contains("positive integer"),
            "stderr should explain --threads {bad}:\n{}",
            stderr(&out)
        );
    }
}

#[test]
fn threads_flag_accepts_explicit_worker_count() {
    let out = repro(&["--threads", "2", "fig2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

/// Strip the run-dependent cache summary line, leaving the figure output.
fn without_cache_line(text: &str) -> String {
    text.lines()
        .filter(|l| !l.starts_with("cache:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn cache_round_trip_hits_fully_and_reproduces_output() {
    let dir = std::env::temp_dir().join(format!("repro-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let cold = repro(&["--quick", "--cache", dir_s, "fig9"]);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let cold_text = stdout(&cold);
    assert!(
        cold_text.contains("cache: 0 hits"),
        "cold run must miss everything:\n{cold_text}"
    );

    let warm = repro(&["--quick", "--cache", dir_s, "fig9"]);
    assert!(warm.status.success(), "stderr: {}", stderr(&warm));
    let warm_text = stdout(&warm);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        warm_text.contains("0 misses (100% hit rate)"),
        "warm run must hit everything:\n{warm_text}"
    );
    assert_eq!(
        without_cache_line(&cold_text),
        without_cache_line(&warm_text),
        "warm figures must be bit-identical to cold"
    );
}

#[test]
fn no_cache_flag_overrides_the_environment_default() {
    let dir = std::env::temp_dir().join(format!("repro-cli-nocache-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--no-cache", "fig9"])
        .env("REPRO_CACHE", &dir)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        !stdout(&out).contains("cache:"),
        "--no-cache must print no cache summary"
    );
    assert!(!dir.exists(), "--no-cache must not create the cache dir");
}

#[test]
fn json_mode_is_machine_readable() {
    let out = repro(&["--json", "fig2"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let parsed: experiments::results::ExperimentResult =
        serde_json::from_str(text.trim()).expect("--json emits an ExperimentResult document");
    assert_eq!(parsed.id, "fig2");
    assert!(!parsed.series.is_empty());
}

/// An unopenable `--telemetry` sink must degrade to in-memory telemetry —
/// warn, count the failure, and still run the experiment to success —
/// instead of aborting the run it was meant to observe.
#[test]
fn unopenable_telemetry_sink_degrades_not_aborts() {
    let out = repro(&["fig2", "--telemetry", "/nonexistent-dir/deeper/sink.jsonl"]);
    assert!(
        out.status.success(),
        "a bad sink must not abort the run; stderr: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("in-memory telemetry only"),
        "the degrade must be announced:\n{}",
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("telemetry.open_failures"),
        "the failure counter must appear in the summary:\n{text}"
    );
    assert!(
        !text.contains("telemetry events written to"),
        "no sink file was written:\n{text}"
    );
}

/// `--profile` must print an attribution tree whose span totals account
/// for (almost) the whole measured wall time — the acceptance bar is 95%.
#[test]
fn profile_attribution_covers_the_wall_clock() {
    let out = repro(&["fig9", "--quick", "--profile"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let header = text
        .lines()
        .find(|l| l.starts_with("profile: wall"))
        .unwrap_or_else(|| panic!("profile header missing:\n{text}"));
    // "profile: wall 166.05 ms, attributed 166.04 ms (100.0%)"
    let pct: f64 = header
        .rsplit_once('(')
        .and_then(|(_, tail)| tail.strip_suffix("%)"))
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("unparseable profile header: {header}"));
    assert!(
        pct >= 95.0,
        "attributed self time must cover >= 95% of wall, got {pct}%: {header}"
    );
    assert!(text.contains("engine.core"), "engine spans in the tree");
    assert!(
        text.contains("p50") && text.contains("p99"),
        "quantile columns present:\n{text}"
    );
}

/// `--trace` must write a Chrome-trace-format document that a JSON parser
/// accepts, with complete (`ph == "X"`) events.
#[test]
fn trace_flag_writes_chrome_trace_json() {
    let path = std::env::temp_dir().join(format!("repro-cli-trace-{}.json", std::process::id()));
    let out = repro(&["fig2", "--trace", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("chrome trace written to"),
        "trace destination must be announced"
    );
    let raw = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let doc: serde::Value = serde_json::from_str(&raw).expect("trace is valid JSON");
    let events = doc
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array present");
    assert!(!events.is_empty(), "the root span is always recorded");
    for ev in events {
        let ph = ev
            .as_object()
            .and_then(|f| f.iter().find(|(k, _)| k == "ph"))
            .map(|(_, v)| v.clone());
        assert_eq!(
            ph,
            Some(serde::Value::Str("X".to_owned())),
            "complete events only:\n{raw}"
        );
    }
}

/// `repro metrics <id>` appends a Prometheus-style exposition of the
/// run's counters and histograms.
#[test]
fn metrics_mode_appends_prometheus_exposition() {
    let out = repro(&["metrics", "fig2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("telemetry_events_total"),
        "exposition missing:\n{text}"
    );
}

/// The whole regression gate end to end, with deterministic verdicts:
/// one bench run seeds a report, which is then doctored two ways — every
/// speedup quartered (the current run clears any such baseline by a wide
/// margin, so the compare must pass) and one speedup inflated ×50
/// (equivalent to this revision having synthetically slowed that case,
/// so the compare must fail with a non-zero exit). Doctoring, rather
/// than comparing two live timings, keeps the test immune to load swings
/// on a busy test host; the committed `BENCH_3.json` is covered by CI's
/// release-mode `bench-compare` job and by the compare unit tests.
#[test]
fn bench_compare_gates_on_speedup_regressions() {
    let fresh = std::env::temp_dir().join(format!("repro-cli-bench-{}.json", std::process::id()));
    let fresh_s = fresh.to_str().unwrap();

    let seed = repro(&["bench", "--quick", "--json", fresh_s]);
    assert!(seed.status.success(), "stderr: {}", stderr(&seed));

    // The written report is self-describing.
    let report = experiments::bench::BenchReport::load(&fresh).expect("fresh report loads");
    std::fs::remove_file(&fresh).ok();
    assert!(report.workers >= 1);
    assert!(report.engine_rev.contains("core-r"));

    let tmp_baseline = |tag: &str, doctored: &experiments::bench::BenchReport| {
        let path =
            std::env::temp_dir().join(format!("repro-cli-{tag}-{}.json", std::process::id()));
        std::fs::write(&path, doctored.to_json().expect("serializes")).expect("written");
        path
    };

    let mut easy = report.clone();
    for e in &mut easy.entries {
        e.speedup = e.speedup.map(|s| s * 0.25);
    }
    let easy_path = tmp_baseline("easy", &easy);
    let ok = repro(&["bench", "--quick", "--compare", easy_path.to_str().unwrap()]);
    std::fs::remove_file(&easy_path).ok();
    assert!(
        ok.status.success(),
        "a clearly-beaten baseline must pass; stdout: {}\nstderr: {}",
        stdout(&ok),
        stderr(&ok)
    );
    assert!(stdout(&ok).contains("verdict: no regression"));

    let mut bad_baseline = report;
    let entry = bad_baseline
        .entries
        .iter_mut()
        .find(|e| e.name == "dtsim-compiled")
        .expect("compiled entry present");
    entry.speedup = Some(entry.speedup.unwrap_or(1.0) * 50.0);
    let bad_path = tmp_baseline("doctored", &bad_baseline);
    let bad = repro(&["bench", "--quick", "--compare", bad_path.to_str().unwrap()]);
    std::fs::remove_file(&bad_path).ok();
    assert!(
        !bad.status.success(),
        "a regressed speedup must exit non-zero; stdout: {}",
        stdout(&bad)
    );
    assert!(stdout(&bad).contains("REGRESSED"));
    assert!(stderr(&bad).contains("regressed"));
}
