//! Golden-file test for the `trace_dump` binary: the deterministic
//! `fixed` scheme must reproduce the checked-in CSV byte for byte.

use std::process::{Command, Output};

fn trace_dump(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_dump"))
        .args(args)
        .output()
        .expect("trace_dump binary runs")
}

#[test]
fn fixed_scheme_matches_golden_csv() {
    let out = trace_dump(&["fixed", "--n", "8"]);
    assert!(out.status.success());
    let got = String::from_utf8(out.stdout).expect("CSV is UTF-8");
    let golden = include_str!("golden/trace_dump_fixed_n8.csv");
    assert_eq!(
        got, golden,
        "fixed-scheme trace drifted from the golden CSV"
    );
}

#[test]
fn csv_header_and_row_shape() {
    let out = trace_dump(&["iir", "--n", "16"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("time,period,tau,delta,lro"));
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 16, "--n rows after the header");
    for row in rows {
        assert_eq!(row.split(',').count(), 5, "five CSV fields: {row}");
        for field in row.split(',') {
            assert!(field.parse::<f64>().is_ok(), "numeric field: {field}");
        }
    }
}

#[test]
fn out_flag_writes_the_same_csv_to_a_file() {
    let path = std::env::temp_dir().join(format!("trace-dump-{}.csv", std::process::id()));
    let out = trace_dump(&["fixed", "--n", "8", "--out", path.to_str().unwrap()]);
    assert!(out.status.success());
    let from_file = std::fs::read_to_string(&path).expect("--out file written");
    std::fs::remove_file(&path).ok();
    assert_eq!(from_file, include_str!("golden/trace_dump_fixed_n8.csv"));
}

#[test]
fn rejects_unknown_scheme_with_usage() {
    let out = trace_dump(&["warp"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheme"), "stderr: {err}");
    assert!(err.contains("usage: trace-dump"), "stderr: {err}");
}
