//! Chaos end-to-end test for `repro serve`: the real binary, a real
//! loopback port, and hostile weather — concurrent submits (one of which
//! panics on purpose), a cancel mid-run, a client that disconnects in the
//! middle of an event stream, and malformed requests — all while `/health`
//! must keep answering. The server is then drained via `/shutdown` and
//! restarted over the same data dir to prove the journal replays without
//! re-running completed work.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A `repro serve` child on an ephemeral port.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    fn start(dir: &Path) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--serve-dir",
                &dir.to_string_lossy(),
                "--workers",
                "2",
                "--queue",
                "8",
                "--drain-ms",
                "5000",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn repro serve");
        // The first stdout line advertises the bound address.
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before listening")
                .expect("read serve stdout");
            if let Some(rest) = line.strip_prefix("serve: listening on http://") {
                break rest.trim().to_owned();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe
        // (experiments print plots to stdout).
        std::thread::spawn(move || while let Some(Ok(_)) = lines.next() {});
        ServeProc { child, addr }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        http(&self.addr, method, path, body)
    }

    fn wait_exit(&mut self, within: Duration) -> bool {
        let deadline = Instant::now() + within;
        while Instant::now() < deadline {
            if self.child.try_wait().expect("try_wait").is_some() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Minimal blocking HTTP client (one request per connection, like the
/// server expects).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
    // Chunked responses keep their framing here; these tests only
    // substring-match bodies, so that is fine.
    (status, payload)
}

fn submit(server: &ServeProc, json: &str) -> u64 {
    let (status, body) = server.request("POST", "/submit", Some(json));
    assert!(
        status == 202 || status == 200,
        "submit {json} got {status}: {body}"
    );
    body.split("\"job\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no job id in {body}"))
}

fn state_of(server: &ServeProc, id: u64) -> String {
    let (status, body) = server.request("GET", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200, "{body}");
    body.split("\"state\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or_else(|| panic!("no state in {body}"))
        .to_owned()
}

fn wait_terminal(server: &ServeProc, id: u64, within: Duration) -> String {
    let deadline = Instant::now() + within;
    loop {
        let state = state_of(server, id);
        if !matches!(state.as_str(), "queued" | "running") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} still '{state}' after {within:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn chaos_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-serve-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chaos_storm_then_clean_drain_and_replay() {
    let dir = chaos_dir();
    let server = ServeProc::start(&dir);

    // -- Concurrent submits, one of them a deliberate panic. --
    let quick = submit(&server, r#"{"experiment":"fig8","quick":true}"#);
    let boom = submit(&server, r#"{"experiment":"selftest-panic","quick":true}"#);
    let slow = submit(&server, r#"{"experiment":"selftest-slow"}"#);

    // -- Malformed requests while jobs are in flight. --
    for garbage in [
        "\r\n\r\n",
        "GARBAGE NOISE NOT HTTP\r\n\r\n",
        "POST /submit HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope",
        "POST /submit HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
    ] {
        let mut stream = TcpStream::connect(&server.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(garbage.as_bytes()).expect("write garbage");
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        if let Some(status) = response.split_whitespace().nth(1) {
            let status: u16 = status.parse().expect("numeric status");
            assert!(
                (400..500).contains(&status),
                "garbage must get 4xx, got {status}"
            );
        } // An empty response (clean close) is also acceptable.
    }

    // -- A client that starts the slow job's event stream, then hangs up. --
    {
        let mut stream = TcpStream::connect(&server.addr).expect("connect");
        write!(
            stream,
            "GET /jobs/{slow}/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .expect("start stream");
        let mut first = [0u8; 64];
        let _ = stream.read(&mut first);
        drop(stream); // mid-stream disconnect
    }

    // -- Health must answer through all of it. --
    let (status, body) = server.request("GET", "/health", None);
    assert_eq!(status, 200, "{body}");

    // -- Cancel the slow job mid-run. --
    let (status, body) = server.request("POST", &format!("/jobs/{slow}/cancel"), None);
    assert_eq!(status, 200, "{body}");

    // -- Everything reaches the right terminal state. --
    assert_eq!(
        wait_terminal(&server, quick, Duration::from_secs(60)),
        "completed"
    );
    assert_eq!(
        wait_terminal(&server, boom, Duration::from_secs(60)),
        "failed"
    );
    assert_eq!(
        wait_terminal(&server, slow, Duration::from_secs(10)),
        "cancelled"
    );

    // -- The cache means a resubmit of completed work is instant. --
    let again = submit(&server, r#"{"experiment":"fig8","quick":true}"#);
    assert_ne!(again, quick, "terminal jobs are not single-flighted");
    assert_eq!(
        wait_terminal(&server, again, Duration::from_secs(60)),
        "completed"
    );

    // -- Graceful drain via the API. --
    let (status, body) = server.request("POST", "/shutdown", None);
    assert_eq!(status, 200, "{body}");
    let mut server = server;
    assert!(
        server.wait_exit(Duration::from_secs(15)),
        "server must exit after drain"
    );

    // -- Second life: journal replays, nothing re-runs, ids advance. --
    let server2 = ServeProc::start(&dir);
    let (status, listing) = server2.request("GET", "/jobs", None);
    assert_eq!(status, 200);
    for id in [quick, boom, slow, again] {
        assert!(
            listing.contains(&format!("\"id\":{id}")),
            "job {id} lost across restart: {listing}"
        );
    }
    assert_eq!(state_of(&server2, quick), "completed");
    assert_eq!(state_of(&server2, boom), "failed");
    assert_eq!(state_of(&server2, slow), "cancelled");
    assert!(
        !listing.contains("\"state\":\"queued\"") && !listing.contains("\"state\":\"running\""),
        "no job may be non-terminal after replay: {listing}"
    );
    let fresh = submit(&server2, r#"{"experiment":"selftest-slow","quick":true}"#);
    assert!(fresh > again, "ids must advance past replayed history");
    let (status, _) = server2.request("POST", &format!("/jobs/{fresh}/cancel"), None);
    assert_eq!(status, 200);
    wait_terminal(&server2, fresh, Duration::from_secs(10));
    drop(server2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_sigkill_leaves_interrupted_evidence() {
    let dir = std::env::temp_dir().join(format!("repro-serve-sigterm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // -- SIGTERM: the cooperative slow job is cancelled by the drain and
    // the process exits on its own. --
    let mut server = ServeProc::start(&dir);
    let slow = submit(&server, r#"{"experiment":"selftest-slow"}"#);
    let deadline = Instant::now() + Duration::from_secs(10);
    while state_of(&server, slow) != "running" {
        assert!(Instant::now() < deadline, "slow job never started");
        std::thread::sleep(Duration::from_millis(25));
    }
    let pid = server.child.id();
    assert!(Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM")
        .success());
    assert!(
        server.wait_exit(Duration::from_secs(15)),
        "SIGTERM must end the server"
    );
    drop(server);

    // -- Replay shows the drain's work, then SIGKILL a fresh in-flight
    // job: no drain ran, so replay must mark it interrupted. --
    let mut server2 = ServeProc::start(&dir);
    assert_eq!(state_of(&server2, slow), "cancelled");
    let doomed = submit(&server2, r#"{"experiment":"selftest-slow"}"#);
    let deadline = Instant::now() + Duration::from_secs(10);
    while state_of(&server2, doomed) != "running" {
        assert!(Instant::now() < deadline, "doomed job never started");
        std::thread::sleep(Duration::from_millis(25));
    }
    let pid = server2.child.id();
    assert!(Command::new("kill")
        .args(["-KILL", &pid.to_string()])
        .status()
        .expect("send SIGKILL")
        .success());
    assert!(
        server2.wait_exit(Duration::from_secs(10)),
        "SIGKILL must end the server"
    );
    drop(server2);

    let server3 = ServeProc::start(&dir);
    assert_eq!(
        state_of(&server3, doomed),
        "interrupted",
        "a job killed mid-flight must replay as interrupted, not re-run"
    );
    drop(server3);
    let _ = std::fs::remove_dir_all(&dir);
}
