//! Golden stability tests for the result cache's canonical key encoding.
//!
//! The on-disk cache is only sound if the canonical serialization of
//! `(PaperParams, Scheme, OperatingPoint, budgets)` never drifts silently:
//! a drifted encoding would split the cache into incompatible generations
//! (stale results never found) or, worse, alias distinct configurations.
//! These tests pin one fully-specified tuple to its exact digest under a
//! *fixed* namespace, so any change to the field encodings, tag order, or
//! hash function fails here and must be made deliberately (with an
//! `ENGINE_REV` bump or a new record kind).

use adaptive_clock::system::Scheme;
use clock_rescache::KeyHasher;
use experiments::cache::{engine_fingerprint, CacheKeyExt as _};
use experiments::config::PaperParams;
use experiments::runner::{summary_key, OperatingPoint};

/// The digest of the reference tuple under the frozen `golden/v1`
/// namespace. This value is the contract: if it changes, previously
/// written cache records are unreachable. Do not update it casually —
/// an intentional encoding change must also retire old caches by bumping
/// an `ENGINE_REV`.
const GOLDEN_DIGEST: &str = "b9c77bb099e3fbc0574517b9543cc0e9";

fn golden_key() -> String {
    let params = PaperParams::default();
    KeyHasher::new("golden/v1")
        .str("kind", "run-summary")
        .params(&params)
        .scheme(&Scheme::iir_paper())
        .point(OperatingPoint::new(1.0, 50.0).with_mu(-0.2))
        .u64("budget.samples", 4000)
        .u64("budget.warmup", 1000)
        .finish()
        .to_hex()
}

#[test]
fn canonical_key_digest_is_pinned() {
    assert_eq!(
        golden_key(),
        GOLDEN_DIGEST,
        "canonical cache-key encoding drifted; see the module docs before updating"
    );
}

#[test]
fn digest_is_reproducible_across_calls() {
    assert_eq!(golden_key(), golden_key());
}

#[test]
fn live_summary_keys_are_namespaced_by_the_engine_fingerprint() {
    // The live key builder must use the engine fingerprint (so an
    // ENGINE_REV bump retires every record), and the fingerprint must name
    // both engines.
    let fp = engine_fingerprint();
    assert!(
        fp.contains("core-r") && fp.contains("dtsim-r"),
        "fingerprint must name both engine revisions: {fp}"
    );
    let params = PaperParams::default();
    let a = summary_key(
        &params,
        &Scheme::iir_paper(),
        OperatingPoint::new(1.0, 50.0),
    );
    let b = summary_key(
        &params,
        &Scheme::iir_paper(),
        OperatingPoint::new(1.0, 50.0),
    );
    assert_eq!(a, b, "summary keys must be deterministic");
    assert_eq!(a.to_hex().len(), 32, "128-bit hex digest");
}
