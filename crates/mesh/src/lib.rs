//! `clock-mesh` — a multi-domain GALS network of adaptive clock loops.
//!
//! The paper studies a *single* self-adaptive clock domain; a real SoC
//! couples many of them, each with its own ring oscillator, sensors, and
//! control loop, exchanging data across clock-boundary synchronizers.
//! This crate builds that layer on top of the core engines:
//!
//! * a [`Topology`] describes the directed links
//!   between domains (ring / grid / tree constructors, or hand-wired),
//!   each link carrying its own boundary
//!   [`Cdn`](adaptive_clock::cdn::Cdn) — zero-delay and asymmetric
//!   boundaries included, self-loops rejected;
//! * a [`Mesh`] steps a whole
//!   [`DomainBank`](adaptive_clock::bank::DomainBank) in lockstep through
//!   the bank's scalar runner, injecting inter-domain coupling between
//!   periods: each link advertises the producer's RO length as of
//!   `delay + 1` periods ago, and the *relative skew* against the
//!   consumer's own length perturbs the consumer's heterogeneous input;
//! * every link is watched by a
//!   [`BoundaryMonitor`](clock_metrics::BoundaryMonitor) that accounts
//!   handshake violations and metastability risk, and implements the
//!   FATAL+-style **quarantine** policy: a boundary that stays
//!   unsynchronizable for a run of consecutive periods is cut off, which
//!   contains a Byzantine-faulty or dead neighbour and lets the healthy
//!   domains re-lock.
//!
//! Determinism is load-bearing: a mesh run is a pure function of the bank
//! configuration, topology, and [`Scenario`], so scenario
//! sweeps cache cleanly and CI replays byte-identically. A one-domain
//! mesh with no links is *bit-identical* to the scalar
//! [`DiscreteLoop`](adaptive_clock::loopsim::DiscreteLoop) — coupling is
//! structurally skipped for domains without in-edges, not added as zero —
//! and the differential suite pins that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
pub mod topology;

pub use sim::{BoundaryOutcome, DomainOutcome, Mesh, MeshRun, Scenario};
pub use topology::{Link, Topology};

/// Errors constructing a topology or a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshError {
    /// A link connected a domain to itself — a clock domain needs no
    /// synchronizer to talk to itself, and a self-edge would feed a
    /// loop's own skew back as coupling.
    SelfLoop {
        /// The offending domain index.
        domain: usize,
    },
    /// A link endpoint named a domain the topology does not have.
    DomainOutOfRange {
        /// The offending domain index.
        domain: usize,
        /// Number of domains in the topology.
        domains: usize,
    },
    /// The bank and the topology disagree on the number of domains.
    DomainCountMismatch {
        /// Domains in the bank.
        bank: usize,
        /// Domains in the topology.
        topology: usize,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::SelfLoop { domain } => {
                write!(f, "self-loop on domain {domain} is not a clock boundary")
            }
            MeshError::DomainOutOfRange { domain, domains } => {
                write!(f, "domain {domain} out of range (topology has {domains})")
            }
            MeshError::DomainCountMismatch { bank, topology } => write!(
                f,
                "bank has {bank} domains but the topology expects {topology}"
            ),
        }
    }
}

impl std::error::Error for MeshError {}
