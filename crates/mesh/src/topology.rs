//! Mesh topologies: directed inter-domain links with per-boundary CDNs.
//!
//! A topology is a directed multigraph over `N` clock domains. Each link
//! is one *directed* clock boundary: the producer's delivered edges reach
//! the consumer's synchronizer through the link's own
//! [`Cdn`]. Asymmetric boundaries are simply
//! two links with different delays; a zero-delay CDN models abutting
//! domains. Self-loops are rejected at construction — see
//! [`MeshError::SelfLoop`].

use adaptive_clock::cdn::Cdn;

use crate::MeshError;

/// One directed inter-domain link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Producer domain (the boundary listens to its clock).
    pub from: usize,
    /// Consumer domain (the boundary's synchronizer lives here).
    pub to: usize,
    /// The boundary's clock distribution delay.
    pub cdn: Cdn,
}

/// A directed link graph over `N` clock domains.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    domains: usize,
    links: Vec<Link>,
}

impl Topology {
    /// An unconnected topology of `domains` domains.
    pub fn new(domains: usize) -> Self {
        Topology {
            domains,
            links: Vec::new(),
        }
    }

    /// Add a directed link `from → to` through `cdn`; returns its index.
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfLoop`] when `from == to`, and
    /// [`MeshError::DomainOutOfRange`] when either endpoint does not
    /// exist.
    pub fn connect(&mut self, from: usize, to: usize, cdn: Cdn) -> Result<usize, MeshError> {
        if from == to {
            return Err(MeshError::SelfLoop { domain: from });
        }
        for d in [from, to] {
            if d >= self.domains {
                return Err(MeshError::DomainOutOfRange {
                    domain: d,
                    domains: self.domains,
                });
            }
        }
        self.links.push(Link { from, to, cdn });
        Ok(self.links.len() - 1)
    }

    /// A bidirectional ring: every domain is coupled both ways with each
    /// neighbour through the same boundary CDN. One or zero domains yield
    /// no links.
    pub fn ring(domains: usize, cdn: Cdn) -> Self {
        let mut t = Topology::new(domains);
        if domains >= 2 {
            // For two domains the "ring" is the single shared edge.
            let edges = if domains == 2 { 1 } else { domains };
            for i in 0..edges {
                let j = (i + 1) % domains;
                t.connect(i, j, cdn).expect("ring edges are well-formed");
                t.connect(j, i, cdn).expect("ring edges are well-formed");
            }
        }
        t
    }

    /// A `cols × rows` 4-neighbour grid, every edge bidirectional.
    /// Domain `(x, y)` has index `y·cols + x`.
    pub fn grid(cols: usize, rows: usize, cdn: Cdn) -> Self {
        let mut t = Topology::new(cols * rows);
        for y in 0..rows {
            for x in 0..cols {
                let d = y * cols + x;
                if x + 1 < cols {
                    t.connect(d, d + 1, cdn)
                        .expect("grid edges are well-formed");
                    t.connect(d + 1, d, cdn)
                        .expect("grid edges are well-formed");
                }
                if y + 1 < rows {
                    let below = d + cols;
                    t.connect(d, below, cdn)
                        .expect("grid edges are well-formed");
                    t.connect(below, d, cdn)
                        .expect("grid edges are well-formed");
                }
            }
        }
        t
    }

    /// A rooted tree (an H-tree-style distribution spine): domain `i > 0`
    /// hangs off parent `(i − 1) / fanout`, every edge bidirectional.
    /// `fanout` is clamped to at least 1.
    pub fn tree(domains: usize, fanout: usize, cdn: Cdn) -> Self {
        let fanout = fanout.max(1);
        let mut t = Topology::new(domains);
        for i in 1..domains {
            let parent = (i - 1) / fanout;
            t.connect(parent, i, cdn)
                .expect("tree edges are well-formed");
            t.connect(i, parent, cdn)
                .expect("tree edges are well-formed");
        }
        t
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The directed links, in insertion order (link indices are stable).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links whose consumer is `d` — the domain's in-degree.
    pub fn in_degree(&self, d: usize) -> usize {
        self.links.iter().filter(|l| l.to == d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdn(t: f64) -> Cdn {
        Cdn::new(t).unwrap()
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut t = Topology::new(3);
        assert_eq!(
            t.connect(1, 1, cdn(64.0)),
            Err(MeshError::SelfLoop { domain: 1 })
        );
        assert!(t.links().is_empty());
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        let mut t = Topology::new(2);
        assert_eq!(
            t.connect(0, 5, cdn(64.0)),
            Err(MeshError::DomainOutOfRange {
                domain: 5,
                domains: 2
            })
        );
    }

    #[test]
    fn asymmetric_and_zero_delay_links_coexist() {
        let mut t = Topology::new(2);
        t.connect(0, 1, cdn(96.0)).unwrap();
        t.connect(1, 0, cdn(0.0)).unwrap();
        assert_eq!(t.links()[0].cdn.delay(), 96.0);
        assert_eq!(t.links()[1].cdn.delay(), 0.0);
        assert_eq!(t.in_degree(0), 1);
        assert_eq!(t.in_degree(1), 1);
    }

    #[test]
    fn ring_degrees() {
        assert!(Topology::ring(1, cdn(64.0)).links().is_empty());
        let two = Topology::ring(2, cdn(64.0));
        assert_eq!(two.links().len(), 2, "two domains share one edge");
        let t = Topology::ring(8, cdn(64.0));
        assert_eq!(t.links().len(), 16);
        for d in 0..8 {
            assert_eq!(t.in_degree(d), 2);
        }
    }

    #[test]
    fn grid_degrees() {
        let t = Topology::grid(3, 3, cdn(64.0));
        assert_eq!(t.domains(), 9);
        // 12 undirected grid edges, both directions
        assert_eq!(t.links().len(), 24);
        assert_eq!(t.in_degree(4), 4, "centre cell has 4 neighbours");
        assert_eq!(t.in_degree(0), 2, "corner has 2");
    }

    #[test]
    fn tree_degrees() {
        let t = Topology::tree(7, 2, cdn(64.0));
        assert_eq!(t.links().len(), 12);
        assert_eq!(t.in_degree(0), 2, "root hears its two children");
        assert_eq!(t.in_degree(6), 1, "leaf hears its parent");
    }
}
