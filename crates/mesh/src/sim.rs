//! The mesh engine: lockstep stepping of a coupled domain bank.
//!
//! A [`Mesh`] owns a [`DomainBank`] and a [`Topology`] and advances every
//! domain period by period through the bank's scalar
//! [`BankRunner`](adaptive_clock::bank::BankRunner) — the same stepping
//! strategy the scalar `DiscreteLoop` drives, which is what makes a
//! one-domain mesh bit-identical to it. Per period the engine runs two
//! passes:
//!
//! 1. **boundaries** — each live link reads the producer's RO length as
//!    of `delay + 1` periods ago (`delay` is the link CDN expressed in
//!    whole set-point periods; the extra period is the synchronizer's
//!    capture register), forms the *relative* skew against the consumer's
//!    current length, feeds the link's
//!    [`BoundaryMonitor`], and — unless
//!    the monitor has quarantined the link — accumulates
//!    `gain · skew` of coupling into the consumer;
//! 2. **domains** — every domain steps through the shared Fig. 4
//!    recurrence; the accumulated coupling rides on the domain's
//!    heterogeneous input. Domains with no in-links skip the coupling add
//!    *structurally* (no `+ 0.0`), preserving bit-identity with the
//!    uncoupled engines.
//!
//! Reading only periods `≤ n − 1` in pass 1 makes the result independent
//! of domain ordering, so the engine is deterministic by construction —
//! scenario injections ([`Scenario`]) are all seeded or explicit.

use adaptive_clock::bank::DomainBank;
use adaptive_clock::cdn::Cdn;
use clock_faults::{FaultEvent, FaultKind, FaultSchedule};
use clock_metrics::{violation_report, BoundaryMonitor, BoundaryReport, ViolationReport};
use clock_telemetry::Telemetry;

use crate::topology::Topology;
use crate::MeshError;

/// What the mesh is subjected to during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// No injected disturbance (static per-domain variation still
    /// applies).
    Nominal,
    /// Domain `domain` permanently loses `stages` RO stages at period
    /// `at` — a hard local failure the domain's own loop compensates,
    /// which drags its operating point away from its neighbours' until
    /// the boundaries quarantine it.
    DomainFailure {
        /// The failing domain.
        domain: usize,
        /// Failure period.
        at: u64,
        /// RO stages lost (permanently).
        stages: f64,
    },
    /// Domain `domain` turns Byzantine at period `at`: it advertises
    /// deterministic garbage lengths to every boundary it feeds *and*
    /// suffers a seeded SEU strike plan internally. Healthy neighbours
    /// must quarantine it and re-lock.
    Byzantine {
        /// The faulty domain.
        domain: usize,
        /// First Byzantine period.
        at: u64,
        /// Seed for the internal strike plan and the advertised garbage.
        seed: u64,
    },
    /// A global supply droop: every domain's homogeneous variation drops
    /// by `droop` stages for `duration` periods starting at `at`, then
    /// recovers — the whole mesh must re-lock.
    PowerEvent {
        /// Droop onset period.
        at: u64,
        /// Droop depth in stages (positive = slower gates).
        droop: f64,
        /// Droop duration in periods.
        duration: u64,
    },
}

impl Scenario {
    /// Stable kebab-case label (table rows, cache keys).
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Nominal => "nominal",
            Scenario::DomainFailure { .. } => "domain-failure",
            Scenario::Byzantine { .. } => "byzantine",
            Scenario::PowerEvent { .. } => "power-event",
        }
    }
}

/// Deterministic garbage a Byzantine domain advertises at read index `i`.
fn byzantine_word(i: i64, setpoint: f64, seed: u64) -> f64 {
    let x = (i as u64)
        .wrapping_add(seed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // setpoint·1.5 ± a couple of stages of wobble: far enough off any
    // plausible operating point to blow the boundary tolerance, varied
    // enough that it cannot be mistaken for a re-locked neighbour.
    setpoint * 1.5 + ((x >> 58) as f64) / 4.0 - 8.0
}

/// One domain's outcome of a mesh run.
#[derive(Debug, Clone)]
pub struct DomainOutcome {
    /// TDC readings `τ[n]`.
    pub tau: Vec<f64>,
    /// Adaptation errors `δ[n]`.
    pub delta: Vec<f64>,
    /// RO lengths `l_RO[n]`.
    pub lro: Vec<f64>,
    /// Violation / re-lock accounting against the mesh's margin policy.
    pub report: ViolationReport,
}

/// One directed link's outcome of a mesh run.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryOutcome {
    /// Producer domain.
    pub from: usize,
    /// Consumer domain.
    pub to: usize,
    /// The link's boundary statistics.
    pub report: BoundaryReport,
}

/// The recorded outcome of one [`Mesh::run`].
#[derive(Debug, Clone)]
pub struct MeshRun {
    /// Per-domain traces and reports, indexed like the bank.
    pub domains: Vec<DomainOutcome>,
    /// Per-link boundary reports, indexed like the topology's links.
    pub boundaries: Vec<BoundaryOutcome>,
    /// Total handshake violations across all links.
    pub boundary_violations: u64,
    /// Fault events injected into the bank's domains before the horizon.
    pub injected: u64,
    /// Watchdog re-lock events across the bank's hardened domains.
    pub relocks: u64,
}

impl MeshRun {
    /// Number of links the quarantine policy cut off.
    pub fn quarantined_links(&self) -> usize {
        self.boundaries
            .iter()
            .filter(|b| b.report.quarantined_at.is_some())
            .count()
    }

    /// Whether every link fed by domain `d` ended quarantined (and there
    /// was at least one) — the mesh's definition of "domain `d` is
    /// contained".
    pub fn is_contained(&self, d: usize) -> bool {
        let mut any = false;
        for b in &self.boundaries {
            if b.from == d {
                any = true;
                if b.report.quarantined_at.is_none() {
                    return false;
                }
            }
        }
        any
    }
}

/// A multi-domain GALS clock mesh (see the module docs).
#[derive(Debug)]
pub struct Mesh {
    bank: DomainBank,
    topo: Topology,
    telemetry: Telemetry,
    setpoint: f64,
    coupling: f64,
    tolerance: f64,
    sync_window: f64,
    quarantine_after: usize,
    margin: f64,
    lock_tolerance: f64,
    lock_run: usize,
}

impl Mesh {
    /// A mesh of `bank`'s domains wired by `topo`, all regulating toward
    /// `setpoint` stages.
    ///
    /// # Errors
    ///
    /// [`MeshError::DomainCountMismatch`] unless the bank and topology
    /// agree on the number of domains.
    pub fn new(bank: DomainBank, topo: Topology, setpoint: f64) -> Result<Self, MeshError> {
        if bank.len() != topo.domains() {
            return Err(MeshError::DomainCountMismatch {
                bank: bank.len(),
                topology: topo.domains(),
            });
        }
        Ok(Mesh {
            bank,
            topo,
            telemetry: Telemetry::disabled(),
            setpoint,
            coupling: 0.05,
            tolerance: 8.0,
            sync_window: 2.0,
            quarantine_after: 3,
            margin: 6.0,
            lock_tolerance: 2.0,
            lock_run: 20,
        })
    }

    /// Attach an instrumentation handle (spans `engine.mesh`, counters
    /// `mesh.domains` / `mesh.boundary_violations`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Set the coupling gain: stages of heterogeneous perturbation per
    /// stage of boundary skew.
    #[must_use]
    pub fn with_coupling(mut self, gain: f64) -> Self {
        self.coupling = gain;
        self
    }

    /// Configure the boundary monitors: capture `tolerance` (stages),
    /// synchronizer resolution `window` (stages), and the quarantine
    /// threshold in consecutive violations (`0` disables quarantine).
    #[must_use]
    pub fn with_boundary(mut self, tolerance: f64, window: f64, quarantine_after: usize) -> Self {
        self.tolerance = tolerance;
        self.sync_window = window;
        self.quarantine_after = quarantine_after;
        self
    }

    /// Configure the per-domain violation accounting: deployed safety
    /// `margin`, lock `tolerance`, and the consecutive in-tolerance run
    /// that counts as re-locked.
    #[must_use]
    pub fn with_lock_policy(mut self, margin: f64, tolerance: f64, run: usize) -> Self {
        self.margin = margin;
        self.lock_tolerance = tolerance;
        self.lock_run = run;
        self
    }

    /// The domain bank (per-domain step counters live here).
    pub fn bank(&self) -> &DomainBank {
        &self.bank
    }

    /// Mutable access to the bank (variation, faults, hardening).
    pub fn bank_mut(&mut self) -> &mut DomainBank {
        &mut self.bank
    }

    /// The link graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Reset every domain's controller (lifetime step counters survive).
    pub fn reset(&mut self) {
        self.bank.reset();
    }

    /// Run `steps` periods under `scenario` and record every domain and
    /// boundary.
    pub fn run(&mut self, scenario: &Scenario, steps: usize) -> MeshRun {
        let ndom = self.bank.len();
        let links = self.topo.links().to_vec();
        let mut span = self.telemetry.scope("engine.mesh");
        span.attr("steps", steps);
        span.attr("domains", ndom);
        span.attr("links", links.len());
        self.telemetry.counter("mesh.domains").add(ndom as u64);

        // Compose the scenario's strike plan into the affected domain's
        // schedule for the duration of the run; restored afterwards so a
        // mesh can be re-run (or run under another scenario) cleanly.
        let mut saved: Option<(usize, FaultSchedule)> = None;
        match *scenario {
            Scenario::DomainFailure { domain, at, stages } => {
                let mut composed = self.bank.faults(domain).clone();
                composed.push(FaultEvent {
                    at,
                    duration: 1, // permanent: RO stage failures never heal
                    kind: FaultKind::RoStageFailure { stages },
                });
                saved = Some((domain, self.bank.faults(domain).clone()));
                self.bank.set_faults(domain, composed);
            }
            Scenario::Byzantine { domain, at, seed } => {
                let mut composed = self.bank.faults(domain).clone();
                for k in 0..3u64 {
                    composed.push(FaultEvent {
                        at: at + 350 * k,
                        duration: 1,
                        kind: FaultKind::SeuLroWord {
                            bit: 3 + ((seed >> (8 * k)) % 16) as u32,
                        },
                    });
                }
                saved = Some((domain, self.bank.faults(domain).clone()));
                self.bank.set_faults(domain, composed);
            }
            Scenario::Nominal | Scenario::PowerEvent { .. } => {}
        }

        let byz = match *scenario {
            Scenario::Byzantine { domain, at, seed } => Some((domain, at as i64, seed)),
            _ => None,
        };
        let e_at = |i: i64| -> f64 {
            if let Scenario::PowerEvent {
                at,
                droop,
                duration,
            } = *scenario
            {
                if i >= at as i64 && i < (at + duration) as i64 {
                    return -droop;
                }
            }
            0.0
        };

        let mm: Vec<i64> = (0..ndom).map(|d| (self.bank.m(d) + 2) as i64).collect();
        let vars: Vec<f64> = (0..ndom).map(|d| self.bank.variation(d)).collect();
        let has_in: Vec<bool> = (0..ndom).map(|d| self.topo.in_degree(d) > 0).collect();
        let delays: Vec<i64> = links
            .iter()
            .map(|l| l.cdn.whole_periods_at(self.setpoint) as i64)
            .collect();
        let mut monitors: Vec<BoundaryMonitor> = links
            .iter()
            .map(|_| BoundaryMonitor::new(self.tolerance, self.sync_window, self.quarantine_after))
            .collect();

        let setpoint = self.setpoint;
        let coupling = self.coupling;
        let mut tau = vec![Vec::with_capacity(steps); ndom];
        let mut delta = vec![Vec::with_capacity(steps); ndom];
        let mut lro = vec![Vec::with_capacity(steps); ndom];
        let mut inject = vec![0.0f64; ndom];
        let mut boundary_violations = 0u64;

        let mut runner = self.bank.runner();
        for n in 0..steps as i64 {
            // Pass 1: boundaries. Reading only periods ≤ n − 1 keeps the
            // outcome independent of the domain step order below.
            for (l, link) in links.iter().enumerate() {
                if monitors[l].quarantined() {
                    continue;
                }
                let i = n - 1 - delays[l];
                let advertised = match byz {
                    Some((bd, bat, seed)) if link.from == bd && i >= bat => {
                        byzantine_word(i, setpoint, seed)
                    }
                    _ => runner.lro(link.from, i),
                };
                let skew = advertised - runner.lro(link.to, n - 1);
                if monitors[l].observe(n as u64, skew) {
                    boundary_violations += 1;
                }
                if !monitors[l].quarantined() {
                    inject[link.to] += coupling * skew;
                }
            }
            // Pass 2: step every domain through the shared recurrence.
            for d in 0..ndom {
                let gen = n - mm[d];
                let mut mu = vars[d];
                if has_in[d] {
                    // Structural skip above: a domain with no in-links
                    // never sees this add, keeping its bits identical to
                    // an uncoupled scalar run.
                    mu += inject[d];
                    inject[d] = 0.0;
                }
                let out = runner.step(d, n, setpoint, e_at(gen), e_at(n - 1), mu);
                tau[d].push(out.tau);
                delta[d].push(out.delta);
                lro[d].push(out.lro);
            }
        }
        let injected = runner.injected_before(steps as u64);
        let relocks = runner.relocks();
        drop(runner);

        if let Some((domain, schedule)) = saved {
            self.bank.set_faults(domain, schedule);
        }
        self.telemetry
            .counter("mesh.boundary_violations")
            .add(boundary_violations);

        let domains = (0..ndom)
            .map(|d| {
                let report = violation_report(
                    setpoint,
                    &tau[d],
                    self.margin,
                    self.lock_tolerance,
                    self.lock_run,
                );
                DomainOutcome {
                    tau: std::mem::take(&mut tau[d]),
                    delta: std::mem::take(&mut delta[d]),
                    lro: std::mem::take(&mut lro[d]),
                    report,
                }
            })
            .collect();
        let boundaries = links
            .iter()
            .zip(&monitors)
            .map(|(link, mon)| BoundaryOutcome {
                from: link.from,
                to: link.to,
                report: mon.report(),
            })
            .collect();
        MeshRun {
            domains,
            boundaries,
            boundary_violations,
            injected,
            relocks,
        }
    }
}

/// A convenience used across the tests and the `ext-mesh` experiment: a
/// link CDN of one nominal set-point period.
pub fn unit_cdn(setpoint: f64) -> Cdn {
    Cdn::new(setpoint).expect("a positive set-point is a valid CDN delay")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use adaptive_clock::controller::{IirConfig, IntIirControl};
    use adaptive_clock::resilience::Resilience;
    use adaptive_clock::tdc::Quantization;

    const C: i64 = 64;

    fn hardened_bank(n: usize, spread: &[f64]) -> DomainBank {
        let mut bank = DomainBank::new();
        for d in 0..n {
            let ctrl = IntIirControl::new(IirConfig::paper(), C).unwrap();
            bank.push_with(
                1,
                ctrl,
                Quantization::Floor,
                FaultSchedule::default(),
                Resilience::hardened(C as f64),
            );
            bank.set_variation(d, spread[d % spread.len()]);
        }
        bank
    }

    fn ring_mesh(n: usize) -> Mesh {
        let topo = Topology::ring(n, unit_cdn(C as f64));
        Mesh::new(hardened_bank(n, &[0.0, 1.5, -2.0, 0.5]), topo, C as f64).unwrap()
    }

    #[test]
    fn nominal_ring_stays_locked_with_quiet_boundaries() {
        let mut mesh = ring_mesh(6);
        let run = mesh.run(&Scenario::Nominal, 800);
        assert_eq!(run.quarantined_links(), 0);
        assert_eq!(run.relocks, 0);
        for (d, out) in run.domains.iter().enumerate() {
            assert!(!out.report.unresolved, "domain {d} must end locked");
            assert_eq!(out.report.violations, 0, "domain {d}");
        }
        for b in &run.boundaries {
            assert!(b.report.worst_skew <= 4.0, "{} → {}", b.from, b.to);
        }
    }

    #[test]
    fn byzantine_neighbour_is_contained_and_rest_relock() {
        let mut mesh = ring_mesh(6);
        let scen = Scenario::Byzantine {
            domain: 2,
            at: 100,
            seed: 0xB12A,
        };
        let run = mesh.run(&scen, 1500);
        assert!(run.is_contained(2), "faulty domain must be quarantined");
        for (d, out) in run.domains.iter().enumerate() {
            if d != 2 {
                assert!(!out.report.unresolved, "healthy domain {d} must re-lock");
            }
        }
        assert!(run.boundary_violations > 0);
        // Deterministic: a fresh mesh reproduces the run bit for bit.
        let rerun = ring_mesh(6).run(&scen, 1500);
        for d in 0..6 {
            assert_eq!(run.domains[d].tau, rerun.domains[d].tau, "domain {d}");
        }
        assert_eq!(run.boundary_violations, rerun.boundary_violations);
    }

    #[test]
    fn domain_failure_is_quarantined_once_compensation_skews_it() {
        let mut mesh = ring_mesh(5);
        let scen = Scenario::DomainFailure {
            domain: 0,
            at: 150,
            stages: 16.0,
        };
        let run = mesh.run(&scen, 1500);
        // The failed domain compensates internally (its own loop re-locks
        // at a longer RO), which drags its advertised length ~16 stages
        // off its neighbours' — past the 8-stage boundary tolerance.
        assert!(run.is_contained(0), "failed domain must be contained");
        assert!(run.injected >= 1);
        for (d, out) in run.domains.iter().enumerate() {
            assert!(!out.report.unresolved, "domain {d} must end locked");
        }
    }

    #[test]
    fn global_power_event_common_modes_out_and_relocks() {
        let mut mesh = ring_mesh(6);
        let run = mesh.run(
            &Scenario::PowerEvent {
                at: 200,
                droop: 10.0,
                duration: 120,
            },
            1200,
        );
        // The droop is homogeneous, the skew relative: no boundary may
        // quarantine, and every domain must re-lock after recovery.
        assert_eq!(run.quarantined_links(), 0);
        for (d, out) in run.domains.iter().enumerate() {
            assert!(!out.report.unresolved, "domain {d} must re-lock");
        }
    }

    #[test]
    fn mismatched_bank_and_topology_is_rejected() {
        let bank = hardened_bank(3, &[0.0]);
        let topo = Topology::ring(4, unit_cdn(C as f64));
        assert!(matches!(
            Mesh::new(bank, topo, C as f64),
            Err(MeshError::DomainCountMismatch {
                bank: 3,
                topology: 4
            })
        ));
    }

    #[test]
    fn mesh_telemetry_counts_domains_and_violations() {
        let t = Telemetry::enabled();
        let topo = Topology::ring(4, unit_cdn(C as f64));
        let mut mesh = Mesh::new(hardened_bank(4, &[0.0, 1.0]), topo, C as f64)
            .unwrap()
            .with_telemetry(t.clone());
        let run = mesh.run(
            &Scenario::Byzantine {
                domain: 1,
                at: 50,
                seed: 7,
            },
            600,
        );
        let snap = t.snapshot();
        assert_eq!(snap.counter("mesh.domains"), Some(4));
        assert_eq!(
            snap.counter("mesh.boundary_violations"),
            Some(run.boundary_violations)
        );
        // Per-domain step counters credit the mesh run.
        for d in 0..4 {
            assert_eq!(mesh.bank().steps(d), 600);
        }
    }
}
