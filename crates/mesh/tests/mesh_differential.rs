//! Differential proptest suite pinning the mesh engine to the scalar
//! `DiscreteLoop`: a one-domain mesh with no links must be
//! **bit-identical** to the scalar loop for arbitrary schemes, CDN
//! depths, quantizations, fault schedules, resilience configs, static
//! variation, and global power events. This is the refactor guard for
//! the `DomainBank` strategy model — any drift between the bank runner
//! and the original scalar arithmetic fails here first.

use adaptive_clock::controller::{
    Controller, FloatIir, FreeRunning, IirConfig, IntIirControl, TeaTime,
};
use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};
use adaptive_clock::resilience::Resilience;
use adaptive_clock::tdc::Quantization;
use clock_faults::{FaultClass, FaultSchedule};
use clock_mesh::{Mesh, Scenario, Topology};

use proptest::prelude::*;

const STEPS: usize = 500;
const SETPOINT: i64 = 64;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct DomainSpec {
    m: usize,
    quant: Quantization,
    scheme: usize,
    faults: FaultSchedule,
    resilience: Resilience,
    variation: f64,
}

impl DomainSpec {
    fn derive(seed: u64) -> DomainSpec {
        let mut s = seed;
        let mix = splitmix(&mut s);
        let scheme = (mix % 4) as usize;
        let m = ((mix >> 8) % 3) as usize;
        let quant = match (mix >> 16) % 3 {
            0 => Quantization::Floor,
            1 => Quantization::Nearest,
            _ => Quantization::None,
        };
        let faults = if (mix >> 24) & 1 == 1 {
            let class = FaultClass::ALL[((mix >> 32) % FaultClass::ALL.len() as u64) as usize];
            FaultSchedule::random(splitmix(&mut s), class, 30.0, STEPS as u64, 3)
        } else {
            FaultSchedule::default()
        };
        let resilience = if (mix >> 40) & 1 == 1 {
            Resilience::hardened(SETPOINT as f64)
        } else {
            Resilience::default()
        };
        let variation = ((mix >> 48) % 13) as f64 - 6.0;
        DomainSpec {
            m,
            quant,
            scheme,
            faults,
            resilience,
            variation,
        }
    }

    fn controller(&self) -> Controller {
        let cfg = IirConfig::paper();
        match self.scheme {
            0 => IntIirControl::new(cfg, SETPOINT)
                .expect("paper config")
                .into(),
            1 => FloatIir::from_config(&cfg, SETPOINT as f64)
                .expect("paper config")
                .into(),
            2 => TeaTime::new(SETPOINT).into(),
            _ => FreeRunning::new(SETPOINT).into(),
        }
    }
}

/// Run the spec through a one-domain, zero-link mesh under `scenario`.
fn run_mesh(spec: &DomainSpec, scenario: &Scenario) -> clock_mesh::MeshRun {
    let mut bank = adaptive_clock::bank::DomainBank::new();
    bank.push_with(
        spec.m,
        spec.controller(),
        spec.quant,
        spec.faults.clone(),
        spec.resilience,
    );
    bank.set_variation(0, spec.variation);
    let mut mesh = Mesh::new(bank, Topology::new(1), SETPOINT as f64).unwrap();
    mesh.run(scenario, STEPS)
}

/// Run the spec through the scalar `DiscreteLoop` with equivalent inputs.
fn run_twin(spec: &DomainSpec, e: &dyn Fn(i64) -> f64) -> adaptive_clock::loopsim::LoopTrace {
    let sp = constant(SETPOINT as f64);
    let mu = constant(spec.variation);
    DiscreteLoop::new(spec.m, spec.controller(), spec.quant)
        .with_faults(spec.faults.clone())
        .with_resilience(spec.resilience)
        .run(
            &LoopInputs {
                setpoint: &sp,
                homogeneous: e,
                heterogeneous: &mu,
            },
            STEPS,
        )
}

fn assert_bits(run: &clock_mesh::MeshRun, twin: &adaptive_clock::loopsim::LoopTrace) {
    let out = &run.domains[0];
    for n in 0..STEPS {
        assert_eq!(
            out.tau[n].to_bits(),
            twin.tau[n].to_bits(),
            "tau[{n}]: {} vs {}",
            out.tau[n],
            twin.tau[n]
        );
        assert_eq!(
            out.delta[n].to_bits(),
            twin.delta[n].to_bits(),
            "delta[{n}]"
        );
        assert_eq!(out.lro[n].to_bits(), twin.lro[n].to_bits(), "lro[{n}]");
    }
}

proptest! {
    /// Nominal scenario: a one-domain mesh is the scalar loop, bit for
    /// bit, faults and hardening included.
    #[test]
    fn one_domain_mesh_bit_identical_to_discrete_loop(seed in 0u64..u64::MAX) {
        let spec = DomainSpec::derive(seed);
        let run = run_mesh(&spec, &Scenario::Nominal);
        let twin = run_twin(&spec, &constant(0.0));
        assert_bits(&run, &twin);
    }

    /// Power-event scenario: the mesh's global droop is exactly a
    /// homogeneous-variation window on the scalar loop.
    #[test]
    fn one_domain_power_event_matches_homogeneous_window(
        seed in 0u64..u64::MAX,
        at in 0u64..300,
        droop_q in 1u32..40,
        duration in 1u64..200,
    ) {
        let spec = DomainSpec::derive(seed);
        let droop = f64::from(droop_q) / 2.0;
        let scen = Scenario::PowerEvent { at, droop, duration };
        let run = run_mesh(&spec, &scen);
        let e = move |i: i64| -> f64 {
            if i >= at as i64 && i < (at + duration) as i64 { -droop } else { 0.0 }
        };
        let twin = run_twin(&spec, &e);
        assert_bits(&run, &twin);
    }
}

/// The acceptance scenario, pinned deterministically: a Byzantine
/// neighbour in a hardened-IIR ring is quarantined while every healthy
/// domain re-locks, and two independent runs reproduce the outcome bit
/// for bit.
#[test]
fn byzantine_ring_reproduces_bit_for_bit() {
    let build = || {
        let mut bank = adaptive_clock::bank::DomainBank::new();
        for d in 0..8 {
            bank.push_with(
                1,
                IntIirControl::new(IirConfig::paper(), SETPOINT).unwrap(),
                Quantization::Floor,
                FaultSchedule::default(),
                Resilience::hardened(SETPOINT as f64),
            );
            bank.set_variation(d, [0.0, 1.5, -2.0, 0.5][d % 4]);
        }
        let cdn = adaptive_clock::cdn::Cdn::new(SETPOINT as f64).unwrap();
        Mesh::new(bank, Topology::ring(8, cdn), SETPOINT as f64).unwrap()
    };
    let scen = Scenario::Byzantine {
        domain: 3,
        at: 120,
        seed: 0x0F47_A1E5,
    };
    let a = build().run(&scen, 2000);
    let b = build().run(&scen, 2000);
    assert!(a.is_contained(3), "Byzantine domain must be quarantined");
    for (d, out) in a.domains.iter().enumerate() {
        if d != 3 {
            assert!(!out.report.unresolved, "healthy domain {d} must re-lock");
        }
    }
    assert_eq!(a.boundary_violations, b.boundary_violations);
    assert_eq!(a.quarantined_links(), b.quarantined_links());
    for d in 0..8 {
        for n in 0..2000 {
            assert_eq!(
                a.domains[d].tau[n].to_bits(),
                b.domains[d].tau[n].to_bits(),
                "domain {d} tau[{n}]"
            );
        }
    }
}
