//! `clock-faults` — deterministic fault models for adaptive clock loops.
//!
//! The paper's adversary is *smooth* PVTA variation; a deployed adaptive
//! clock also has to ride through *discrete* faults: TDC sensors that stick,
//! drop out or spike, single-event upsets (SEUs) in the controller state or
//! the latched `l_RO` control word, glitched clock edges, and hard ring-
//! oscillator stage failures. This crate defines those fault classes and an
//! injection-schedule API the simulation engines consume.
//!
//! Two properties shape the design:
//!
//! * **Determinism** — a [`FaultSchedule`] is plain data. Randomized
//!   schedules ([`FaultSchedule::random`]) are a pure function of
//!   `(seed, class, rate, horizon)` built on splitmix64 streams, the same
//!   idiom the engines use for jitter and TDC noise, so every chaos run is
//!   bit-reproducible and cacheable.
//! * **Addressability** — [`FaultSchedule::canonical_id`] gives a stable
//!   textual encoding of the whole schedule, which result caches hash so a
//!   faulted run can never collide with a clean one (or with a different
//!   schedule).
//!
//! The crate is dependency-free and engine-agnostic: it answers point
//! queries ("what strikes sensor 2 at period 417?") and leaves the physics
//! of applying a fault to the engines (`adaptive_clock`) and the block
//! library (`dtsim::blocks::FaultPort`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Where and how a fault strikes. All magnitudes are in stage units (one
/// unit = one nominal gate delay), matching the engines' signal convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// TDC sensor `sensor` outputs the constant `value` instead of a real
    /// reading for the event's duration (a latched comparator, a frozen
    /// counter).
    TdcStuckAt {
        /// Index of the affected sensor replica.
        sensor: usize,
        /// The stuck reading, in stages.
        value: f64,
    },
    /// TDC sensor `sensor` produces no valid sample for the event's
    /// duration. Unhardened hardware keeps consuming the stale register;
    /// hardened controllers can see the missing valid flag.
    TdcDropout {
        /// Index of the affected sensor replica.
        sensor: usize,
    },
    /// TDC sensor `sensor` reads `offset` stages off for the event's
    /// duration (a metastability spike, a coupling transient).
    TdcOutlier {
        /// Index of the affected sensor replica.
        sensor: usize,
        /// Reading offset in stages (negative = reads dangerously short).
        offset: f64,
    },
    /// Single-event upset: flip bit `bit` of the controller's most recent
    /// state word at the event period. Instantaneous (`duration` ignored).
    SeuControlState {
        /// Bit index into the modeled state register (taken modulo
        /// [`SEU_BIT_SPAN`]).
        bit: u32,
    },
    /// Single-event upset: flip bit `bit` of the latched `l_RO` control
    /// word at the event period. Instantaneous (`duration` ignored).
    SeuLroWord {
        /// Bit index into the modeled `l_RO` register (taken modulo
        /// [`SEU_BIT_SPAN`]).
        bit: u32,
    },
    /// A glitched clock edge: the delivered period measured at the event
    /// period arrives `stages` stages short (a real timing hazard, not a
    /// sensor artifact — every sensor sees it).
    ClockGlitch {
        /// How many stages the delivered period shrinks by.
        stages: f64,
    },
    /// `stages` ring-oscillator stages fail permanently from the event
    /// period on: every period generated afterwards is that much shorter
    /// until the control loop re-lengthens the ring.
    RoStageFailure {
        /// Number of stages lost (cumulative across events).
        stages: f64,
    },
}

/// SEU bit indices are taken modulo this span, bounding the modeled
/// register width so an upset produces a large-but-finite excursion the
/// integer kernels can absorb without overflow.
pub const SEU_BIT_SPAN: u32 = 37;

impl FaultKind {
    /// The fault class this kind belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::TdcStuckAt { .. } => FaultClass::TdcStuckAt,
            FaultKind::TdcDropout { .. } => FaultClass::TdcDropout,
            FaultKind::TdcOutlier { .. } => FaultClass::TdcOutlier,
            FaultKind::SeuControlState { .. } => FaultClass::SeuControlState,
            FaultKind::SeuLroWord { .. } => FaultClass::SeuLroWord,
            FaultKind::ClockGlitch { .. } => FaultClass::ClockGlitch,
            FaultKind::RoStageFailure { .. } => FaultClass::RoStageFailure,
        }
    }

    /// Canonical textual encoding (stable across releases — cache keys
    /// depend on it).
    fn canonical(&self) -> String {
        match self {
            FaultKind::TdcStuckAt { sensor, value } => format!("stuck(s{sensor},{value:.6})"),
            FaultKind::TdcDropout { sensor } => format!("drop(s{sensor})"),
            FaultKind::TdcOutlier { sensor, offset } => format!("outlier(s{sensor},{offset:.6})"),
            FaultKind::SeuControlState { bit } => format!("seu-ctl(b{bit})"),
            FaultKind::SeuLroWord { bit } => format!("seu-lro(b{bit})"),
            FaultKind::ClockGlitch { stages } => format!("glitch({stages:.6})"),
            FaultKind::RoStageFailure { stages } => format!("ro-fail({stages:.6})"),
        }
    }
}

/// The seven fault classes, as swept by the chaos experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// TDC reading sticks at a constant.
    TdcStuckAt,
    /// TDC produces no valid samples.
    TdcDropout,
    /// TDC reading spikes off by an offset.
    TdcOutlier,
    /// Bit flip in the controller state register.
    SeuControlState,
    /// Bit flip in the latched `l_RO` word.
    SeuLroWord,
    /// A delivered clock edge arrives short.
    ClockGlitch,
    /// Ring-oscillator stages fail permanently.
    RoStageFailure,
}

impl FaultClass {
    /// Every class, in taxonomy order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::TdcStuckAt,
        FaultClass::TdcDropout,
        FaultClass::TdcOutlier,
        FaultClass::SeuControlState,
        FaultClass::SeuLroWord,
        FaultClass::ClockGlitch,
        FaultClass::RoStageFailure,
    ];

    /// Stable kebab-case label (table rows, cache keys).
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::TdcStuckAt => "tdc-stuck-at",
            FaultClass::TdcDropout => "tdc-dropout",
            FaultClass::TdcOutlier => "tdc-outlier",
            FaultClass::SeuControlState => "seu-ctl-state",
            FaultClass::SeuLroWord => "seu-lro-word",
            FaultClass::ClockGlitch => "clock-glitch",
            FaultClass::RoStageFailure => "ro-stage-fail",
        }
    }
}

/// One scheduled fault: a kind striking at period `at` for `duration`
/// periods (SEUs are instantaneous; RO stage failures are permanent — both
/// ignore `duration`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// First period index the fault is active.
    pub at: u64,
    /// Number of periods the fault stays active (minimum 1).
    pub duration: u64,
    /// What strikes.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether this event is active at period `n`.
    fn active_at(&self, n: u64) -> bool {
        match self.kind {
            // permanent from `at` on
            FaultKind::RoStageFailure { .. } => n >= self.at,
            // instantaneous
            FaultKind::SeuControlState { .. } | FaultKind::SeuLroWord { .. } => n == self.at,
            _ => n >= self.at && n - self.at < self.duration.max(1),
        }
    }
}

/// What a sensor replica experiences at one period (the engine-facing
/// reduction of the TDC fault kinds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Reading replaced by the stuck value.
    StuckAt(f64),
    /// No valid sample this period.
    Dropout,
    /// Reading offset by the given number of stages.
    Outlier(f64),
}

/// A deterministic injection schedule: plain data, queried per period.
///
/// Engines hold one schedule per simulated lane and ask, each period `n`,
/// which faults apply. An empty schedule answers every query with "nothing"
/// and engines keep their exact fault-free arithmetic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    sensors: usize,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule over `sensors` TDC replicas (`sensors` is the
    /// number of measurement copies the engine models; single-sensor
    /// engines pass 1).
    pub fn new(sensors: usize) -> Self {
        FaultSchedule {
            sensors: sensors.max(1),
            events: Vec::new(),
        }
    }

    /// Append an event; returns `self` for chaining. Events may be pushed
    /// in any order.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.push(event);
        self
    }

    /// Append an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Number of sensor replicas the schedule targets.
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether no faults are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The first TDC fault hitting `sensor` at period `n`, if any.
    pub fn sensor_fault(&self, n: u64, sensor: usize) -> Option<SensorFault> {
        self.events.iter().find_map(|e| {
            if !e.active_at(n) {
                return None;
            }
            match e.kind {
                FaultKind::TdcStuckAt { sensor: s, value } if s == sensor => {
                    Some(SensorFault::StuckAt(value))
                }
                FaultKind::TdcDropout { sensor: s } if s == sensor => Some(SensorFault::Dropout),
                FaultKind::TdcOutlier { sensor: s, offset } if s == sensor => {
                    Some(SensorFault::Outlier(offset))
                }
                _ => None,
            }
        })
    }

    /// Whether any TDC-class event targets any sensor anywhere in the
    /// schedule (lets engines skip the per-sensor loop entirely).
    pub fn has_sensor_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::TdcStuckAt { .. }
                    | FaultKind::TdcDropout { .. }
                    | FaultKind::TdcOutlier { .. }
            )
        })
    }

    /// Bits to flip in the controller state register at period `n`.
    pub fn seu_control_bits(&self, n: u64) -> impl Iterator<Item = u32> + '_ {
        self.events.iter().filter_map(move |e| match e.kind {
            FaultKind::SeuControlState { bit } if e.active_at(n) => Some(bit % SEU_BIT_SPAN),
            _ => None,
        })
    }

    /// Bits to flip in the latched `l_RO` word at period `n`.
    pub fn seu_lro_bits(&self, n: u64) -> impl Iterator<Item = u32> + '_ {
        self.events.iter().filter_map(move |e| match e.kind {
            FaultKind::SeuLroWord { bit } if e.active_at(n) => Some(bit % SEU_BIT_SPAN),
            _ => None,
        })
    }

    /// Total delivered-edge shrink (stages) from clock glitches active at
    /// period `n`.
    pub fn glitch(&self, n: u64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(n))
            .map(|e| match e.kind {
                FaultKind::ClockGlitch { stages } => stages,
                _ => 0.0,
            })
            .sum()
    }

    /// Cumulative RO stages lost to permanent failures by generation
    /// period `n`.
    pub fn ro_stage_loss(&self, n: u64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(n))
            .map(|e| match e.kind {
                FaultKind::RoStageFailure { stages } => stages,
                _ => 0.0,
            })
            .sum()
    }

    /// Number of events whose first active period is `n` (drives the
    /// `faults.injected` telemetry counter).
    pub fn injected_at(&self, n: u64) -> u64 {
        self.events.iter().filter(|e| e.at == n).count() as u64
    }

    /// Total events scheduled.
    pub fn injected_total(&self) -> u64 {
        self.events.len() as u64
    }

    /// Events whose first active period falls inside `[0, horizon)` — the
    /// injections a run of that many periods actually experiences.
    pub fn injected_before(&self, horizon: u64) -> u64 {
        self.events.iter().filter(|e| e.at < horizon).count() as u64
    }

    /// A stable, collision-safe textual encoding of the whole schedule.
    /// Result caches hash this alongside the run configuration, so faulted
    /// runs are addressed apart from clean ones and from each other. An
    /// empty schedule encodes as `"clean"`.
    pub fn canonical_id(&self) -> String {
        if self.events.is_empty() {
            return "clean".to_owned();
        }
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|e| format!("{}+{}:{}", e.at, e.duration, e.kind.canonical()))
            .collect();
        // Insertion order must not matter: two schedules with the same
        // events are the same schedule.
        parts.sort_unstable();
        format!("s{};{}", self.sensors, parts.join(";"))
    }

    /// A seed-reproducible random schedule of one fault class.
    ///
    /// Injection times follow a thinned Bernoulli process of about
    /// `rate_per_kperiod` events per 1000 periods with a class-dependent
    /// refractory spacing (so recovery windows never overlap and re-lock
    /// accounting stays unambiguous). Every parameter draw comes from a
    /// splitmix64 stream keyed by `seed`, making the schedule a pure
    /// function of its arguments.
    pub fn random(
        seed: u64,
        class: FaultClass,
        rate_per_kperiod: f64,
        horizon: u64,
        sensors: usize,
    ) -> Self {
        let sensors = sensors.max(1);
        let mut schedule = FaultSchedule::new(sensors);
        if rate_per_kperiod <= 0.0 || horizon == 0 {
            return schedule;
        }
        let mut rng = SplitMix64::new(seed ^ 0xFA01_7000 ^ (class.label().len() as u64) << 32);
        // hash the label bytes in, so classes with equal label length differ
        for b in class.label().bytes() {
            rng.mix(b as u64);
        }
        let threshold = (rate_per_kperiod / 1000.0).min(1.0);
        // refractory spacing: long enough for the loop to re-lock between
        // events of the class
        let spacing: u64 = match class {
            FaultClass::SeuControlState | FaultClass::SeuLroWord => 400,
            FaultClass::ClockGlitch => 64,
            FaultClass::RoStageFailure => 1500,
            _ => 350,
        };
        let mut n = spacing.min(64); // never strike before the loop settles
        let mut ro_loss_budget = 16.0f64;
        while n < horizon {
            if rng.f64() < threshold {
                let sensor = (rng.next() % sensors as u64) as usize;
                let (kind, duration) = match class {
                    FaultClass::TdcStuckAt => (
                        FaultKind::TdcStuckAt {
                            sensor,
                            // stuck dangerously low: 8–32 stages under any
                            // plausible reading
                            value: -(8.0 + (rng.next() % 25) as f64),
                        },
                        50 + rng.next() % 150,
                    ),
                    FaultClass::TdcDropout => {
                        (FaultKind::TdcDropout { sensor }, 50 + rng.next() % 250)
                    }
                    FaultClass::TdcOutlier => (
                        FaultKind::TdcOutlier {
                            sensor,
                            offset: -(8.0 + (rng.next() % 17) as f64),
                        },
                        1 + rng.next() % 3,
                    ),
                    // SEU campaigns mix uniform strikes with worst-case
                    // *armed-bit* strikes: flipping a bit that is set at the
                    // paper's operating point (c = 64 → `l_RO` word bit 6;
                    // filter state c·2^kexp = 512 → bit 9) upsets the value
                    // *downwards*, the direction that eats safety margin.
                    // The first strike of a schedule is always armed, so any
                    // non-empty schedule exercises the dangerous polarity.
                    FaultClass::SeuControlState => (
                        FaultKind::SeuControlState {
                            bit: if schedule.events.is_empty() || rng.next().is_multiple_of(3) {
                                9
                            } else {
                                10 + (rng.next() % 21) as u32
                            },
                        },
                        1,
                    ),
                    FaultClass::SeuLroWord => (
                        FaultKind::SeuLroWord {
                            bit: if schedule.events.is_empty() || rng.next().is_multiple_of(3) {
                                6
                            } else {
                                3 + (rng.next() % 18) as u32
                            },
                        },
                        1,
                    ),
                    FaultClass::ClockGlitch => (
                        FaultKind::ClockGlitch {
                            stages: 6.0 + (rng.next() % 11) as f64,
                        },
                        1,
                    ),
                    FaultClass::RoStageFailure => {
                        let stages = (4.0 + (rng.next() % 7) as f64).min(ro_loss_budget);
                        if stages <= 0.0 {
                            n += spacing;
                            continue;
                        }
                        ro_loss_budget -= stages;
                        (FaultKind::RoStageFailure { stages }, 1)
                    }
                };
                schedule.push(FaultEvent {
                    at: n,
                    duration,
                    kind,
                });
                n += spacing + duration;
            } else {
                n += 1;
            }
        }
        schedule
    }
}

/// A splitmix64 generator — the workspace's standard reproducible stream.
#[derive(Debug, Clone)]
struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { x: seed }
    }

    fn mix(&mut self, v: u64) {
        self.x ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn next(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_answers_nothing() {
        let s = FaultSchedule::new(3);
        assert!(s.is_empty());
        assert_eq!(s.sensors(), 3);
        assert_eq!(s.sensor_fault(10, 0), None);
        assert_eq!(s.seu_control_bits(10).count(), 0);
        assert_eq!(s.seu_lro_bits(10).count(), 0);
        assert_eq!(s.glitch(10), 0.0);
        assert_eq!(s.ro_stage_loss(10), 0.0);
        assert_eq!(s.injected_at(10), 0);
        assert_eq!(s.canonical_id(), "clean");
    }

    #[test]
    fn activation_windows_per_kind() {
        let s = FaultSchedule::new(2)
            .with(FaultEvent {
                at: 10,
                duration: 5,
                kind: FaultKind::TdcDropout { sensor: 1 },
            })
            .with(FaultEvent {
                at: 20,
                duration: 99, // ignored: instantaneous
                kind: FaultKind::SeuLroWord { bit: 4 },
            })
            .with(FaultEvent {
                at: 30,
                duration: 1, // ignored: permanent
                kind: FaultKind::RoStageFailure { stages: 3.0 },
            });
        // dropout window [10, 15)
        assert_eq!(s.sensor_fault(9, 1), None);
        assert_eq!(s.sensor_fault(10, 1), Some(SensorFault::Dropout));
        assert_eq!(s.sensor_fault(14, 1), Some(SensorFault::Dropout));
        assert_eq!(s.sensor_fault(15, 1), None);
        assert_eq!(s.sensor_fault(12, 0), None, "other sensor untouched");
        // SEU exactly at 20
        assert_eq!(s.seu_lro_bits(19).count(), 0);
        assert_eq!(s.seu_lro_bits(20).collect::<Vec<_>>(), vec![4]);
        assert_eq!(s.seu_lro_bits(21).count(), 0);
        // stage failure permanent from 30
        assert_eq!(s.ro_stage_loss(29), 0.0);
        assert_eq!(s.ro_stage_loss(30), 3.0);
        assert_eq!(s.ro_stage_loss(1_000_000), 3.0);
        assert_eq!(s.injected_total(), 3);
        assert_eq!(s.injected_at(20), 1);
    }

    #[test]
    fn glitches_sum_and_stuck_beats_later_events() {
        let s = FaultSchedule::new(1)
            .with(FaultEvent {
                at: 5,
                duration: 2,
                kind: FaultKind::ClockGlitch { stages: 7.0 },
            })
            .with(FaultEvent {
                at: 6,
                duration: 1,
                kind: FaultKind::ClockGlitch { stages: 4.0 },
            });
        assert_eq!(s.glitch(5), 7.0);
        assert_eq!(s.glitch(6), 11.0);
        assert_eq!(s.glitch(7), 0.0);
    }

    #[test]
    fn canonical_id_is_order_independent_and_distinct() {
        let a = FaultEvent {
            at: 3,
            duration: 2,
            kind: FaultKind::TdcOutlier {
                sensor: 0,
                offset: -9.0,
            },
        };
        let b = FaultEvent {
            at: 40,
            duration: 1,
            kind: FaultKind::SeuControlState { bit: 12 },
        };
        let ab = FaultSchedule::new(2).with(a).with(b);
        let ba = FaultSchedule::new(2).with(b).with(a);
        assert_eq!(ab.canonical_id(), ba.canonical_id());
        let other = FaultSchedule::new(2).with(a);
        assert_ne!(ab.canonical_id(), other.canonical_id());
        assert_ne!(ab.canonical_id(), "clean");
    }

    #[test]
    fn random_schedules_are_reproducible_and_seed_sensitive() {
        for class in FaultClass::ALL {
            let a = FaultSchedule::random(7, class, 4.0, 12_000, 3);
            let b = FaultSchedule::random(7, class, 4.0, 12_000, 3);
            assert_eq!(a, b, "{}: same seed must reproduce", class.label());
            assert!(
                !a.is_empty(),
                "{}: rate 4/kperiod must inject",
                class.label()
            );
            let c = FaultSchedule::random(8, class, 4.0, 12_000, 3);
            assert_ne!(
                a.canonical_id(),
                c.canonical_id(),
                "{}: different seed must differ",
                class.label()
            );
            for e in a.events() {
                assert!(e.at < 12_000);
                assert_eq!(e.kind.class(), class);
            }
        }
    }

    #[test]
    fn random_ro_failures_respect_the_loss_budget() {
        let s = FaultSchedule::random(3, FaultClass::RoStageFailure, 50.0, 200_000, 1);
        assert!(s.ro_stage_loss(200_000) <= 16.0, "cumulative loss capped");
    }

    #[test]
    fn random_events_respect_refractory_spacing() {
        let s = FaultSchedule::random(11, FaultClass::SeuLroWord, 20.0, 50_000, 1);
        let mut ats: Vec<u64> = s.events().iter().map(|e| e.at).collect();
        ats.sort_unstable();
        for w in ats.windows(2) {
            assert!(
                w[1] - w[0] >= 400,
                "spacing violated: {} then {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn seu_bits_are_bounded() {
        let s = FaultSchedule::new(1).with(FaultEvent {
            at: 0,
            duration: 1,
            kind: FaultKind::SeuControlState { bit: 1000 },
        });
        let bits: Vec<u32> = s.seu_control_bits(0).collect();
        assert_eq!(bits, vec![1000 % SEU_BIT_SPAN]);
    }
}
