//! Time-domain waveform generators for dynamic variations.
//!
//! A [`Waveform`] maps continuous time (in nominal stage delays) to a delay
//! variation (also in stage units): `ν(t)` in the paper's notation. Positive
//! values mean *slower* gates (more delay).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic delay-variation waveform `ν(t)`.
///
/// Implementors must be pure functions of `t` so that simulators may sample
/// them in any order (the event-driven engine does not advance uniformly).
pub trait Waveform {
    /// The variation at time `t` (stage units).
    fn value(&self, t: f64) -> f64;

    /// A bound `B ≥ sup_t |ν(t)|`, used for sizing worst-case safety
    /// margins. Implementations should return the tightest known bound.
    fn amplitude_bound(&self) -> f64;
}

impl<W: Waveform + ?Sized> Waveform for &W {
    fn value(&self, t: f64) -> f64 {
        (**self).value(t)
    }
    fn amplitude_bound(&self) -> f64 {
        (**self).amplitude_bound()
    }
}

impl<W: Waveform + ?Sized> Waveform for Box<W> {
    fn value(&self, t: f64) -> f64 {
        (**self).value(t)
    }
    fn amplitude_bound(&self) -> f64 {
        (**self).amplitude_bound()
    }
}

/// The zero waveform (no variation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoVariation;

impl Waveform for NoVariation {
    fn value(&self, _t: f64) -> f64 {
        0.0
    }
    fn amplitude_bound(&self) -> f64 {
        0.0
    }
}

/// A constant (static) offset — e.g. a die-to-die process shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantOffset {
    /// The offset value (stage units).
    pub offset: f64,
}

impl ConstantOffset {
    /// A static variation of the given size.
    pub fn new(offset: f64) -> Self {
        ConstantOffset { offset }
    }
}

impl Waveform for ConstantOffset {
    fn value(&self, _t: f64) -> f64 {
        self.offset
    }
    fn amplitude_bound(&self) -> f64 {
        self.offset.abs()
    }
}

/// Periodic homogeneous dynamic variation
/// `ν(t) = ν₀ sin(2π t / T_ν + φ)` (paper §II-A.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Harmonic {
    amplitude: f64,
    period: f64,
    phase: f64,
}

impl Harmonic {
    /// A sinusoidal variation of amplitude `ν₀`, period `T_ν` and phase `φ`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn new(amplitude: f64, period: f64, phase: f64) -> Self {
        assert!(period > 0.0, "harmonic period must be positive");
        Harmonic {
            amplitude,
            period,
            phase,
        }
    }

    /// The variation period `T_ν`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The amplitude `ν₀`.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

impl Waveform for Harmonic {
    fn value(&self, t: f64) -> f64 {
        self.amplitude * (std::f64::consts::TAU * t / self.period + self.phase).sin()
    }
    fn amplitude_bound(&self) -> f64 {
        self.amplitude.abs()
    }
}

/// Single-event homogeneous dynamic variation: a triangular droop of
/// duration `T_ν` and peak `ν₀` (paper §II-A.2, "a fast voltage drop along
/// the whole die, assuming a triangular shape").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleEvent {
    amplitude: f64,
    duration: f64,
    start: f64,
}

impl SingleEvent {
    /// A triangular event peaking at `amplitude`, lasting `duration`,
    /// beginning at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn new(amplitude: f64, duration: f64, start: f64) -> Self {
        assert!(duration > 0.0, "event duration must be positive");
        SingleEvent {
            amplitude,
            duration,
            start,
        }
    }

    /// Event duration `T_ν`.
    pub fn duration(&self) -> f64 {
        self.duration
    }
}

impl Waveform for SingleEvent {
    fn value(&self, t: f64) -> f64 {
        let x = (t - self.start) / self.duration;
        if !(0.0..=1.0).contains(&x) {
            0.0
        } else {
            self.amplitude * (1.0 - (2.0 * x - 1.0).abs())
        }
    }
    fn amplitude_bound(&self) -> f64 {
        self.amplitude.abs()
    }
}

/// A step change at a given time (e.g. a workload-induced supply shift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepVariation {
    /// Value before `at`.
    pub before: f64,
    /// Value at and after `at`.
    pub after: f64,
    /// Switching time.
    pub at: f64,
}

impl StepVariation {
    /// A step from `before` to `after` at time `at`.
    pub fn new(before: f64, after: f64, at: f64) -> Self {
        StepVariation { before, after, at }
    }
}

impl Waveform for StepVariation {
    fn value(&self, t: f64) -> f64 {
        if t >= self.at {
            self.after
        } else {
            self.before
        }
    }
    fn amplitude_bound(&self) -> f64 {
        self.before.abs().max(self.after.abs())
    }
}

/// A slow linear drift, clamped at `limit` — a first-order aging model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingDrift {
    rate: f64,
    limit: f64,
}

impl AgingDrift {
    /// Drift at `rate` (stage units per time unit) saturating at `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` and `limit` have different signs (the drift would
    /// never reach its limit).
    pub fn new(rate: f64, limit: f64) -> Self {
        assert!(
            rate * limit >= 0.0,
            "drift rate and limit must share a sign"
        );
        AgingDrift { rate, limit }
    }
}

impl Waveform for AgingDrift {
    fn value(&self, t: f64) -> f64 {
        let v = self.rate * t.max(0.0);
        if self.limit >= 0.0 {
            v.min(self.limit)
        } else {
            v.max(self.limit)
        }
    }
    fn amplitude_bound(&self) -> f64 {
        self.limit.abs()
    }
}

/// Band-limited noise: a seeded random walk smoothed by a single-pole
/// filter, pre-generated on a uniform grid and linearly interpolated.
///
/// Models supply noise with energy concentrated below a corner frequency.
/// Fully deterministic given the seed.
#[derive(Debug, Clone)]
pub struct FilteredNoise {
    samples: Vec<f64>,
    dt: f64,
    bound: f64,
}

impl FilteredNoise {
    /// Generate noise over `[0, duration]` on a grid of spacing `dt`,
    /// low-pass filtered with smoothing factor `alpha ∈ (0, 1]` (smaller =
    /// smoother), scaled to peak amplitude `amplitude`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `duration <= 0` or `alpha` outside `(0, 1]`.
    pub fn new(seed: u64, amplitude: f64, alpha: f64, duration: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "grid spacing must be positive");
        assert!(duration > 0.0, "duration must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let n = (duration / dt).ceil() as usize + 2;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut state = 0.0f64;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let white: f64 = rng.gen_range(-1.0..1.0);
            state += alpha * (white - state);
            samples.push(state);
        }
        let peak = samples
            .iter()
            .map(|s| s.abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        for s in &mut samples {
            *s *= amplitude / peak;
        }
        FilteredNoise {
            samples,
            dt,
            bound: amplitude.abs(),
        }
    }
}

impl Waveform for FilteredNoise {
    fn value(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.samples[0];
        }
        let x = t / self.dt;
        let i = x.floor() as usize;
        if i + 1 >= self.samples.len() {
            return *self.samples.last().expect("samples nonempty");
        }
        let frac = x - i as f64;
        self.samples[i] + frac * (self.samples[i + 1] - self.samples[i])
    }
    fn amplitude_bound(&self) -> f64 {
        self.bound
    }
}

/// Sum of component waveforms.
#[derive(Default)]
pub struct Composite {
    parts: Vec<Box<dyn Waveform + Send + Sync>>,
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl Composite {
    /// An empty composite (equal to [`NoVariation`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, w: impl Waveform + Send + Sync + 'static) -> Self {
        self.parts.push(Box::new(w));
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no components are present.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Waveform for Composite {
    fn value(&self, t: f64) -> f64 {
        self.parts.iter().map(|p| p.value(t)).sum()
    }
    fn amplitude_bound(&self) -> f64 {
        self.parts.iter().map(|p| p.amplitude_bound()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_matches_definition() {
        let h = Harmonic::new(2.0, 8.0, 0.0);
        assert!((h.value(0.0)).abs() < 1e-12);
        assert!((h.value(2.0) - 2.0).abs() < 1e-12);
        assert!((h.value(6.0) + 2.0).abs() < 1e-12);
        assert_eq!(h.amplitude_bound(), 2.0);
        assert_eq!(h.period(), 8.0);
    }

    #[test]
    fn single_event_triangle() {
        let e = SingleEvent::new(4.0, 10.0, 100.0);
        assert_eq!(e.value(99.0), 0.0);
        assert_eq!(e.value(100.0), 0.0);
        assert!((e.value(105.0) - 4.0).abs() < 1e-12);
        assert!((e.value(102.5) - 2.0).abs() < 1e-12);
        assert_eq!(e.value(111.0), 0.0);
    }

    #[test]
    fn step_and_constant() {
        let s = StepVariation::new(-1.0, 3.0, 5.0);
        assert_eq!(s.value(4.9), -1.0);
        assert_eq!(s.value(5.0), 3.0);
        assert_eq!(s.amplitude_bound(), 3.0);
        let c = ConstantOffset::new(-2.0);
        assert_eq!(c.value(123.0), -2.0);
        assert_eq!(c.amplitude_bound(), 2.0);
    }

    #[test]
    fn aging_saturates() {
        let a = AgingDrift::new(0.1, 5.0);
        assert_eq!(a.value(-10.0), 0.0);
        assert!((a.value(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(a.value(1000.0), 5.0);
        let neg = AgingDrift::new(-0.1, -5.0);
        assert_eq!(neg.value(1000.0), -5.0);
    }

    #[test]
    #[should_panic(expected = "share a sign")]
    fn aging_rejects_mixed_signs() {
        let _ = AgingDrift::new(0.1, -5.0);
    }

    #[test]
    fn filtered_noise_is_deterministic_and_bounded() {
        let n1 = FilteredNoise::new(42, 3.0, 0.2, 100.0, 1.0);
        let n2 = FilteredNoise::new(42, 3.0, 0.2, 100.0, 1.0);
        let n3 = FilteredNoise::new(43, 3.0, 0.2, 100.0, 1.0);
        let mut differs = false;
        let mut peak = 0.0f64;
        for k in 0..200 {
            let t = k as f64 * 0.5;
            assert_eq!(n1.value(t), n2.value(t));
            if (n1.value(t) - n3.value(t)).abs() > 1e-9 {
                differs = true;
            }
            peak = peak.max(n1.value(t).abs());
            assert!(n1.value(t).abs() <= 3.0 + 1e-9);
        }
        assert!(differs, "different seeds must differ");
        assert!(peak > 1.0, "noise should actually move");
    }

    #[test]
    fn filtered_noise_interpolates_and_clamps_ends() {
        let n = FilteredNoise::new(7, 1.0, 0.5, 10.0, 1.0);
        let mid = n.value(3.5);
        let a = n.value(3.0);
        let b = n.value(4.0);
        assert!((mid - 0.5 * (a + b)).abs() < 1e-12);
        // beyond the grid: clamps to endpoints rather than panicking
        let _ = n.value(-5.0);
        let _ = n.value(1e6);
    }

    #[test]
    fn composite_sums_components() {
        let c = Composite::new()
            .with(ConstantOffset::new(1.0))
            .with(Harmonic::new(2.0, 8.0, 0.0));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!((c.value(2.0) - 3.0).abs() < 1e-12);
        assert_eq!(c.amplitude_bound(), 3.0);
        assert_eq!(Composite::new().value(5.0), 0.0);
    }

    #[test]
    fn waveform_is_object_safe_and_ref_forwarded() {
        let h = Harmonic::new(1.0, 4.0, 0.0);
        let via_ref: &dyn Waveform = &h;
        assert_eq!(via_ref.value(1.0), h.value(1.0));
        let boxed: Box<dyn Waveform> = Box::new(h);
        assert_eq!(boxed.value(1.0), h.value(1.0));
        assert_eq!(boxed.amplitude_bound(), 1.0);
    }
}
