//! Mismatch theory of the paper's §II: the clock-distribution delay turns a
//! homogeneous dynamic variation into an *induced heterogeneous* mismatch
//! between the ring oscillator and the critical paths.
//!
//! * Eq. (1): `Δν(t, t_clk) = ν(t) − ν(t − t_clk)`
//! * Eq. (2): worst case for a harmonic HoDV:
//!   `Δν_wc = 2ν₀ |sin(π t_clk / T_ν)|`
//! * Eq. (3): worst case for a triangular single event:
//!   `Δν_wc = 2ν₀ t_clk/T_ν` for `t_clk/T_ν ≤ 1/2`, else `ν₀`.

use crate::sources::Waveform;

/// Eq. (1): the mismatch induced at time `t` by a CDN delay `t_clk` under
/// the waveform `ν`.
pub fn induced_mismatch<W: Waveform + ?Sized>(nu: &W, t: f64, t_clk: f64) -> f64 {
    nu.value(t) - nu.value(t - t_clk)
}

/// Eq. (2): worst-case induced mismatch for a harmonic HoDV of amplitude
/// `nu0` and period `t_nu`, given CDN delay `t_clk`.
///
/// # Panics
///
/// Panics if `t_nu <= 0`.
pub fn harmonic_worst_case(nu0: f64, t_clk: f64, t_nu: f64) -> f64 {
    assert!(t_nu > 0.0, "variation period must be positive");
    2.0 * nu0.abs() * (std::f64::consts::PI * t_clk / t_nu).sin().abs()
}

/// Eq. (3): worst-case induced mismatch for a triangular single-event HoDV
/// of amplitude `nu0` and duration `t_nu`, given CDN delay `t_clk`.
///
/// # Panics
///
/// Panics if `t_nu <= 0` or `t_clk < 0`.
pub fn single_event_worst_case(nu0: f64, t_clk: f64, t_nu: f64) -> f64 {
    assert!(t_nu > 0.0, "event duration must be positive");
    assert!(t_clk >= 0.0, "CDN delay cannot be negative");
    let ratio = t_clk / t_nu;
    if ratio <= 0.5 {
        2.0 * nu0.abs() * ratio
    } else {
        nu0.abs()
    }
}

/// Empirical worst case of Eq. (1): sweep `t` over `[t_start, t_end]` with
/// step `dt` and return `max |Δν(t, t_clk)|`.
///
/// # Panics
///
/// Panics if `dt <= 0` or the interval is empty.
pub fn empirical_worst_case<W: Waveform + ?Sized>(
    nu: &W,
    t_clk: f64,
    t_start: f64,
    t_end: f64,
    dt: f64,
) -> f64 {
    assert!(dt > 0.0, "sweep step must be positive");
    assert!(t_end > t_start, "sweep interval must be non-empty");
    let n = ((t_end - t_start) / dt).ceil() as usize;
    (0..=n)
        .map(|k| induced_mismatch(nu, t_start + k as f64 * dt, t_clk).abs())
        .fold(0.0, f64::max)
}

/// Whether a harmonic HoDV mismatch is *reduced* by the adaptive clock,
/// i.e. the worst induced mismatch stays below the bare variation amplitude
/// `ν₀`. Per the paper this holds in the islands
/// `t_clk < T_ν/6` or `(n − 1/6) T_ν < t_clk < (n + 1/6) T_ν`, `n ≥ 1`.
pub fn harmonic_reduces_margin(t_clk: f64, t_nu: f64) -> bool {
    harmonic_worst_case(1.0, t_clk, t_nu) < 1.0
}

/// The paper's island boundaries written explicitly: true iff
/// `t_clk/T_ν` lies within `1/6` of an integer.
pub fn harmonic_island_condition(t_clk: f64, t_nu: f64) -> bool {
    assert!(t_nu > 0.0, "variation period must be positive");
    let x = (t_clk / t_nu).abs();
    let frac_dist = (x - x.round()).abs();
    frac_dist < 1.0 / 6.0
}

/// One point of the paper's Fig. 2: normalized worst-case mismatch
/// `Δν/ν₀` for both HoDV shapes at abscissa `x = t_clk/T_ν`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// The abscissa `t_clk / T_ν`.
    pub x: f64,
    /// Harmonic curve value `2|sin(πx)|`.
    pub harmonic: f64,
    /// Single-event curve value `min(2x, 1)`.
    pub single_event: f64,
}

/// Sample Fig. 2 over `x ∈ [0, x_max]` with `n` points (inclusive ends).
///
/// # Panics
///
/// Panics if `n < 2` or `x_max <= 0`.
pub fn fig2_series(x_max: f64, n: usize) -> Vec<Fig2Point> {
    assert!(n >= 2, "need at least two points");
    assert!(x_max > 0.0, "x_max must be positive");
    (0..n)
        .map(|k| {
            let x = x_max * k as f64 / (n - 1) as f64;
            Fig2Point {
                x,
                harmonic: harmonic_worst_case(1.0, x, 1.0),
                single_event: single_event_worst_case(1.0, x, 1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{Harmonic, SingleEvent};
    use proptest::prelude::*;

    #[test]
    fn eq1_matches_direct_subtraction() {
        let h = Harmonic::new(1.5, 10.0, 0.3);
        let d = induced_mismatch(&h, 7.0, 2.0);
        assert!((d - (h.value(7.0) - h.value(5.0))).abs() < 1e-12);
    }

    #[test]
    fn eq2_zero_mismatch_islands() {
        // At t_clk equal to integer multiples of the period, mismatch is 0.
        for n in 0..4 {
            let wc = harmonic_worst_case(1.0, n as f64 * 5.0, 5.0);
            assert!(wc.abs() < 1e-12, "n={n}: {wc}");
        }
        // At half-period, mismatch peaks at 2ν₀.
        assert!((harmonic_worst_case(3.0, 2.5, 5.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn eq2_boundary_at_one_sixth() {
        // At exactly t_clk = T/6 the worst mismatch equals ν₀.
        let wc = harmonic_worst_case(1.0, 1.0 / 6.0, 1.0);
        assert!((wc - 1.0).abs() < 1e-12);
        assert!(harmonic_reduces_margin(0.16, 1.0));
        assert!(!harmonic_reduces_margin(0.17, 1.0));
        // ... and around n=1: (1 ± 1/6)
        assert!(harmonic_reduces_margin(0.9, 1.0));
        assert!(!harmonic_reduces_margin(0.75, 1.0));
    }

    #[test]
    fn island_condition_equals_margin_reduction() {
        for k in 0..400 {
            let x = k as f64 * 0.01 + 0.001;
            assert_eq!(
                harmonic_island_condition(x, 1.0),
                harmonic_reduces_margin(x, 1.0),
                "x = {x}"
            );
        }
    }

    #[test]
    fn eq3_linear_then_saturated() {
        assert_eq!(single_event_worst_case(2.0, 0.0, 8.0), 0.0);
        assert!((single_event_worst_case(2.0, 2.0, 8.0) - 1.0).abs() < 1e-12);
        assert!((single_event_worst_case(2.0, 4.0, 8.0) - 2.0).abs() < 1e-12);
        // saturation past half the duration
        assert!((single_event_worst_case(2.0, 6.0, 8.0) - 2.0).abs() < 1e-12);
        assert!((single_event_worst_case(2.0, 100.0, 8.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_harmonic_matches_eq2() {
        let nu0 = 1.7;
        let t_nu = 40.0;
        let h = Harmonic::new(nu0, t_nu, 0.0);
        for &t_clk in &[1.0, 5.0, 10.0, 20.0, 35.0, 60.0] {
            let analytic = harmonic_worst_case(nu0, t_clk, t_nu);
            let empirical = empirical_worst_case(&h, t_clk, 0.0, 400.0, 0.05);
            assert!(
                (analytic - empirical).abs() < 0.01 * nu0,
                "t_clk={t_clk}: analytic {analytic}, empirical {empirical}"
            );
        }
    }

    #[test]
    fn empirical_single_event_matches_eq3() {
        let nu0 = 2.0;
        let t_nu = 50.0;
        let e = SingleEvent::new(nu0, t_nu, 100.0);
        for &t_clk in &[2.0, 10.0, 25.0, 40.0, 80.0] {
            let analytic = single_event_worst_case(nu0, t_clk, t_nu);
            let empirical = empirical_worst_case(&e, t_clk, 0.0, 400.0, 0.05);
            assert!(
                (analytic - empirical).abs() < 0.02 * nu0,
                "t_clk={t_clk}: analytic {analytic}, empirical {empirical}"
            );
        }
    }

    #[test]
    fn fig2_series_shape() {
        let pts = fig2_series(4.0, 401);
        assert_eq!(pts.len(), 401);
        // harmonic peaks at 2, single event saturates at 1
        let hmax = pts.iter().map(|p| p.harmonic).fold(0.0, f64::max);
        let smax = pts.iter().map(|p| p.single_event).fold(0.0, f64::max);
        assert!((hmax - 2.0).abs() < 1e-6);
        assert!((smax - 1.0).abs() < 1e-12);
        // zero-mismatch islands at integer x for the harmonic curve
        for p in pts.iter().filter(|p| (p.x - p.x.round()).abs() < 1e-9) {
            assert!(p.harmonic.abs() < 1e-9, "x={} h={}", p.x, p.harmonic);
        }
        // single-event curve never decreases
        for w in pts.windows(2) {
            assert!(w[1].single_event >= w[0].single_event - 1e-12);
        }
    }

    proptest! {
        /// Eq. (2) is an upper bound on Eq. (1) for all t.
        #[test]
        fn harmonic_bound_holds(
            t in 0.0f64..1000.0,
            t_clk in 0.0f64..100.0,
            period in 1.0f64..200.0,
            phase in 0.0f64..std::f64::consts::TAU,
        ) {
            let h = Harmonic::new(1.0, period, phase);
            let d = induced_mismatch(&h, t, t_clk).abs();
            let wc = harmonic_worst_case(1.0, t_clk, period);
            prop_assert!(d <= wc + 1e-9, "d={d}, wc={wc}");
        }

        /// Eq. (3) is an upper bound on Eq. (1) for the triangular event.
        #[test]
        fn single_event_bound_holds(
            t in -50.0f64..1050.0,
            t_clk in 0.0f64..500.0,
            duration in 1.0f64..300.0,
        ) {
            let e = SingleEvent::new(1.0, duration, 100.0);
            let d = induced_mismatch(&e, t, t_clk).abs();
            let wc = single_event_worst_case(1.0, t_clk, duration);
            prop_assert!(d <= wc + 1e-9, "d={d}, wc={wc}");
        }
    }
}
