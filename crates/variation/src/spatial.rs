//! Heterogeneous (per-location) variation fields.
//!
//! The paper's closed-loop architecture disseminates TDC sensors over the
//! clock domain precisely because variations differ from place to place.
//! A [`SpatialField`] assigns each sensor location a *static* offset and an
//! optional *dynamic* waveform, modelling WID process variation, IR-drop
//! profiles, and temperature hotspots.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::sources::Waveform;

/// A sensor location in normalized die coordinates (`[0, 1] × [0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Position {
    /// A position; coordinates are clamped into the unit square.
    pub fn new(x: f64, y: f64) -> Self {
        Position {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// A `n`-point grid layout covering the die (row-major, roughly square).
    pub fn grid(n: usize) -> Vec<Position> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![Position::new(0.5, 0.5)];
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        (0..n)
            .map(|i| {
                let r = i / cols;
                let c = i % cols;
                Position::new(
                    (c as f64 + 0.5) / cols as f64,
                    (r as f64 + 0.5) / rows.max(1) as f64,
                )
            })
            .collect()
    }
}

/// A static spatial profile: maps a position to a delay offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Profile {
    /// The same offset everywhere (degenerates to a homogeneous variation).
    Uniform {
        /// Offset applied at every position.
        offset: f64,
    },
    /// Linear gradient across the die along a direction.
    Gradient {
        /// Offset at the die center.
        center_offset: f64,
        /// Change per unit distance along x.
        slope_x: f64,
        /// Change per unit distance along y.
        slope_y: f64,
    },
    /// Gaussian hotspot (e.g. a temperature peak over a busy core).
    Hotspot {
        /// Hotspot center.
        center: Position,
        /// Peak extra delay at the center.
        peak: f64,
        /// Gaussian radius (standard deviation) in die units.
        radius: f64,
    },
}

impl Profile {
    /// Evaluate the profile at a position.
    pub fn offset_at(&self, p: Position) -> f64 {
        match *self {
            Profile::Uniform { offset } => offset,
            Profile::Gradient {
                center_offset,
                slope_x,
                slope_y,
            } => center_offset + slope_x * (p.x - 0.5) + slope_y * (p.y - 0.5),
            Profile::Hotspot {
                center,
                peak,
                radius,
            } => {
                let d = p.distance(&center);
                peak * (-0.5 * (d / radius).powi(2)).exp()
            }
        }
    }
}

/// A *moving* hotspot: a Gaussian thermal peak whose center migrates
/// between waypoints on a fixed period — the canonical dynamic
/// heterogeneous variation (a workload hopping between cores).
///
/// The center moves along the closed polyline of `waypoints`, completing
/// one lap every `period` time units, with linear interpolation between
/// waypoints.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingHotspot {
    waypoints: Vec<Position>,
    period: f64,
    peak: f64,
    radius: f64,
}

impl MovingHotspot {
    /// A migrating hotspot.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 waypoints are given, or `period`/`radius`
    /// are not positive.
    pub fn new(waypoints: Vec<Position>, period: f64, peak: f64, radius: f64) -> Self {
        assert!(waypoints.len() >= 2, "need at least two waypoints");
        assert!(period > 0.0, "migration period must be positive");
        assert!(radius > 0.0, "hotspot radius must be positive");
        MovingHotspot {
            waypoints,
            period,
            peak,
            radius,
        }
    }

    /// The hotspot center at time `t`.
    pub fn center_at(&self, t: f64) -> Position {
        let n = self.waypoints.len();
        let lap = (t / self.period).rem_euclid(1.0);
        let x = lap * n as f64;
        let i = (x.floor() as usize) % n;
        let j = (i + 1) % n;
        let frac = x - x.floor();
        let a = self.waypoints[i];
        let b = self.waypoints[j];
        Position::new(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
    }

    /// The extra delay this hotspot induces at position `p`, time `t`.
    pub fn value_at(&self, p: Position, t: f64) -> f64 {
        let d = p.distance(&self.center_at(t));
        self.peak * (-0.5 * (d / self.radius).powi(2)).exp()
    }

    /// A per-position [`Waveform`] view of this hotspot, usable as a
    /// sensor's dynamic mismatch (negate `peak` for "slower gates read
    /// fewer stages" conventions as needed).
    pub fn at_position(&self, p: Position) -> MovingHotspotAt {
        MovingHotspotAt {
            hotspot: self.clone(),
            position: p,
        }
    }
}

/// A [`MovingHotspot`] observed from one fixed position.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingHotspotAt {
    hotspot: MovingHotspot,
    position: Position,
}

impl Waveform for MovingHotspotAt {
    fn value(&self, t: f64) -> f64 {
        self.hotspot.value_at(self.position, t)
    }
    fn amplitude_bound(&self) -> f64 {
        self.hotspot.peak.abs()
    }
}

/// A spatial variation field: a sum of static profiles, optional seeded
/// per-position randomness, and an optional shared dynamic waveform scaled
/// per position.
pub struct SpatialField {
    profiles: Vec<Profile>,
    random_sigma: f64,
    seed: u64,
    dynamic: Option<Box<dyn Waveform + Send + Sync>>,
}

impl std::fmt::Debug for SpatialField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialField")
            .field("profiles", &self.profiles)
            .field("random_sigma", &self.random_sigma)
            .field("seed", &self.seed)
            .field("has_dynamic", &self.dynamic.is_some())
            .finish()
    }
}

impl Default for SpatialField {
    fn default() -> Self {
        Self::new()
    }
}

impl SpatialField {
    /// An empty field (zero offset everywhere).
    pub fn new() -> Self {
        SpatialField {
            profiles: Vec::new(),
            random_sigma: 0.0,
            seed: 0,
            dynamic: None,
        }
    }

    /// Add a static profile; returns `self` for chaining.
    #[must_use]
    pub fn with_profile(mut self, p: Profile) -> Self {
        self.profiles.push(p);
        self
    }

    /// Add seeded per-position Gaussian-ish randomness of the given sigma
    /// (models device-to-device random variation). Deterministic per
    /// position for a fixed seed.
    #[must_use]
    pub fn with_randomness(mut self, sigma: f64, seed: u64) -> Self {
        self.random_sigma = sigma;
        self.seed = seed;
        self
    }

    /// Add a dynamic waveform shared by all positions (its local amplitude
    /// is scaled by the *static* field value through `scale`; pass a
    /// uniform profile first if a flat dynamic term is wanted).
    #[must_use]
    pub fn with_dynamic(mut self, w: impl Waveform + Send + Sync + 'static) -> Self {
        self.dynamic = Some(Box::new(w));
        self
    }

    fn random_component(&self, p: Position) -> f64 {
        if self.random_sigma == 0.0 {
            return 0.0;
        }
        // Hash the position into a per-site seed; quantize to avoid float
        // identity issues.
        let qx = (p.x * 1e6).round() as u64;
        let qy = (p.y * 1e6).round() as u64;
        let site_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(qx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(qy.wrapping_mul(0x94D0_49BB_1331_11EB));
        let mut rng = ChaCha8Rng::seed_from_u64(site_seed);
        // Sum of uniforms ~ approximately normal (Irwin–Hall with n=12).
        let s: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
        s * self.random_sigma
    }

    /// Static offset at a position (profiles + randomness; no dynamics).
    pub fn static_offset(&self, p: Position) -> f64 {
        self.profiles.iter().map(|pr| pr.offset_at(p)).sum::<f64>() + self.random_component(p)
    }

    /// Total variation at a position and time.
    pub fn value_at(&self, p: Position, t: f64) -> f64 {
        let d = self.dynamic.as_ref().map_or(0.0, |w| w.value(t));
        self.static_offset(p) + d
    }

    /// Materialize static offsets for a set of sensor positions.
    pub fn sample_offsets(&self, positions: &[Position]) -> Vec<f64> {
        positions.iter().map(|&p| self.static_offset(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::Harmonic;

    #[test]
    fn grid_covers_unit_square() {
        let g = Position::grid(9);
        assert_eq!(g.len(), 9);
        for p in &g {
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
        // distinct positions
        for (i, a) in g.iter().enumerate() {
            for b in &g[i + 1..] {
                assert!(a.distance(b) > 1e-6);
            }
        }
        assert!(Position::grid(0).is_empty());
        assert_eq!(Position::grid(1), vec![Position::new(0.5, 0.5)]);
    }

    #[test]
    fn uniform_profile_is_flat() {
        let f = SpatialField::new().with_profile(Profile::Uniform { offset: 2.0 });
        for p in Position::grid(5) {
            assert_eq!(f.static_offset(p), 2.0);
        }
    }

    #[test]
    fn gradient_profile_tilts() {
        let pr = Profile::Gradient {
            center_offset: 1.0,
            slope_x: 2.0,
            slope_y: 0.0,
        };
        assert!((pr.offset_at(Position::new(0.5, 0.5)) - 1.0).abs() < 1e-12);
        assert!((pr.offset_at(Position::new(1.0, 0.5)) - 2.0).abs() < 1e-12);
        assert!((pr.offset_at(Position::new(0.0, 0.5)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_decays_with_distance() {
        let pr = Profile::Hotspot {
            center: Position::new(0.5, 0.5),
            peak: 4.0,
            radius: 0.1,
        };
        let at_center = pr.offset_at(Position::new(0.5, 0.5));
        let near = pr.offset_at(Position::new(0.55, 0.5));
        let far = pr.offset_at(Position::new(0.9, 0.5));
        assert!((at_center - 4.0).abs() < 1e-12);
        assert!(near < at_center && near > far);
        assert!(far < 0.01);
    }

    #[test]
    fn randomness_is_deterministic_per_seed() {
        let f1 = SpatialField::new().with_randomness(1.0, 99);
        let f2 = SpatialField::new().with_randomness(1.0, 99);
        let f3 = SpatialField::new().with_randomness(1.0, 100);
        let pts = Position::grid(16);
        let o1 = f1.sample_offsets(&pts);
        let o2 = f2.sample_offsets(&pts);
        let o3 = f3.sample_offsets(&pts);
        assert_eq!(o1, o2);
        assert_ne!(o1, o3);
        // nonzero spread
        let spread = o1.iter().cloned().fold(f64::MIN, f64::max)
            - o1.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.1);
    }

    #[test]
    fn dynamic_component_added_uniformly() {
        let f = SpatialField::new()
            .with_profile(Profile::Uniform { offset: 1.0 })
            .with_dynamic(Harmonic::new(2.0, 8.0, 0.0));
        let p = Position::new(0.3, 0.7);
        assert!((f.value_at(p, 0.0) - 1.0).abs() < 1e-12);
        assert!((f.value_at(p, 2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_hotspot_visits_waypoints_in_order() {
        let hs = MovingHotspot::new(
            vec![Position::new(0.0, 0.0), Position::new(1.0, 0.0)],
            10.0,
            4.0,
            0.1,
        );
        let c0 = hs.center_at(0.0);
        assert!((c0.x - 0.0).abs() < 1e-12);
        let c_quarter = hs.center_at(2.5);
        assert!((c_quarter.x - 0.5).abs() < 1e-12, "x = {}", c_quarter.x);
        let c_half = hs.center_at(5.0);
        assert!((c_half.x - 1.0).abs() < 1e-12);
        // second half returns along the closing segment
        let c_three_quarter = hs.center_at(7.5);
        assert!((c_three_quarter.x - 0.5).abs() < 1e-12);
        // periodicity
        let c_lap = hs.center_at(12.5);
        assert!((c_lap.x - hs.center_at(2.5).x).abs() < 1e-12);
    }

    #[test]
    fn moving_hotspot_waveform_peaks_when_overhead() {
        let hs = MovingHotspot::new(
            vec![Position::new(0.0, 0.5), Position::new(1.0, 0.5)],
            100.0,
            -6.0, // slows gates under it
            0.15,
        );
        let sensor = hs.at_position(Position::new(1.0, 0.5));
        // hotspot overhead at t = 50 (half lap)
        assert!((sensor.value(50.0) + 6.0).abs() < 1e-9);
        // far away at t = 0
        assert!(sensor.value(0.0).abs() < 0.01);
        assert_eq!(sensor.amplitude_bound(), 6.0);
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn moving_hotspot_needs_waypoints() {
        let _ = MovingHotspot::new(vec![Position::new(0.5, 0.5)], 10.0, 1.0, 0.1);
    }

    #[test]
    fn profiles_sum() {
        let f = SpatialField::new()
            .with_profile(Profile::Uniform { offset: 1.0 })
            .with_profile(Profile::Uniform { offset: -3.0 });
        assert_eq!(f.static_offset(Position::new(0.1, 0.1)), -2.0);
    }
}
