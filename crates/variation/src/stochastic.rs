//! Stochastic variation processes beyond filtered noise: SSN burst trains
//! and an Ornstein–Uhlenbeck temperature model. Both are pre-sampled on a
//! grid at construction from a seed, so [`Waveform::value`] stays a pure
//! function of time (the simulators may sample in any order).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::sources::{SingleEvent, Waveform};

/// Simultaneous-switching-noise model: a Poisson-ish train of triangular
/// droop events (each shaped like the paper's single-event HoDV) with
/// randomized amplitudes and durations.
#[derive(Debug, Clone)]
pub struct SsnBursts {
    events: Vec<SingleEvent>,
}

/// Configuration for [`SsnBursts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsnConfig {
    /// Mean inter-arrival time between bursts (stage units).
    pub mean_gap: f64,
    /// Peak amplitude range `[lo, hi]` (stage units).
    pub amplitude: (f64, f64),
    /// Duration range `[lo, hi]` (stage units).
    pub duration: (f64, f64),
    /// Horizon to populate (stage units).
    pub horizon: f64,
}

impl SsnBursts {
    /// Generate a deterministic burst train from a seed.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted, or `mean_gap`/`horizon` are not
    /// positive.
    pub fn new(seed: u64, config: SsnConfig) -> Self {
        assert!(config.mean_gap > 0.0, "mean gap must be positive");
        assert!(config.horizon > 0.0, "horizon must be positive");
        assert!(
            config.amplitude.0 <= config.amplitude.1,
            "amplitude range inverted"
        );
        assert!(
            config.duration.0 <= config.duration.1 && config.duration.0 > 0.0,
            "duration range invalid"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        while t < config.horizon {
            // exponential inter-arrival via inverse transform
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -config.mean_gap * u.ln();
            if t >= config.horizon {
                break;
            }
            let amp = if config.amplitude.0 == config.amplitude.1 {
                config.amplitude.0
            } else {
                rng.gen_range(config.amplitude.0..config.amplitude.1)
            };
            let dur = if config.duration.0 == config.duration.1 {
                config.duration.0
            } else {
                rng.gen_range(config.duration.0..config.duration.1)
            };
            events.push(SingleEvent::new(amp, dur, t));
        }
        SsnBursts { events }
    }

    /// Number of bursts generated within the horizon.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no bursts were generated.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Waveform for SsnBursts {
    fn value(&self, t: f64) -> f64 {
        // bursts may overlap: sum their contributions
        self.events.iter().map(|e| e.value(t)).sum()
    }
    fn amplitude_bound(&self) -> f64 {
        // overlapping bursts can stack; bound by the sum of the two largest
        // is enough in practice, but stay strictly conservative:
        self.events.iter().map(|e| e.amplitude_bound()).sum()
    }
}

/// Ornstein–Uhlenbeck temperature drift: mean-reverting noise with time
/// constant `tau` and stationary standard deviation `sigma`, sampled on a
/// grid and linearly interpolated.
#[derive(Debug, Clone)]
pub struct OuProcess {
    samples: Vec<f64>,
    dt: f64,
    sigma: f64,
}

impl OuProcess {
    /// Generate an OU path over `[0, horizon]` with grid spacing `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `tau`, `sigma`, `dt` or `horizon` are not positive.
    pub fn new(seed: u64, sigma: f64, tau: f64, horizon: f64, dt: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(tau > 0.0, "time constant must be positive");
        assert!(dt > 0.0, "grid spacing must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        let n = (horizon / dt).ceil() as usize + 2;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let alpha = (-dt / tau).exp();
        let noise_scale = sigma * (1.0 - alpha * alpha).sqrt();
        let mut x = 0.0f64;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(x);
            // sum of 12 uniforms ≈ standard normal (Irwin–Hall)
            let z: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            x = alpha * x + noise_scale * z;
        }
        OuProcess { samples, dt, sigma }
    }

    /// The stationary standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Waveform for OuProcess {
    fn value(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.samples[0];
        }
        let x = t / self.dt;
        let i = x.floor() as usize;
        if i + 1 >= self.samples.len() {
            return *self.samples.last().expect("samples nonempty");
        }
        let frac = x - i as f64;
        self.samples[i] + frac * (self.samples[i + 1] - self.samples[i])
    }
    fn amplitude_bound(&self) -> f64 {
        // OU is unbounded in theory; report the realized path bound.
        self.samples.iter().map(|s| s.abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsnConfig {
        SsnConfig {
            mean_gap: 500.0,
            amplitude: (2.0, 8.0),
            duration: (50.0, 200.0),
            horizon: 50_000.0,
        }
    }

    #[test]
    fn ssn_is_deterministic_per_seed() {
        let a = SsnBursts::new(7, cfg());
        let b = SsnBursts::new(7, cfg());
        let c = SsnBursts::new(8, cfg());
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for k in 0..200 {
            let t = k as f64 * 177.0;
            assert_eq!(a.value(t), b.value(t));
        }
        assert_ne!(a.len(), 0);
        let differs = (0..200).any(|k| {
            let t = k as f64 * 177.0;
            (a.value(t) - c.value(t)).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn ssn_burst_count_tracks_rate() {
        let bursts = SsnBursts::new(42, cfg());
        // horizon / mean_gap = 100 expected arrivals; allow wide slack
        assert!(
            (50..200).contains(&bursts.len()),
            "got {} bursts",
            bursts.len()
        );
    }

    #[test]
    fn ssn_zero_between_bursts_possible() {
        let sparse = SsnBursts::new(
            1,
            SsnConfig {
                mean_gap: 10_000.0,
                horizon: 30_000.0,
                ..cfg()
            },
        );
        // with very sparse bursts, most sampled times are exactly 0
        let zeros = (0..300)
            .filter(|k| sparse.value(*k as f64 * 100.0) == 0.0)
            .count();
        assert!(zeros > 150, "only {zeros} zero samples");
    }

    #[test]
    fn ou_is_mean_reverting_and_scaled() {
        let ou = OuProcess::new(3, 2.0, 1000.0, 200_000.0, 10.0);
        let vals: Vec<f64> = (0..10_000).map(|k| ou.value(k as f64 * 20.0)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.5, "OU mean {mean} should hover near 0");
        let std = var.sqrt();
        assert!(
            (1.0..3.5).contains(&std),
            "OU std {std} should be near sigma = 2"
        );
        assert!(ou.amplitude_bound() >= std);
        assert_eq!(ou.sigma(), 2.0);
    }

    #[test]
    fn ou_deterministic_and_interpolated() {
        let a = OuProcess::new(9, 1.0, 500.0, 10_000.0, 10.0);
        let b = OuProcess::new(9, 1.0, 500.0, 10_000.0, 10.0);
        assert_eq!(a.value(123.4), b.value(123.4));
        let mid = a.value(15.0);
        let lo = a.value(10.0);
        let hi = a.value(20.0);
        assert!((mid - 0.5 * (lo + hi)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn ou_rejects_bad_sigma() {
        let _ = OuProcess::new(0, 0.0, 1.0, 1.0, 0.5);
    }
}
