//! `variation` — models of PVTA (process, voltage, temperature, aging)
//! variability for adaptive-clock studies.
//!
//! The SOCC 2012 paper classifies variability sources along two axes
//! (its Table I): **time** (static vs dynamic) and **space** (homogeneous
//! vs heterogeneous across the die). This crate provides:
//!
//! * [`taxonomy`] — the Table I classification as data;
//! * [`sources`] — time-domain waveform generators for dynamic variations
//!   (harmonic, single-event triangular droop, steps, ramps, seeded noise);
//! * [`analysis`] — the paper's Eq. (1)–(3): the mismatch a clock
//!   distribution delay induces between the ring oscillator and a critical
//!   path under a homogeneous dynamic variation, in closed form and
//!   empirically;
//! * [`spatial`] — per-sensor heterogeneous variation fields (gradients,
//!   hotspots, seeded within-die randomness);
//! * [`process`] — per-instance Gaussian process distributions
//!   (die-to-die, spatially-correlated, local) sampled by a pure seeded
//!   function for Monte Carlo statistical timing.
//!
//! All delays and amplitudes follow the paper's convention of being
//! expressed in *number of stages* (one unit = one nominal gate delay).
//!
//! # Example
//!
//! The worst-case induced mismatch of Eq. (2) matches an empirical sweep of
//! the waveform:
//!
//! ```
//! use variation::sources::{Harmonic, Waveform};
//! use variation::analysis;
//!
//! let hodv = Harmonic::new(12.8, 1600.0, 0.0); // 0.2c amplitude, Te = 25c for c = 64
//! let tclk = 64.0;
//! let analytic = analysis::harmonic_worst_case(12.8, tclk, 1600.0);
//! let empirical = analysis::empirical_worst_case(&hodv, tclk, 0.0, 16_000.0, 0.25);
//! assert!((analytic - empirical).abs() < 0.05 * analytic.max(1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod combinators;
pub mod process;
pub mod recorded;
pub mod sources;
pub mod spatial;
pub mod stochastic;
pub mod taxonomy;

pub use combinators::WaveformExt;
pub use sources::Waveform;
