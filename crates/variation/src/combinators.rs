//! Waveform combinators: build compound variation profiles from primitives
//! without writing new types.

use crate::sources::Waveform;

/// Extension methods available on every [`Waveform`].
///
/// # Example
///
/// ```
/// use variation::sources::{Harmonic, Waveform};
/// use variation::WaveformExt;
///
/// // a 10%-of-c ripple riding on a +2-stage static offset, gated in time
/// let w = Harmonic::new(6.4, 1600.0, 0.0)
///     .offset(2.0)
///     .windowed(0.0, 1.0e6);
/// assert_eq!(w.value(2.0e6), 0.0);
/// assert!((w.value(400.0) - 8.4).abs() < 1e-9);
/// ```
pub trait WaveformExt: Waveform + Sized {
    /// Scale the waveform by a constant factor.
    fn scaled(self, factor: f64) -> Scaled<Self> {
        Scaled {
            inner: self,
            factor,
        }
    }

    /// Add a constant offset.
    fn offset(self, offset: f64) -> OffsetBy<Self> {
        OffsetBy {
            inner: self,
            offset,
        }
    }

    /// Delay the waveform in time: `w'(t) = w(t − delay)`.
    fn delayed(self, delay: f64) -> Delayed<Self> {
        Delayed { inner: self, delay }
    }

    /// Clip the waveform into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn clipped(self, lo: f64, hi: f64) -> Clipped<Self> {
        assert!(lo <= hi, "clip bounds must satisfy lo <= hi");
        Clipped {
            inner: self,
            lo,
            hi,
        }
    }

    /// Sum with another waveform.
    fn plus<W: Waveform>(self, other: W) -> SumOf<Self, W> {
        SumOf { a: self, b: other }
    }

    /// Gate the waveform: zero outside `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    fn windowed(self, start: f64, end: f64) -> Windowed<Self> {
        assert!(end >= start, "window must be non-empty");
        Windowed {
            inner: self,
            start,
            end,
        }
    }
}

impl<W: Waveform + Sized> WaveformExt for W {}

/// See [`WaveformExt::scaled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaled<W> {
    inner: W,
    factor: f64,
}

impl<W: Waveform> Waveform for Scaled<W> {
    fn value(&self, t: f64) -> f64 {
        self.factor * self.inner.value(t)
    }
    fn amplitude_bound(&self) -> f64 {
        self.factor.abs() * self.inner.amplitude_bound()
    }
}

/// See [`WaveformExt::offset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetBy<W> {
    inner: W,
    offset: f64,
}

impl<W: Waveform> Waveform for OffsetBy<W> {
    fn value(&self, t: f64) -> f64 {
        self.offset + self.inner.value(t)
    }
    fn amplitude_bound(&self) -> f64 {
        self.offset.abs() + self.inner.amplitude_bound()
    }
}

/// See [`WaveformExt::delayed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delayed<W> {
    inner: W,
    delay: f64,
}

impl<W: Waveform> Waveform for Delayed<W> {
    fn value(&self, t: f64) -> f64 {
        self.inner.value(t - self.delay)
    }
    fn amplitude_bound(&self) -> f64 {
        self.inner.amplitude_bound()
    }
}

/// See [`WaveformExt::clipped`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clipped<W> {
    inner: W,
    lo: f64,
    hi: f64,
}

impl<W: Waveform> Waveform for Clipped<W> {
    fn value(&self, t: f64) -> f64 {
        self.inner.value(t).clamp(self.lo, self.hi)
    }
    fn amplitude_bound(&self) -> f64 {
        self.lo
            .abs()
            .max(self.hi.abs())
            .min(self.inner.amplitude_bound())
    }
}

/// See [`WaveformExt::plus`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumOf<A, B> {
    a: A,
    b: B,
}

impl<A: Waveform, B: Waveform> Waveform for SumOf<A, B> {
    fn value(&self, t: f64) -> f64 {
        self.a.value(t) + self.b.value(t)
    }
    fn amplitude_bound(&self) -> f64 {
        self.a.amplitude_bound() + self.b.amplitude_bound()
    }
}

/// See [`WaveformExt::windowed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Windowed<W> {
    inner: W,
    start: f64,
    end: f64,
}

impl<W: Waveform> Waveform for Windowed<W> {
    fn value(&self, t: f64) -> f64 {
        if (self.start..self.end).contains(&t) {
            self.inner.value(t)
        } else {
            0.0
        }
    }
    fn amplitude_bound(&self) -> f64 {
        self.inner.amplitude_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{ConstantOffset, Harmonic};

    #[test]
    fn scaled_and_offset() {
        let w = Harmonic::new(2.0, 8.0, 0.0).scaled(3.0).offset(1.0);
        assert!((w.value(2.0) - 7.0).abs() < 1e-12); // 3·2 + 1
        assert_eq!(w.amplitude_bound(), 7.0);
    }

    #[test]
    fn delayed_shifts_time() {
        let w = Harmonic::new(2.0, 8.0, 0.0).delayed(2.0);
        assert!((w.value(4.0) - 2.0).abs() < 1e-12); // sin at quarter period
        assert_eq!(w.amplitude_bound(), 2.0);
    }

    #[test]
    fn clipped_limits_range() {
        let w = Harmonic::new(5.0, 8.0, 0.0).clipped(-1.0, 2.0);
        assert_eq!(w.value(2.0), 2.0);
        assert_eq!(w.value(6.0), -1.0);
        assert_eq!(w.amplitude_bound(), 2.0);
    }

    #[test]
    fn plus_sums() {
        let w = ConstantOffset::new(1.0).plus(ConstantOffset::new(2.0));
        assert_eq!(w.value(0.0), 3.0);
        assert_eq!(w.amplitude_bound(), 3.0);
    }

    #[test]
    fn windowed_gates() {
        let w = ConstantOffset::new(4.0).windowed(10.0, 20.0);
        assert_eq!(w.value(9.9), 0.0);
        assert_eq!(w.value(10.0), 4.0);
        assert_eq!(w.value(19.9), 4.0);
        assert_eq!(w.value(20.0), 0.0);
    }

    #[test]
    fn combinators_chain() {
        let w = Harmonic::new(1.0, 4.0, 0.0)
            .scaled(2.0)
            .offset(0.5)
            .clipped(-1.0, 1.0)
            .delayed(1.0)
            .windowed(0.0, 100.0);
        // at t=2: inner sees t=1 -> sin(π/2)=1 -> 2·1+0.5=2.5 -> clip 1.0
        assert_eq!(w.value(2.0), 1.0);
        assert_eq!(w.value(200.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn clip_rejects_inverted_bounds() {
        let _ = ConstantOffset::new(0.0).clipped(1.0, -1.0);
    }
}
