//! Process-variation distributions for Monte Carlo statistical timing.
//!
//! Static (t = 0) process variation decomposes, per the classic SSTA
//! split, into three zero-mean Gaussian components:
//!
//! * **global** (die-to-die): one draw shared by every site of an
//!   instance — a whole chip being fast or slow;
//! * **spatially correlated** (within-die, correlated): a draw per
//!   correlation cell of side [`ProcessSpec::correlation_length`], so
//!   nearby sites move together;
//! * **local** (within-die, independent): a draw per site — random
//!   device-to-device mismatch.
//!
//! A [`ProcessSpec`] holds the three sigmas (in the paper's *stage
//! delay* units) plus the correlation length; [`ProcessSpec::sampler`]
//! binds it to a seed and yields a [`ProcessSampler`] whose draws are a
//! pure function of `(seed, instance, site)` — no RNG state is carried,
//! so instances can be evaluated in any order, in parallel, or
//! re-evaluated, and always produce identical offsets. That purity is
//! what makes Monte Carlo panels cacheable and chunk-parallel merges
//! deterministic.
//!
//! Normal deviates come from a splitmix64-hashed Irwin–Hall(12) sum
//! (sum of 12 uniforms minus 6 — the same idiom the spatial field uses
//! per site), which is deterministic, allocation-free, and accurate to
//! well past the ±3σ range a yield panel cares about.

use serde::{Deserialize, Serialize};

use crate::spatial::Position;

/// The three-component Gaussian process model sampled per instance.
///
/// All sigmas are in stage-delay units (one unit = one nominal gate
/// delay, matching the rest of the crate). Zero sigmas switch the
/// corresponding component off exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessSpec {
    /// Die-to-die sigma: one shared draw per instance.
    pub global_sigma: f64,
    /// Site-independent within-die sigma (device mismatch).
    pub local_sigma: f64,
    /// Spatially-correlated within-die sigma.
    pub spatial_sigma: f64,
    /// Side of a correlation cell in die units (`(0, 1]`); sites in the
    /// same cell share the spatially-correlated draw.
    pub correlation_length: f64,
}

impl ProcessSpec {
    /// A paper-flavoured default: most variance die-to-die, a smaller
    /// correlated within-die term over quarter-die cells, and a small
    /// local mismatch floor.
    pub fn paper() -> Self {
        ProcessSpec {
            global_sigma: 2.0,
            local_sigma: 0.5,
            spatial_sigma: 1.0,
            correlation_length: 0.25,
        }
    }

    /// The spec with every sigma scaled by `s` (correlation length
    /// unchanged) — sigma-scale sweeps for yield surfaces.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        ProcessSpec {
            global_sigma: self.global_sigma * s,
            local_sigma: self.local_sigma * s,
            spatial_sigma: self.spatial_sigma * s,
            correlation_length: self.correlation_length,
        }
    }

    /// A canonical textual identity for cache keys: every parameter at
    /// full `f64` precision (hex bits), so two specs share an id iff
    /// they sample identically.
    pub fn canonical_id(&self) -> String {
        format!(
            "process:g{:016x}:l{:016x}:s{:016x}:c{:016x}",
            self.global_sigma.to_bits(),
            self.local_sigma.to_bits(),
            self.spatial_sigma.to_bits(),
            self.correlation_length.to_bits(),
        )
    }

    /// Bind the spec to a seed, yielding the pure per-instance sampler.
    pub fn sampler(&self, seed: u64) -> ProcessSampler {
        ProcessSampler { spec: *self, seed }
    }
}

/// A [`ProcessSpec`] bound to a seed: a pure function from
/// `(instance, site)` to a static delay offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessSampler {
    spec: ProcessSpec,
    seed: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A standard-normal deviate keyed by a hash state: Irwin–Hall with
/// n = 12 (sum of 12 uniform draws minus 6 has zero mean and unit
/// variance).
fn standard_normal(mut state: u64) -> f64 {
    let mut sum = 0.0;
    for _ in 0..12 {
        // 53 top bits → uniform in [0, 1).
        sum += (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
    }
    sum - 6.0
}

impl ProcessSampler {
    /// The sampled static offset (in stage-delay units) of `instance`
    /// at `site`: global + spatially-correlated + local components.
    ///
    /// Pure in `(instance, site)` for a fixed sampler, so evaluation
    /// order never matters.
    pub fn offset(&self, instance: u64, site: Position) -> f64 {
        let spec = &self.spec;
        let base = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(instance.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut v = 0.0;
        if spec.global_sigma != 0.0 {
            v += spec.global_sigma * standard_normal(base ^ 0x0000_0000_6D1E_6D1E);
        }
        if spec.spatial_sigma != 0.0 {
            // Quantize the site into its correlation cell so every site
            // in the cell shares the draw.
            let cell = spec.correlation_length.max(1e-9);
            let cx = (site.x / cell).floor() as i64 as u64;
            let cy = (site.y / cell).floor() as i64 as u64;
            let cell_key = base
                .wrapping_add(cx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(cy.wrapping_mul(0x94D0_49BB_1331_11EB));
            v += spec.spatial_sigma * standard_normal(cell_key ^ 0x0000_0000_5A71_A715);
        }
        if spec.local_sigma != 0.0 {
            // Quantize the exact site (1e-6 die units) so float identity
            // noise cannot split a site into two draws.
            let qx = (site.x * 1e6).round() as i64 as u64;
            let qy = (site.y * 1e6).round() as i64 as u64;
            let site_key = base
                .wrapping_add(qx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(qy.wrapping_mul(0x94D0_49BB_1331_11EB));
            v += spec.local_sigma * standard_normal(site_key ^ 0x0000_0000_10CA_10CA);
        }
        v
    }

    /// What the paper's distributed TDC sensors *observe* of this
    /// instance: the mean sampled offset over the sensor grid — the
    /// static heterogeneous mismatch the closed loop absorbs into its
    /// ring-oscillator period.
    pub fn sensed_offset(&self, instance: u64, sites: &[Position]) -> f64 {
        if sites.is_empty() {
            return 0.0;
        }
        sites.iter().map(|&p| self.offset(instance, p)).sum::<f64>() / sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_pure_and_seeded() {
        let spec = ProcessSpec::paper();
        let a = spec.sampler(7);
        let b = spec.sampler(7);
        let c = spec.sampler(8);
        let p = Position::new(0.3, 0.6);
        assert_eq!(a.offset(5, p).to_bits(), b.offset(5, p).to_bits());
        assert_ne!(a.offset(5, p).to_bits(), c.offset(5, p).to_bits());
        assert_ne!(a.offset(5, p), a.offset(6, p), "instances differ");
    }

    #[test]
    fn evaluation_order_never_matters() {
        let s = ProcessSpec::paper().sampler(11);
        let sites = Position::grid(9);
        let forward: Vec<f64> = (0..64u64).map(|i| s.sensed_offset(i, &sites)).collect();
        let mut backward: Vec<f64> = (0..64u64)
            .rev()
            .map(|i| s.sensed_offset(i, &sites))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn zero_sigma_components_vanish() {
        let spec = ProcessSpec {
            global_sigma: 0.0,
            local_sigma: 0.0,
            spatial_sigma: 0.0,
            correlation_length: 0.25,
        };
        let s = spec.sampler(3);
        for i in 0..8u64 {
            assert_eq!(s.offset(i, Position::new(0.2, 0.9)), 0.0);
        }
    }

    #[test]
    fn global_component_is_shared_across_sites() {
        let spec = ProcessSpec {
            global_sigma: 1.5,
            local_sigma: 0.0,
            spatial_sigma: 0.0,
            correlation_length: 0.25,
        };
        let s = spec.sampler(21);
        let a = s.offset(4, Position::new(0.1, 0.1));
        let b = s.offset(4, Position::new(0.9, 0.8));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn spatial_component_correlates_within_cells() {
        let spec = ProcessSpec {
            global_sigma: 0.0,
            local_sigma: 0.0,
            spatial_sigma: 1.0,
            correlation_length: 0.5,
        };
        let s = spec.sampler(9);
        // Same cell (both in [0, 0.5) × [0, 0.5)) → identical draw.
        let a = s.offset(2, Position::new(0.1, 0.1));
        let b = s.offset(2, Position::new(0.4, 0.3));
        assert_eq!(a.to_bits(), b.to_bits());
        // A different cell draws independently (almost surely distinct).
        let c = s.offset(2, Position::new(0.9, 0.9));
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn distribution_moments_are_roughly_right() {
        let spec = ProcessSpec {
            global_sigma: 2.0,
            local_sigma: 0.0,
            spatial_sigma: 0.0,
            correlation_length: 0.25,
        };
        let s = spec.sampler(0x000C_1A05);
        let p = Position::new(0.5, 0.5);
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n).map(|i| s.offset(i, p)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn canonical_id_distinguishes_specs() {
        let a = ProcessSpec::paper();
        let b = a.scaled(2.0);
        assert_ne!(a.canonical_id(), b.canonical_id());
        assert_eq!(a.canonical_id(), ProcessSpec::paper().canonical_id());
        assert_eq!(a.scaled(1.0).canonical_id(), a.canonical_id());
    }

    #[test]
    fn sensed_offset_averages_the_grid() {
        let s = ProcessSpec::paper().sampler(5);
        let sites = Position::grid(4);
        let mean = sites.iter().map(|&p| s.offset(3, p)).sum::<f64>() / 4.0;
        assert_eq!(s.sensed_offset(3, &sites).to_bits(), mean.to_bits());
        assert_eq!(s.sensed_offset(3, &[]), 0.0);
    }
}
