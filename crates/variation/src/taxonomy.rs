//! The paper's Table I: sources of variability classified by their time and
//! space characteristics.

use serde::{Deserialize, Serialize};

/// Temporal nature of a variability source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeNature {
    /// Fixed once the die is manufactured (or changing on very long scales).
    Static,
    /// Changes while the circuit operates.
    Dynamic,
}

/// Spatial nature of a variability source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialNature {
    /// Affects the whole die equally.
    Homogeneous,
    /// Differs from place to place on the die.
    Heterogeneous,
}

/// The variability sources enumerated in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SourceKind {
    /// Die-to-die (D2D) process variations.
    DieToDie,
    /// Within-die (WID) process variations.
    WithinDie,
    /// Device-to-device random (RND) process variations.
    DeviceRandom,
    /// Voltage regulation module (VRM) ripple.
    VrmRipple,
    /// Room temperature variations.
    RoomTemperature,
    /// Off-chip voltage drops.
    OffChipVoltageDrop,
    /// Simultaneous switching noise (SSN).
    SimultaneousSwitchingNoise,
    /// IR drop across the power grid.
    IrDrop,
    /// Temperature hotspots.
    TemperatureHotspot,
    /// Transistor aging (BTI/HCI wear-out).
    Aging,
}

impl SourceKind {
    /// All Table I sources, in the paper's reading order.
    pub const ALL: [SourceKind; 10] = [
        SourceKind::DieToDie,
        SourceKind::VrmRipple,
        SourceKind::RoomTemperature,
        SourceKind::OffChipVoltageDrop,
        SourceKind::WithinDie,
        SourceKind::DeviceRandom,
        SourceKind::SimultaneousSwitchingNoise,
        SourceKind::IrDrop,
        SourceKind::TemperatureHotspot,
        SourceKind::Aging,
    ];

    /// Temporal classification per Table I.
    pub fn time_nature(self) -> TimeNature {
        match self {
            SourceKind::DieToDie | SourceKind::WithinDie | SourceKind::DeviceRandom => {
                TimeNature::Static
            }
            // The paper lists ageing with the dynamic heterogeneous cell:
            // it drifts during operation, though slowly.
            SourceKind::Aging
            | SourceKind::VrmRipple
            | SourceKind::RoomTemperature
            | SourceKind::OffChipVoltageDrop
            | SourceKind::SimultaneousSwitchingNoise
            | SourceKind::IrDrop
            | SourceKind::TemperatureHotspot => TimeNature::Dynamic,
        }
    }

    /// Spatial classification per Table I.
    pub fn spatial_nature(self) -> SpatialNature {
        match self {
            SourceKind::DieToDie
            | SourceKind::VrmRipple
            | SourceKind::RoomTemperature
            | SourceKind::OffChipVoltageDrop => SpatialNature::Homogeneous,
            SourceKind::WithinDie
            | SourceKind::DeviceRandom
            | SourceKind::SimultaneousSwitchingNoise
            | SourceKind::IrDrop
            | SourceKind::TemperatureHotspot
            | SourceKind::Aging => SpatialNature::Heterogeneous,
        }
    }

    /// Short display name, as used in the paper's table.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::DieToDie => "Die to die (D2D) process variations",
            SourceKind::WithinDie => "Within die (WID) process variations",
            SourceKind::DeviceRandom => "Device to device random (RND) process variations",
            SourceKind::VrmRipple => "Voltage regulation module (VRM) ripple",
            SourceKind::RoomTemperature => "Room temperature variations",
            SourceKind::OffChipVoltageDrop => "Off chip voltage drops",
            SourceKind::SimultaneousSwitchingNoise => "Simultaneous switching noise (SSN)",
            SourceKind::IrDrop => "IR drop",
            SourceKind::TemperatureHotspot => "Temperature hotspots",
            SourceKind::Aging => "Ageing",
        }
    }

    /// Whether a free-running ring oscillator can in principle track this
    /// source (paper §II: the RO is a *point* sensor, so it only tracks
    /// homogeneous variations, and only when they are slow relative to the
    /// clock-distribution delay).
    pub fn trackable_by_free_ro(self) -> bool {
        self.spatial_nature() == SpatialNature::Homogeneous
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of Table I: every source with the given time/space nature.
pub fn cell(time: TimeNature, space: SpatialNature) -> Vec<SourceKind> {
    SourceKind::ALL
        .into_iter()
        .filter(|s| s.time_nature() == time && s.spatial_nature() == space)
        .collect()
}

/// The full 2×2 table as `[(time, space, sources)]`, row-major in the
/// paper's order (homogeneous row first).
pub fn table() -> Vec<(TimeNature, SpatialNature, Vec<SourceKind>)> {
    let mut rows = Vec::with_capacity(4);
    for space in [SpatialNature::Homogeneous, SpatialNature::Heterogeneous] {
        for time in [TimeNature::Static, TimeNature::Dynamic] {
            rows.push((time, space, cell(time, space)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_source_is_classified_once() {
        let total: usize = table().iter().map(|(_, _, v)| v.len()).sum();
        assert_eq!(total, SourceKind::ALL.len());
    }

    #[test]
    fn paper_cell_contents() {
        // Static homogeneous: D2D only.
        assert_eq!(
            cell(TimeNature::Static, SpatialNature::Homogeneous),
            vec![SourceKind::DieToDie]
        );
        // Dynamic homogeneous: VRM ripple, room temperature, off-chip drops.
        let dh = cell(TimeNature::Dynamic, SpatialNature::Homogeneous);
        assert_eq!(dh.len(), 3);
        assert!(dh.contains(&SourceKind::VrmRipple));
        assert!(dh.contains(&SourceKind::RoomTemperature));
        assert!(dh.contains(&SourceKind::OffChipVoltageDrop));
        // Static heterogeneous: WID + RND.
        let sh = cell(TimeNature::Static, SpatialNature::Heterogeneous);
        assert_eq!(sh.len(), 2);
        assert!(sh.contains(&SourceKind::WithinDie));
        assert!(sh.contains(&SourceKind::DeviceRandom));
        // Dynamic heterogeneous: SSN, IR drop, hotspots, ageing.
        let dh2 = cell(TimeNature::Dynamic, SpatialNature::Heterogeneous);
        assert_eq!(dh2.len(), 4);
        assert!(dh2.contains(&SourceKind::Aging));
    }

    #[test]
    fn free_ro_tracks_only_homogeneous() {
        assert!(SourceKind::VrmRipple.trackable_by_free_ro());
        assert!(SourceKind::DieToDie.trackable_by_free_ro());
        assert!(!SourceKind::IrDrop.trackable_by_free_ro());
        assert!(!SourceKind::WithinDie.trackable_by_free_ro());
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in SourceKind::ALL {
            assert!(!s.label().is_empty());
            assert!(seen.insert(s.label()), "duplicate label {}", s.label());
            assert_eq!(s.to_string(), s.label());
        }
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&SourceKind::IrDrop).unwrap();
        let back: SourceKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SourceKind::IrDrop);
    }
}
