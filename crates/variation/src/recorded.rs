//! Recorded variation traces: capture any waveform on a grid, serialize
//! it, and replay it later as a [`Waveform`].
//!
//! This is the substitution path for "real PVTA traces" the paper's
//! methodology would use on silicon: a measured supply/temperature record
//! can be imported as `(dt, samples)` and driven through the exact same
//! simulators as the synthetic profiles.

use serde::{Deserialize, Serialize};

use crate::sources::Waveform;

/// A uniformly-sampled variation trace, linearly interpolated on replay
/// and clamped to its end values outside the recorded range.
///
/// # Example
///
/// ```
/// use variation::recorded::RecordedTrace;
/// use variation::sources::{Harmonic, Waveform};
///
/// let live = Harmonic::new(2.0, 100.0, 0.0);
/// let rec = RecordedTrace::capture(&live, 1000.0, 1.0);
/// assert!((rec.value(33.3) - live.value(33.3)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    dt: f64,
    samples: Vec<f64>,
}

impl RecordedTrace {
    /// Wrap raw samples with grid spacing `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `samples` is empty.
    pub fn new(dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0, "grid spacing must be positive");
        assert!(!samples.is_empty(), "a trace needs at least one sample");
        RecordedTrace { dt, samples }
    }

    /// Record `source` over `[0, horizon]` at spacing `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn capture<W: Waveform + ?Sized>(source: &W, horizon: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "grid spacing must be positive");
        assert!(horizon >= 0.0, "horizon must be non-negative");
        let n = (horizon / dt).floor() as usize + 1;
        let samples = (0..n).map(|k| source.value(k as f64 * dt)).collect();
        RecordedTrace::new(dt, samples)
    }

    /// Grid spacing.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when only one sample exists (a constant trace).
    pub fn is_empty(&self) -> bool {
        false // `new` guarantees at least one sample
    }

    /// The recorded duration.
    pub fn duration(&self) -> f64 {
        (self.samples.len() - 1) as f64 * self.dt
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Serialize as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Propagates malformed-input failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Waveform for RecordedTrace {
    fn value(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.samples[0];
        }
        let x = t / self.dt;
        let i = x.floor() as usize;
        if i + 1 >= self.samples.len() {
            return *self.samples.last().expect("non-empty by construction");
        }
        let frac = x - i as f64;
        self.samples[i] + frac * (self.samples[i + 1] - self.samples[i])
    }
    fn amplitude_bound(&self) -> f64 {
        self.samples.iter().map(|s| s.abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::Harmonic;

    #[test]
    fn capture_and_replay_matches_source_between_grid_points() {
        let src = Harmonic::new(2.0, 100.0, 0.3);
        let rec = RecordedTrace::capture(&src, 500.0, 0.5);
        for k in 0..900 {
            let t = k as f64 * 0.55;
            let err = (rec.value(t) - src.value(t)).abs();
            // linear interpolation error bound for this curvature/grid
            assert!(err < 0.01, "t={t}: err {err}");
        }
        assert_eq!(rec.dt(), 0.5);
        assert!((rec.duration() - 500.0).abs() < 0.5 + 1e-9);
    }

    #[test]
    fn clamps_outside_recorded_range() {
        let rec = RecordedTrace::new(1.0, vec![5.0, 6.0, 7.0]);
        assert_eq!(rec.value(-10.0), 5.0);
        assert_eq!(rec.value(100.0), 7.0);
        assert_eq!(rec.value(1.5), 6.5);
        assert_eq!(rec.len(), 3);
        assert!(!rec.is_empty());
        assert!((rec.amplitude_bound() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let src = Harmonic::new(1.5, 40.0, 0.0);
        let rec = RecordedTrace::capture(&src, 100.0, 2.0);
        let json = rec.to_json().unwrap();
        let back = RecordedTrace::from_json(&json).unwrap();
        assert_eq!(back, rec);
        assert!(RecordedTrace::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = RecordedTrace::new(1.0, vec![]);
    }
}
