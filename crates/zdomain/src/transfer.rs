//! Rational transfer functions in `z⁻¹`.

use crate::complex::Complex;
use crate::error::Error;
use crate::poly::Polynomial;
use crate::roots::polynomial_roots;

/// A causal rational transfer function `H(z) = num(z) / den(z)` with both
/// polynomials written in `z⁻¹` and `den` having a nonzero constant term.
///
/// # Example
///
/// A one-pole low-pass and its geometric impulse response:
///
/// ```
/// use zdomain::{Polynomial, TransferFunction};
///
/// # fn main() -> Result<(), zdomain::Error> {
/// let h = TransferFunction::new(
///     Polynomial::new(vec![1.0]),
///     Polynomial::new(vec![1.0, -0.5]), // 1 − 0.5·z⁻¹
/// )?;
/// assert_eq!(h.impulse_response(4), vec![1.0, 0.5, 0.25, 0.125]);
/// assert_eq!(h.dc_gain(), Some(2.0));
/// assert!(h.is_stable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    num: Polynomial,
    den: Polynomial,
}

impl TransferFunction {
    /// Build `num/den`, normalizing so the denominator constant term is 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroDenominator`] for a zero denominator and
    /// [`Error::NonCausalDenominator`] when `den` has no `z⁰` term (the
    /// output would depend on future inputs).
    pub fn new(num: Polynomial, den: Polynomial) -> Result<Self, Error> {
        if den.is_zero() {
            return Err(Error::ZeroDenominator);
        }
        let a0 = den.coeff(0);
        if a0 == 0.0 {
            return Err(Error::NonCausalDenominator);
        }
        Ok(TransferFunction {
            num: num.scale(1.0 / a0),
            den: den.scale(1.0 / a0),
        })
    }

    /// A pure gain.
    pub fn constant(gain: f64) -> Self {
        TransferFunction {
            num: Polynomial::constant(gain),
            den: Polynomial::one(),
        }
    }

    /// A pure delay `z⁻ᵐ`.
    pub fn delay(m: usize) -> Self {
        TransferFunction {
            num: Polynomial::delay(m),
            den: Polynomial::one(),
        }
    }

    /// Numerator polynomial (normalized).
    pub fn num(&self) -> &Polynomial {
        &self.num
    }

    /// Denominator polynomial (normalized, constant term 1).
    pub fn den(&self) -> &Polynomial {
        &self.den
    }

    /// Evaluate `H` at a complex point `z`.
    pub fn eval(&self, z: Complex) -> Complex {
        self.num.eval_z_complex(z) / self.den.eval_z_complex(z)
    }

    /// Series composition `self · other`.
    pub fn series(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction::new(self.num.mul(&other.num), self.den.mul(&other.den))
            .expect("product of causal denominators is causal")
    }

    /// Parallel composition `self + other`.
    pub fn parallel(&self, other: &TransferFunction) -> TransferFunction {
        let num = self.num.mul(&other.den).add(&other.num.mul(&self.den));
        TransferFunction::new(num, self.den.mul(&other.den))
            .expect("product of causal denominators is causal")
    }

    /// Negative-feedback closure `self / (1 + self · loop_gain)`.
    pub fn feedback(&self, loop_gain: &TransferFunction) -> TransferFunction {
        let num = self.num.mul(&loop_gain.den);
        let den = self
            .den
            .mul(&loop_gain.den)
            .add(&self.num.mul(&loop_gain.num));
        TransferFunction::new(num, den).expect("feedback preserves causality")
    }

    /// First `n` samples of the impulse response, by running the difference
    /// equation `y[k] = b·u − a·y` with `u = δ[k]`.
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        self.response(n, |k| if k == 0 { 1.0 } else { 0.0 })
    }

    /// First `n` samples of the unit-step response.
    pub fn step_response(&self, n: usize) -> Vec<f64> {
        self.response(n, |_| 1.0)
    }

    /// First `n` samples of the response to an arbitrary input sequence
    /// `u(k)`.
    pub fn response(&self, n: usize, u: impl Fn(usize) -> f64) -> Vec<f64> {
        let b = self.num.coeffs();
        let a = self.den.coeffs();
        let mut y = vec![0.0; n];
        let mut uu = vec![0.0; n];
        for k in 0..n {
            uu[k] = u(k);
            let mut acc = 0.0;
            for (i, &bi) in b.iter().enumerate() {
                if k >= i {
                    acc += bi * uu[k - i];
                }
            }
            for (i, &ai) in a.iter().enumerate().skip(1) {
                if k >= i {
                    acc -= ai * y[k - i];
                }
            }
            y[k] = acc; // a[0] == 1 by normalization
        }
        y
    }

    /// DC gain `H(1)`, or `None` when `den(1) = 0` (pole at `z = 1`).
    pub fn dc_gain(&self) -> Option<f64> {
        let d = self.den.at_one();
        if d.abs() < 1e-12 {
            None
        } else {
            Some(self.num.at_one() / d)
        }
    }

    /// Final value of the unit-step response by the final value theorem:
    /// `lim_{k→∞} y[k] = lim_{z→1} (1 − z⁻¹) H(z) · 1/(1 − z⁻¹) = H(1)`.
    ///
    /// A simple pole of `H` at `z = 1` (integrator) makes the step response
    /// diverge; that case returns [`Error::FinalValueUndefined`]. Poles on or
    /// outside the unit circle elsewhere also have no final value.
    ///
    /// # Errors
    ///
    /// [`Error::FinalValueUndefined`] as described above.
    pub fn step_final_value(&self) -> Result<f64, Error> {
        // Deflate all (1 - z^{-1}) factors shared by num and den.
        let mut num = self.num.clone();
        let mut den = self.den.clone();
        while let (Some(n2), Some(d2)) = (num.deflate_unit_root(1e-9), den.deflate_unit_root(1e-9))
        {
            num = n2;
            den = d2;
        }
        if den.at_one().abs() < 1e-9 {
            // Residual pole at z = 1 after cancellation: diverges.
            return Err(Error::FinalValueUndefined);
        }
        // Remaining poles must be strictly inside the unit circle.
        let reduced = TransferFunction::new(num.clone(), den.clone())?;
        if let Some(r) = reduced.pole_radius() {
            if r >= 1.0 - 1e-9 {
                return Err(Error::FinalValueUndefined);
            }
        }
        Ok(num.at_one() / den.at_one())
    }

    /// Cancel common numerator/denominator factors (within `tol`) via a
    /// polynomial GCD, returning the reduced transfer function. Exact
    /// pole-zero cancellations (like the `(1 − z⁻¹)` pair in a deadbeat
    /// design) reduce the difference-equation order.
    ///
    /// # Errors
    ///
    /// Returns an error if the reduced denominator degenerates (cannot
    /// happen for well-formed inputs; surfaced rather than panicked on).
    pub fn simplified(&self, tol: f64) -> Result<TransferFunction, Error> {
        if self.num.is_zero() {
            return TransferFunction::new(Polynomial::zero(), Polynomial::one());
        }
        let g = self.num.gcd(&self.den, tol);
        if g.degree().unwrap_or(0) == 0 {
            return Ok(self.clone());
        }
        let (qn, _) = self.num.div_rem(&g);
        let (qd, _) = self.den.div_rem(&g);
        TransferFunction::new(qn, qd)
    }

    /// Poles of `H` (roots of the denominator in the `z` plane).
    pub fn poles(&self) -> Vec<Complex> {
        // den in z^{-1}: 1 + a1 z^{-1} + ... + ad z^{-d}
        // multiply by z^d: z^d + a1 z^{d-1} + ... + ad  — roots are poles.
        let z_coeffs_desc = self.den.coeffs().to_vec(); // [1, a1, .., ad] are
                                                        // descending powers of z after clearing
        let ascending: Vec<f64> = z_coeffs_desc.into_iter().rev().collect();
        polynomial_roots(&ascending)
    }

    /// Zeros of `H` (roots of the numerator in the `z` plane, after
    /// clearing the same delay power as the denominator).
    pub fn zeros(&self) -> Vec<Complex> {
        if self.num.is_zero() {
            return Vec::new();
        }
        let ascending: Vec<f64> = self.num.coeffs().iter().rev().copied().collect();
        polynomial_roots(&ascending)
    }

    /// Largest pole magnitude, or `None` for a polynomial (FIR) system.
    pub fn pole_radius(&self) -> Option<f64> {
        let poles = self.poles();
        poles
            .into_iter()
            .map(|p| p.abs())
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// True if every pole lies strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        self.pole_radius().is_none_or(|r| r < 1.0)
    }
}

impl std::fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(num: &[f64], den: &[f64]) -> TransferFunction {
        TransferFunction::new(Polynomial::new(num.to_vec()), Polynomial::new(den.to_vec())).unwrap()
    }

    #[test]
    fn rejects_bad_denominators() {
        assert_eq!(
            TransferFunction::new(Polynomial::one(), Polynomial::zero()),
            Err(Error::ZeroDenominator)
        );
        assert_eq!(
            TransferFunction::new(Polynomial::one(), Polynomial::delay(1)),
            Err(Error::NonCausalDenominator)
        );
    }

    #[test]
    fn normalizes_leading_denominator() {
        let h = tf(&[2.0], &[4.0, 2.0]);
        assert_eq!(h.den().coeff(0), 1.0);
        assert_eq!(h.num().coeff(0), 0.5);
    }

    #[test]
    fn impulse_response_of_one_pole() {
        // H = 1 / (1 - 0.5 z^-1): h[k] = 0.5^k
        let h = tf(&[1.0], &[1.0, -0.5]);
        let r = h.impulse_response(5);
        for (k, v) in r.iter().enumerate() {
            assert!((v - 0.5f64.powi(k as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn step_response_settles_at_dc_gain() {
        let h = tf(&[1.0], &[1.0, -0.5]);
        let r = h.step_response(60);
        assert!((r[59] - 2.0).abs() < 1e-12);
        assert_eq!(h.dc_gain(), Some(2.0));
        assert_eq!(h.step_final_value().unwrap(), 2.0);
    }

    #[test]
    fn integrator_has_no_final_value() {
        // H = 1 / (1 - z^-1)
        let h = tf(&[1.0], &[1.0, -1.0]);
        assert_eq!(h.dc_gain(), None);
        assert_eq!(h.step_final_value(), Err(Error::FinalValueUndefined));
    }

    #[test]
    fn cancelled_integrator_has_final_value() {
        // H = (1 - z^-1) / (1 - z^-1) == 1 (after cancellation)
        let h = tf(&[1.0, -1.0], &[1.0, -1.0]);
        assert!((h.step_final_value().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_pole_rejects_final_value() {
        // H = 1 / (1 - 2 z^-1): pole at z = 2.
        let h = tf(&[1.0], &[1.0, -2.0]);
        assert_eq!(h.step_final_value(), Err(Error::FinalValueUndefined));
        assert!(!h.is_stable());
    }

    #[test]
    fn series_parallel_feedback_algebra() {
        let a = tf(&[1.0], &[1.0, -0.5]);
        let b = TransferFunction::delay(1);
        let s = a.series(&b);
        // impulse of series = impulse of a shifted by 1
        let ra = a.impulse_response(6);
        let rs = s.impulse_response(6);
        assert!(rs[0].abs() < 1e-12);
        for k in 1..6 {
            assert!((rs[k] - ra[k - 1]).abs() < 1e-12);
        }
        let p = a.parallel(&a);
        let rp = p.impulse_response(6);
        for k in 0..6 {
            assert!((rp[k] - 2.0 * ra[k]).abs() < 1e-12);
        }
        // unit feedback around integrator-ish plant stays causal
        let f = a.feedback(&TransferFunction::constant(1.0));
        assert!(f.den().coeff(0) == 1.0);
    }

    #[test]
    fn simplified_cancels_common_factor() {
        // H = (1 - z^-1)(1 + 0.5 z^-1) / (1 - z^-1)(1 - 0.5 z^-1)
        let common = Polynomial::new(vec![1.0, -1.0]);
        let num = common.mul(&Polynomial::new(vec![1.0, 0.5]));
        let den = common.mul(&Polynomial::new(vec![1.0, -0.5]));
        let h = TransferFunction::new(num, den).unwrap();
        let s = h.simplified(1e-9).unwrap();
        assert_eq!(s.den().degree(), Some(1));
        assert_eq!(s.num().degree(), Some(1));
        // same impulse response as the reduced system
        let want = tf(&[1.0, 0.5], &[1.0, -0.5]).impulse_response(20);
        let got = s.impulse_response(20);
        for k in 0..20 {
            assert!((got[k] - want[k]).abs() < 1e-9, "k={k}");
        }
        // and the unreduced one agrees too (cancellation is benign here)
        let raw = h.impulse_response(20);
        for k in 0..20 {
            assert!((raw[k] - want[k]).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn simplified_noop_for_coprime() {
        let h = tf(&[1.0, 0.3], &[1.0, -0.5]);
        let s = h.simplified(1e-9).unwrap();
        assert_eq!(s, h);
        let z =
            TransferFunction::new(Polynomial::zero(), Polynomial::new(vec![1.0, -0.5])).unwrap();
        let zs = z.simplified(1e-9).unwrap();
        assert!(zs.num().is_zero());
    }

    #[test]
    fn poles_of_known_system() {
        // den: (1 - 0.5 z^-1)(1 + 0.25 z^-1) -> poles at 0.5 and -0.25
        let den = Polynomial::new(vec![1.0, -0.5]).mul(&Polynomial::new(vec![1.0, 0.25]));
        let h = TransferFunction::new(Polynomial::one(), den).unwrap();
        let mut mags: Vec<f64> = h.poles().iter().map(|p| p.re).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mags[0] + 0.25).abs() < 1e-8);
        assert!((mags[1] - 0.5).abs() < 1e-8);
        assert!(h.is_stable());
    }

    #[test]
    fn delay_poles_at_origin() {
        let h = TransferFunction::delay(3);
        assert!(h.is_stable());
        assert_eq!(h.impulse_response(5), vec![0.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn response_to_arbitrary_input_is_linear() {
        let h = tf(&[1.0, 0.5], &[1.0, -0.3]);
        let r1 = h.response(20, |k| (k as f64).sin());
        let r2 = h.response(20, |k| 2.0 * (k as f64).sin());
        for k in 0..20 {
            assert!((r2[k] - 2.0 * r1[k]).abs() < 1e-12);
        }
    }
}
