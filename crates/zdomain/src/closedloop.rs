//! Closed-loop algebra of the paper's Fig. 4 discrete system.
//!
//! With control block `H(z) = N(z)/D(z)`, a clock-distribution delay of `M`
//! whole periods and the two-register pipeline of the loop, the paper
//! derives (its Eq. 4–5):
//!
//! ```text
//! H_lRO(z) = N(z) / (D(z) + N(z)·z^{−M−2})
//! H_δ(z)   = D(z) / (D(z) + N(z)·z^{−M−2})
//! ```
//!
//! driven by the combined input
//! `p(z) = c(z) + e(z)(1 − z^{−M−1})z^{−1} − μ(z)z^{−M−2}`.
//!
//! §III-A of the paper requires, for zero steady-state error under step
//! perturbations (its Eq. 6–8): `N(1) ≠ 0` and `D(1) = 0`.

use crate::error::Error;
use crate::poly::Polynomial;
use crate::stability::StabilityReport;
use crate::transfer::TransferFunction;

/// The closed-loop characteristic polynomial `D(z) + N(z) z^{−M−2}`.
pub fn characteristic_polynomial(h: &TransferFunction, m: usize) -> Polynomial {
    h.den().add(&h.num().shifted(m + 2))
}

/// `H_lRO(z)` of Eq. (4): response of the ring-oscillator length to the
/// combined input `p`.
pub fn length_transfer(h: &TransferFunction, m: usize) -> TransferFunction {
    TransferFunction::new(h.num().clone(), characteristic_polynomial(h, m))
        .expect("closed loop of a causal filter is causal")
}

/// `H_δ(z)` of Eq. (5): response of the adaptation error to the combined
/// input `p`.
pub fn error_transfer(h: &TransferFunction, m: usize) -> TransferFunction {
    TransferFunction::new(h.den().clone(), characteristic_polynomial(h, m))
        .expect("closed loop of a causal filter is causal")
}

/// The paper's Eq. (8) constraints on the control block: `N(1) ≠ 0` and
/// `D(1) = 0`, which by the final value theorem give a nonzero steady-state
/// `l_RO` correction (Eq. 6) and zero steady-state error `δ` (Eq. 7) under
/// step perturbations.
pub fn satisfies_constraints(h: &TransferFunction) -> bool {
    h.num().at_one().abs() > 1e-9 && h.den().at_one().abs() < 1e-9
}

/// Weights of the combined input
/// `p(z) = c(z)·W_c + e(z)·W_e + μ(z)·W_μ` with
/// `W_c = 1`, `W_e = (1 − z^{−M−1})·z^{−1}`, `W_μ = −z^{−M−2}`.
#[derive(Debug, Clone, PartialEq)]
pub struct InputWeights {
    /// Weight applied to the set-point `c`.
    pub setpoint: Polynomial,
    /// Weight applied to the homogeneous variation `e`.
    pub homogeneous: Polynomial,
    /// Weight applied to the heterogeneous variation `μ`.
    pub heterogeneous: Polynomial,
}

/// Input weights of the combined perturbation `p(z)` for CDN delay `M`.
pub fn input_weights(m: usize) -> InputWeights {
    let one = Polynomial::one();
    InputWeights {
        setpoint: one.clone(),
        homogeneous: one.sub(&Polynomial::delay(m + 1)).shifted(1),
        heterogeneous: Polynomial::delay(m + 2).scale(-1.0),
    }
}

/// Steady-state adaptation error `δ(∞)` for *step* inputs of the given
/// amplitudes on `c`, `e`, `μ`.
///
/// # Errors
///
/// Returns [`Error::FinalValueUndefined`] when the closed loop is unstable
/// or retains an uncancelled integrator.
pub fn steady_state_error(
    h: &TransferFunction,
    m: usize,
    c_step: f64,
    e_step: f64,
    mu_step: f64,
) -> Result<f64, Error> {
    let hd = error_transfer(h, m);
    let w = input_weights(m);
    // Response to each weighted step, summed (linearity). For a step of
    // amplitude A through weight W(z), the final value is A·W(1)·H_δ(1)
    // when H_δ has no pole at 1; more generally compose polynomials.
    let weighted_num = |wpoly: &Polynomial, amp: f64| -> Result<f64, Error> {
        let tf = TransferFunction::new(hd.num().mul(wpoly), hd.den().clone())?;
        Ok(amp * tf.step_final_value()?)
    };
    Ok(weighted_num(&w.setpoint, c_step)?
        + weighted_num(&w.homogeneous, e_step)?
        + weighted_num(&w.heterogeneous, mu_step)?)
}

/// Steady-state ring-oscillator length deviation `l_RO(∞)` for step inputs.
///
/// # Errors
///
/// Returns [`Error::FinalValueUndefined`] when the closed loop is unstable
/// or retains an uncancelled integrator.
pub fn steady_state_length(
    h: &TransferFunction,
    m: usize,
    c_step: f64,
    e_step: f64,
    mu_step: f64,
) -> Result<f64, Error> {
    let hl = length_transfer(h, m);
    let w = input_weights(m);
    let weighted = |wpoly: &Polynomial, amp: f64| -> Result<f64, Error> {
        let tf = TransferFunction::new(hl.num().mul(wpoly), hl.den().clone())?;
        Ok(amp * tf.step_final_value()?)
    };
    Ok(weighted(&w.setpoint, c_step)?
        + weighted(&w.homogeneous, e_step)?
        + weighted(&w.heterogeneous, mu_step)?)
}

/// Stability report of the closed loop for CDN delay `M`.
pub fn stability(h: &TransferFunction, m: usize) -> StabilityReport {
    StabilityReport::of(&characteristic_polynomial(h, m))
}

/// Largest CDN delay `M` (searched in `0..=max_m`) for which the closed
/// loop remains stable, or `None` if even `M = 0` is unstable.
///
/// This quantifies the paper's "clock domain size" limitation: the CDN
/// delay grows with the physical extent of the clock domain, and past this
/// bound the adaptive loop itself goes unstable.
pub fn max_stable_cdn_delay(h: &TransferFunction, max_m: usize) -> Option<usize> {
    let mut best = None;
    for m in 0..=max_m {
        if stability(h, m).is_stable() {
            best = Some(m);
        } else if best.is_some() {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iir_paper_filter;

    #[test]
    fn paper_filter_meets_constraints() {
        let h = iir_paper_filter();
        assert!(satisfies_constraints(&h));
        // N(1) = 1, D(1) = 4 - 4 = 0
        assert!((h.num().at_one() - 0.25).abs() < 1e-12); // normalized by 1/k* = 4
        assert!(h.den().at_one().abs() < 1e-12);
    }

    #[test]
    fn plain_gain_fails_constraints() {
        let h = TransferFunction::constant(1.0);
        assert!(!satisfies_constraints(&h));
    }

    #[test]
    fn characteristic_polynomial_shape() {
        let h = iir_paper_filter();
        let cp = characteristic_polynomial(&h, 1);
        // den degree 6, num shifted by 3 -> degree 4; total degree 6
        assert_eq!(cp.degree(), Some(6));
        // at M=1 the numerator's z^{-1} term is shifted to z^{-(1+M+2)} = z^{-4}
        assert!((cp.coeff(4) - (h.den().coeff(4) + h.num().coeff(1))).abs() < 1e-12);
    }

    #[test]
    fn zero_steady_state_error_for_setpoint_step() {
        let h = iir_paper_filter();
        for m in 0..4 {
            let e = steady_state_error(&h, m, 1.0, 0.0, 0.0).unwrap();
            assert!(e.abs() < 1e-9, "M={m}: residual error {e}");
        }
    }

    #[test]
    fn zero_steady_state_error_for_mismatch_step() {
        // Static heterogeneous mismatch must be fully compensated (this is
        // why the IIR RO wins in the paper's Fig. 9).
        let h = iir_paper_filter();
        let e = steady_state_error(&h, 1, 0.0, 0.0, 0.2 * 64.0).unwrap();
        assert!(e.abs() < 1e-9);
    }

    #[test]
    fn homogeneous_step_vanishes_in_steady_state() {
        // W_e(1) = (1 - 1)·1 = 0: a homogeneous step is invisible once it
        // has propagated through the CDN (RO and TDC cancel).
        let w = input_weights(3);
        assert!(w.homogeneous.at_one().abs() < 1e-12);
        let h = iir_paper_filter();
        let e = steady_state_error(&h, 3, 0.0, 5.0, 0.0).unwrap();
        assert!(e.abs() < 1e-9);
    }

    #[test]
    fn length_counteracts_mismatch_step() {
        // Eq. 6: l_RO settles at a nonzero value opposing the perturbation.
        let h = iir_paper_filter();
        let mu = 12.8; // 0.2c with c = 64
        let l = steady_state_length(&h, 1, 0.0, 0.0, mu).unwrap();
        // τ = l_RO + μ in steady state; δ = c - τ = 0 -> l_RO = -μ (for the
        // sign convention of p where μ enters with -z^{-M-2})
        assert!((l + mu).abs() < 1e-6, "l = {l}");
    }

    #[test]
    fn setpoint_step_moves_length_by_step() {
        let h = iir_paper_filter();
        let l = steady_state_length(&h, 2, 10.0, 0.0, 0.0).unwrap();
        assert!((l - 10.0).abs() < 1e-6, "l = {l}");
    }

    #[test]
    fn paper_loop_stable_for_small_m() {
        let h = iir_paper_filter();
        for m in 0..3 {
            let rep = stability(&h, m);
            assert!(rep.is_stable(), "loop must be stable at M={m}, got {rep:?}");
        }
    }

    #[test]
    fn stability_bound_exists() {
        let h = iir_paper_filter();
        let bound = max_stable_cdn_delay(&h, 200);
        let bound = bound.expect("stable at least for M=0");
        // The loop must eventually destabilize as CDN delay grows.
        assert!(bound < 200, "expected a finite stability bound");
        // And the bound must be consistent: M = bound stable, bound+1 not.
        assert!(stability(&h, bound).is_stable());
        assert!(!stability(&h, bound + 1).is_stable());
    }
}
