//! Dense polynomials in the delay operator `z⁻¹`.

use crate::complex::Complex;

/// A polynomial `p(z) = c₀ + c₁ z⁻¹ + c₂ z⁻² + …` in the delay operator.
///
/// Coefficient `k` multiplies `z⁻ᵏ`. Trailing (highest-delay) zero
/// coefficients are trimmed on construction so that two equal polynomials
/// compare equal regardless of how they were built.
///
/// # Example
///
/// ```
/// use zdomain::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, -1.0]); // 1 − z⁻¹
/// let q = Polynomial::new(vec![1.0, 1.0]);  // 1 + z⁻¹
/// assert_eq!(p.mul(&q), Polynomial::new(vec![1.0, 0.0, -1.0]));
/// assert_eq!(p.at_one(), 0.0); // the paper's D(1) = 0 constraint check
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build from coefficients `[c₀, c₁, …]` (ascending delay powers).
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Polynomial { coeffs: vec![1.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The pure delay `z⁻ᵐ`.
    pub fn delay(m: usize) -> Self {
        let mut coeffs = vec![0.0; m + 1];
        coeffs[m] = 1.0;
        Polynomial { coeffs }
    }

    fn trim(&mut self) {
        while self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree in `z⁻¹` (highest delay power), or `None` for zero.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Borrow the coefficients `[c₀, c₁, …]`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `z⁻ᵏ` (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Evaluate at a real point `z` (NOT at `z⁻¹`): computes `p` with
    /// `x = z⁻¹` substituted, i.e. `Σ cₖ z⁻ᵏ`.
    ///
    /// # Panics
    ///
    /// Panics if `z == 0` and the polynomial has delay terms.
    pub fn eval_z(&self, z: f64) -> f64 {
        if self.coeffs.len() > 1 {
            assert!(z != 0.0, "cannot evaluate delay terms at z = 0");
        }
        // Horner in x = 1/z.
        let x = if self.coeffs.len() > 1 { 1.0 / z } else { 0.0 };
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluate at a complex point `z` (substituting `x = z⁻¹`).
    pub fn eval_z_complex(&self, z: Complex) -> Complex {
        if self.coeffs.is_empty() {
            return Complex::ZERO;
        }
        let x = if self.coeffs.len() > 1 {
            z.recip()
        } else {
            Complex::ZERO
        };
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * x + Complex::from(c))
    }

    /// Evaluate the polynomial *in the variable* `x = z⁻¹` at a real `x`.
    pub fn eval_x(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Sum of coefficients — the value at `z = 1`. This is the quantity the
    /// paper's final-value constraints (Eq. 8) test: `N(1) ≠ 0`, `D(1) = 0`.
    pub fn at_one(&self) -> f64 {
        self.coeffs.iter().sum()
    }

    /// Add two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) + other.coeff(k)).collect();
        Polynomial::new(coeffs)
    }

    /// Subtract `other` from `self`.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) - other.coeff(k)).collect();
        Polynomial::new(coeffs)
    }

    /// Multiply two polynomials (convolution of coefficients).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Multiply by `z⁻ᵐ` (append `m` leading zero coefficients).
    pub fn shifted(&self, m: usize) -> Polynomial {
        if self.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; m];
        coeffs.extend_from_slice(&self.coeffs);
        Polynomial { coeffs }
    }

    /// Divide by `(1 − z⁻¹)` exactly.
    ///
    /// Returns `None` if the polynomial is not divisible (remainder ≠ 0
    /// within `tol`), i.e. if `p(1) ≠ 0`. Used to deflate the integrator
    /// pole when applying the final value theorem.
    pub fn deflate_unit_root(&self, tol: f64) -> Option<Polynomial> {
        if self.is_zero() {
            return Some(Polynomial::zero());
        }
        // p(x) = (1 - x) q(x)  with x = z^{-1}. Synthetic division by
        // (1 - x): q_k = p_k + q_{k-1}.
        let mut q = Vec::with_capacity(self.coeffs.len().saturating_sub(1));
        let mut carry = 0.0;
        for k in 0..self.coeffs.len() - 1 {
            carry += self.coeffs[k];
            q.push(carry);
        }
        let remainder = carry + self.coeffs[self.coeffs.len() - 1];
        let scale = self
            .coeffs
            .iter()
            .map(|c| c.abs())
            .fold(0.0, f64::max)
            .max(1.0);
        if remainder.abs() > tol * scale {
            return None;
        }
        Some(Polynomial::new(q))
    }

    /// Polynomial long division in the variable `x = z⁻¹`: returns
    /// `(quotient, remainder)` with `self = q·divisor + r` and
    /// `deg(r) < deg(divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Polynomial) -> (Polynomial, Polynomial) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        let dd = divisor.coeffs.len() - 1;
        let lead = divisor.coeffs[dd];
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Polynomial::zero(), self.clone());
        }
        let qn = rem.len() - dd;
        let mut quot = vec![0.0; qn];
        for k in (0..qn).rev() {
            let coef = rem[k + dd] / lead;
            quot[k] = coef;
            for (j, &dj) in divisor.coeffs.iter().enumerate() {
                rem[k + j] -= coef * dj;
            }
        }
        rem.truncate(dd);
        (Polynomial::new(quot), Polynomial::new(rem))
    }

    /// Approximate greatest common divisor via the Euclidean algorithm with
    /// a relative tolerance for declaring remainders zero. Returns a monic
    /// (leading coefficient 1 in `x`) polynomial; the GCD of anything with
    /// zero is the other argument (normalized).
    pub fn gcd(&self, other: &Polynomial, tol: f64) -> Polynomial {
        let monic = |p: &Polynomial| -> Polynomial {
            match p.coeffs.last() {
                Some(&l) if l != 0.0 => p.scale(1.0 / l),
                _ => p.clone(),
            }
        };
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let scale = b
                .coeffs
                .iter()
                .map(|c| c.abs())
                .fold(0.0, f64::max)
                .max(1.0);
            let (_, mut r) = a.div_rem(&b);
            // Snap tiny residues to zero for numerical robustness.
            let rmax = r.coeffs.iter().map(|c| c.abs()).fold(0.0, f64::max);
            if rmax <= tol * scale {
                r = Polynomial::zero();
            }
            a = b;
            b = r;
        }
        monic(&a)
    }

    /// Coefficients in *ascending powers of `z`* after clearing delays:
    /// multiplies by `z^deg` and returns `[a₀, a₁, …, a_deg]` where
    /// `a_k` multiplies `z^k`. For `p = c₀ + c₁ z⁻¹ + … + c_d z⁻ᵈ` this is
    /// simply the reversed coefficient list. Returns an empty vector for the
    /// zero polynomial.
    pub fn as_z_polynomial(&self) -> Vec<f64> {
        self.coeffs.iter().rev().copied().collect()
    }
}

impl std::ops::Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        Polynomial::add(self, rhs)
    }
}

impl std::ops::Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        Polynomial::sub(self, rhs)
    }
}

impl std::ops::Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        Polynomial::mul(self, rhs)
    }
}

impl std::ops::Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            if first {
                first = false;
                if k == 0 {
                    write!(f, "{c}")?;
                } else {
                    write!(f, "{c}·z^-{k}")?;
                }
            } else if c >= 0.0 {
                if k == 0 {
                    write!(f, " + {c}")?;
                } else {
                    write!(f, " + {c}·z^-{k}")?;
                }
            } else if k == 0 {
                write!(f, " - {}", -c)?;
            } else {
                write!(f, " - {}·z^-{k}", -c)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p, Polynomial::new(vec![1.0, 2.0]));
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.at_one(), 0.0);
        assert_eq!(Polynomial::new(vec![0.0, 0.0]), z);
    }

    #[test]
    fn eval_matches_hand_computation() {
        // p = 1 + 2 z^-1 + 3 z^-2 at z = 2: 1 + 1 + 0.75
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert!((p.eval_z(2.0) - 2.75).abs() < 1e-12);
        assert!((p.at_one() - 6.0).abs() < 1e-12);
        assert!((p.eval_x(0.5) - 2.75).abs() < 1e-12);
    }

    #[test]
    fn eval_complex_on_unit_circle() {
        // p = z^-1 evaluated at e^{iw} must have magnitude 1
        let p = Polynomial::delay(1);
        let v = p.eval_z_complex(Complex::unit_circle(0.7));
        assert!((v.abs() - 1.0).abs() < 1e-12);
        assert!((v.arg() + 0.7).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Polynomial::new(vec![1.0, 1.0]);
        let b = Polynomial::new(vec![1.0, -1.0]);
        assert_eq!(a.add(&b), Polynomial::new(vec![2.0]));
        assert_eq!(a.sub(&b), Polynomial::new(vec![0.0, 2.0]));
        // (1 + x)(1 - x) = 1 - x^2
        assert_eq!(a.mul(&b), Polynomial::new(vec![1.0, 0.0, -1.0]));
        assert_eq!(a.scale(3.0), Polynomial::new(vec![3.0, 3.0]));
    }

    #[test]
    fn shift_is_delay_multiplication() {
        let p = Polynomial::new(vec![1.0, 2.0]);
        assert_eq!(p.shifted(2), Polynomial::new(vec![0.0, 0.0, 1.0, 2.0]));
        assert_eq!(p.shifted(0), p);
        assert_eq!(Polynomial::zero().shifted(3), Polynomial::zero());
        assert_eq!(Polynomial::delay(3).coeff(3), 1.0);
    }

    #[test]
    fn deflate_unit_root_exact() {
        // (1 - x)(2 + x) = 2 - x - x^2
        let p = Polynomial::new(vec![2.0, -1.0, -1.0]);
        let q = p.deflate_unit_root(1e-12).unwrap();
        assert_eq!(q, Polynomial::new(vec![2.0, 1.0]));
    }

    #[test]
    fn deflate_unit_root_rejects_nondivisible() {
        let p = Polynomial::new(vec![1.0, 1.0]);
        assert!(p.deflate_unit_root(1e-12).is_none());
    }

    #[test]
    fn as_z_polynomial_reverses() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.as_z_polynomial(), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn div_rem_reconstructs() {
        // self = q·d + r for a few hand cases
        let p = Polynomial::new(vec![1.0, 0.0, -2.0, 3.0]);
        let d = Polynomial::new(vec![1.0, 1.0]);
        let (q, r) = p.div_rem(&d);
        let back = q.mul(&d).add(&r);
        for k in 0..4 {
            assert!((back.coeff(k) - p.coeff(k)).abs() < 1e-12, "k={k}");
        }
        assert!(r.degree().is_none_or(|dr| dr < 1));
    }

    #[test]
    fn div_rem_small_dividend() {
        let p = Polynomial::new(vec![5.0]);
        let d = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let (q, r) = p.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, p);
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn div_by_zero_panics() {
        let _ = Polynomial::one().div_rem(&Polynomial::zero());
    }

    #[test]
    fn gcd_of_shared_factor() {
        // (1 + x)(1 - 2x) and (1 + x)(3 + x): gcd should be ~ (1 + x)
        let shared = Polynomial::new(vec![1.0, 1.0]);
        let a = shared.mul(&Polynomial::new(vec![1.0, -2.0]));
        let b = shared.mul(&Polynomial::new(vec![3.0, 1.0]));
        let g = a.gcd(&b, 1e-9);
        // monic in x: (1 + x) scaled so leading coeff is 1 -> [1, 1]
        assert_eq!(g.degree(), Some(1));
        assert!((g.coeff(1) - 1.0).abs() < 1e-9);
        assert!((g.coeff(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gcd_of_coprime_is_constant() {
        let a = Polynomial::new(vec![1.0, 1.0]);
        let b = Polynomial::new(vec![1.0, -1.0]);
        let g = a.gcd(&b, 1e-9);
        assert_eq!(g.degree(), Some(0));
    }

    #[test]
    fn operator_sugar() {
        let a = Polynomial::new(vec![1.0, 2.0]);
        let b = Polynomial::new(vec![3.0, -1.0]);
        assert_eq!(&a + &b, a.add(&b));
        assert_eq!(&a - &b, a.sub(&b));
        assert_eq!(&a * &b, a.mul(&b));
        assert_eq!(-&a, a.scale(-1.0));
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::new(vec![4.0, 0.0, -2.0]);
        assert_eq!(p.to_string(), "4 - 2·z^-2");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }
}
