//! Frequency response of discrete transfer functions.

use crate::complex::Complex;
use crate::transfer::TransferFunction;

/// Frequency response samples of a transfer function evaluated on the unit
/// circle, `H(e^{jω})` for `ω ∈ [0, π]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    omegas: Vec<f64>,
    values: Vec<Complex>,
}

impl FrequencyResponse {
    /// Sample `h` at `n` evenly spaced frequencies from DC to Nyquist
    /// (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample(h: &TransferFunction, n: usize) -> Self {
        assert!(n >= 2, "need at least two frequency points");
        let omegas: Vec<f64> = (0..n)
            .map(|k| std::f64::consts::PI * k as f64 / (n - 1) as f64)
            .collect();
        let values = omegas
            .iter()
            .map(|&w| h.eval(Complex::unit_circle(w)))
            .collect();
        FrequencyResponse { omegas, values }
    }

    /// Sample `h` at arbitrary angular frequencies (radians/sample).
    pub fn at(h: &TransferFunction, omegas: &[f64]) -> Self {
        let values = omegas
            .iter()
            .map(|&w| h.eval(Complex::unit_circle(w)))
            .collect();
        FrequencyResponse {
            omegas: omegas.to_vec(),
            values,
        }
    }

    /// The angular frequencies (radians/sample).
    pub fn omegas(&self) -> &[f64] {
        &self.omegas
    }

    /// Complex response values.
    pub fn values(&self) -> &[Complex] {
        &self.values
    }

    /// Magnitude response `|H|`.
    pub fn magnitudes(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.abs()).collect()
    }

    /// Magnitude response in decibels.
    pub fn magnitudes_db(&self) -> Vec<f64> {
        self.values.iter().map(|v| 20.0 * v.abs().log10()).collect()
    }

    /// Phase response in radians.
    pub fn phases(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.arg()).collect()
    }

    /// Peak magnitude over the sampled band and the frequency at which it
    /// occurs, or `None` if empty.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.omegas
            .iter()
            .zip(self.values.iter())
            .map(|(&w, v)| (w, v.abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(w, m)| (m, w))
    }

    /// Group delay in samples, `−dφ/dω`, estimated by central differences
    /// of the unwrapped phase. Returns one value per interior frequency
    /// point (length `n − 2`); empty when fewer than 3 points were sampled.
    ///
    /// For a pure delay `z⁻ᵐ` this is `m` everywhere — the clock loop's
    /// CDN depth read straight off the frequency response.
    pub fn group_delay(&self) -> Vec<f64> {
        if self.omegas.len() < 3 {
            return Vec::new();
        }
        // unwrap phases
        let mut phases: Vec<f64> = self.values.iter().map(|v| v.arg()).collect();
        for k in 1..phases.len() {
            let mut d = phases[k] - phases[k - 1];
            while d > std::f64::consts::PI {
                d -= std::f64::consts::TAU;
            }
            while d < -std::f64::consts::PI {
                d += std::f64::consts::TAU;
            }
            phases[k] = phases[k - 1] + d;
        }
        (1..phases.len() - 1)
            .map(|k| -(phases[k + 1] - phases[k - 1]) / (self.omegas[k + 1] - self.omegas[k - 1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Polynomial;

    fn tf(num: &[f64], den: &[f64]) -> TransferFunction {
        TransferFunction::new(Polynomial::new(num.to_vec()), Polynomial::new(den.to_vec())).unwrap()
    }

    #[test]
    fn delay_has_flat_magnitude() {
        let h = TransferFunction::delay(4);
        let fr = FrequencyResponse::sample(&h, 33);
        for m in fr.magnitudes() {
            assert!((m - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_pole_lowpass_shape() {
        // H = 0.5 / (1 - 0.5 z^-1): DC gain 1, decreasing magnitude
        let h = tf(&[0.5], &[1.0, -0.5]);
        let fr = FrequencyResponse::sample(&h, 64);
        let mags = fr.magnitudes();
        assert!((mags[0] - 1.0).abs() < 1e-12);
        for w in mags.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "magnitude must be non-increasing");
        }
        // Nyquist gain = 0.5/1.5
        assert!((mags[63] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn peak_found_at_resonance() {
        // resonant pole pair near w ~ 1.0
        let r: f64 = 0.95;
        let w0: f64 = 1.0;
        let den = Polynomial::new(vec![1.0, -2.0 * r * w0.cos(), r * r]);
        let h = TransferFunction::new(Polynomial::one(), den).unwrap();
        let fr = FrequencyResponse::sample(&h, 512);
        let (peak_mag, peak_w) = fr.peak().unwrap();
        assert!((peak_w - w0).abs() < 0.05, "peak at {peak_w}");
        assert!(peak_mag > 5.0);
    }

    #[test]
    fn db_conversion() {
        let h = TransferFunction::constant(10.0);
        let fr = FrequencyResponse::sample(&h, 4);
        for db in fr.magnitudes_db() {
            assert!((db - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn group_delay_of_pure_delay_is_flat() {
        let h = TransferFunction::delay(5);
        // avoid ω = 0 and π endpoints where phase unwrapping is touchy
        let omegas: Vec<f64> = (1..200).map(|k| k as f64 * 0.015).collect();
        let fr = FrequencyResponse::at(&h, &omegas);
        for (k, gd) in fr.group_delay().iter().enumerate() {
            assert!((gd - 5.0).abs() < 1e-6, "k={k}: group delay {gd}");
        }
    }

    #[test]
    fn group_delay_needs_three_points() {
        let h = TransferFunction::delay(1);
        let fr = FrequencyResponse::at(&h, &[0.1, 0.2]);
        assert!(fr.group_delay().is_empty());
    }

    #[test]
    fn group_delay_of_one_pole_is_positive_near_dc() {
        // H = 1/(1 - 0.5 z^-1): group delay at DC = 0.5/(1-0.5) = 1
        let h = tf(&[1.0], &[1.0, -0.5]);
        let omegas: Vec<f64> = (1..50).map(|k| k as f64 * 0.002).collect();
        let fr = FrequencyResponse::at(&h, &omegas);
        let gd = fr.group_delay();
        assert!((gd[0] - 1.0).abs() < 0.01, "near-DC group delay {}", gd[0]);
    }

    #[test]
    fn custom_frequency_grid() {
        let h = TransferFunction::constant(2.0);
        let fr = FrequencyResponse::at(&h, &[0.1, 0.2]);
        assert_eq!(fr.omegas(), &[0.1, 0.2]);
        assert_eq!(fr.values().len(), 2);
    }
}
