//! Exact rational arithmetic over `i128`.
//!
//! Used for exact verification of filter-coefficient identities (the paper's
//! Eq. 10, `k* = (Σ kᵢ)⁻¹`) and as the reference implementation that the
//! integer power-of-two IIR control block is validated against.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::error::Error;

/// An exact rational number `num/den` with `den > 0`, always stored in
/// lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Exact zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den` reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroRationalDenominator`] if `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Self, Error> {
        if den == 0 {
            return Err(Error::ZeroRationalDenominator);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Ok(Rational {
            num: sign * num / g,
            den: sign * den / g,
        })
    }

    /// Construct from an integer.
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// The exact power of two `2^exp` (negative exponents allowed).
    ///
    /// # Panics
    ///
    /// Panics if `|exp| >= 127`.
    pub fn pow2(exp: i32) -> Self {
        assert!(exp.unsigned_abs() < 127, "power-of-two exponent too large");
        if exp >= 0 {
            Rational {
                num: 1i128 << exp,
                den: 1,
            }
        } else {
            Rational {
                num: 1,
                den: 1i128 << (-exp),
            }
        }
    }

    /// Numerator (after reduction; sign lives here).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroRationalDenominator`] for zero.
    pub fn recip(&self) -> Result<Self, Error> {
        Rational::new(self.den, self.num)
    }

    /// Nearest `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Floor to the nearest integer toward −∞.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn make(num: i128, den: i128) -> Rational {
        Rational::new(num, den).expect("internal arithmetic keeps den nonzero")
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::make(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::make(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "rational division by zero");
        Rational::make(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Rational::new(6, -4).unwrap();
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
        assert_eq!(r.to_string(), "-3/2");
    }

    #[test]
    fn rejects_zero_denominator() {
        assert_eq!(Rational::new(1, 0), Err(Error::ZeroRationalDenominator));
    }

    #[test]
    fn pow2_positive_and_negative() {
        assert_eq!(Rational::pow2(3), Rational::from_int(8));
        assert_eq!(Rational::pow2(-2), Rational::new(1, 4).unwrap());
        assert_eq!(Rational::pow2(0), Rational::ONE);
    }

    #[test]
    fn paper_gain_identity_eq10() {
        // k = [2, 1, 1/2, 1/4, 1/8, 1/8]; sum = 4; k* = 1/4 = 1/sum.
        let k = [
            Rational::from_int(2),
            Rational::from_int(1),
            Rational::pow2(-1),
            Rational::pow2(-2),
            Rational::pow2(-3),
            Rational::pow2(-3),
        ];
        let sum = k.iter().copied().fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(sum, Rational::from_int(4));
        assert_eq!(sum.recip().unwrap(), Rational::pow2(-2));
    }

    #[test]
    fn floor_rounds_toward_negative_infinity() {
        assert_eq!(Rational::new(-3, 2).unwrap().floor(), -2);
        assert_eq!(Rational::new(3, 2).unwrap().floor(), 1);
        assert_eq!(Rational::from_int(5).floor(), 5);
    }

    #[test]
    fn ordering() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 2).unwrap();
        assert!(a < b);
        assert!(-a > -b);
    }

    proptest! {
        #[test]
        fn field_axioms(
            an in -1000i128..1000, ad in 1i128..100,
            bn in -1000i128..1000, bd in 1i128..100,
        ) {
            let a = Rational::new(an, ad).unwrap();
            let b = Rational::new(bn, bd).unwrap();
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a - b) + b, a);
            if bn != 0 {
                prop_assert_eq!((a / b) * b, a);
            }
        }

        #[test]
        fn to_f64_close(an in -10_000i128..10_000, ad in 1i128..10_000) {
            let a = Rational::new(an, ad).unwrap();
            let expected = an as f64 / ad as f64;
            prop_assert!((a.to_f64() - expected).abs() < 1e-9);
        }
    }
}
