//! Polynomial root finding via the Durand–Kerner (Weierstrass) iteration.

use crate::complex::Complex;

/// All complex roots of `c₀ + c₁ z + … + cₙ zⁿ` (coefficients ascending).
///
/// Leading zero coefficients are trimmed; a constant (or empty) polynomial
/// has no roots and returns an empty vector. The Durand–Kerner iteration is
/// run to fixed tolerance with a deterministic non-real starting spread, so
/// results are reproducible.
///
/// Accuracy is adequate for stability analysis (|error| ≲ 1e-8 for the
/// well-conditioned low-degree polynomials this workspace produces); it is
/// not a general-purpose ill-conditioned-polynomial solver.
pub fn polynomial_roots(coeffs: &[f64]) -> Vec<Complex> {
    // Trim leading (highest-power) zeros.
    let mut n = coeffs.len();
    while n > 0 && coeffs[n - 1] == 0.0 {
        n -= 1;
    }
    if n <= 1 {
        return Vec::new();
    }
    let deg = n - 1;
    // Normalize to monic.
    let lead = coeffs[n - 1];
    let monic: Vec<f64> = coeffs[..n].iter().map(|c| c / lead).collect();

    // Factor out roots at the origin (trailing zero coefficients) exactly.
    let zeros_at_origin = monic.iter().take_while(|&&c| c == 0.0).count();
    let reduced = &monic[zeros_at_origin..];
    let rdeg = deg - zeros_at_origin;
    let mut roots = vec![Complex::ZERO; zeros_at_origin];
    if rdeg == 0 {
        return roots;
    }

    // Initial guesses: spiral of radius based on coefficient bound.
    let radius = 1.0
        + reduced
            .iter()
            .take(rdeg)
            .map(|c| c.abs())
            .fold(0.0, f64::max);
    let mut guess: Vec<Complex> = (0..rdeg)
        .map(|k| {
            Complex::from_polar(
                radius * (0.5 + 0.5 * (k as f64 + 1.0) / rdeg as f64),
                (2.0 * std::f64::consts::PI * k as f64) / rdeg as f64 + 0.4,
            )
        })
        .collect();

    let eval = |z: Complex| -> Complex {
        reduced
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::from(c))
    };

    const MAX_ITER: usize = 500;
    for _ in 0..MAX_ITER {
        let mut max_step = 0.0f64;
        for i in 0..rdeg {
            let zi = guess[i];
            let mut denom = Complex::ONE;
            for (j, &zj) in guess.iter().enumerate() {
                if j != i {
                    denom *= zi - zj;
                }
            }
            if denom.norm_sqr() == 0.0 {
                // Perturb coincident guesses.
                guess[i] = zi + Complex::new(1e-6, 1e-6);
                max_step = f64::INFINITY;
                continue;
            }
            let step = eval(zi) / denom;
            guess[i] = zi - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-13 {
            break;
        }
    }
    roots.extend(guess);
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_by_re(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    #[test]
    fn constant_and_empty_have_no_roots() {
        assert!(polynomial_roots(&[]).is_empty());
        assert!(polynomial_roots(&[3.0]).is_empty());
        assert!(polynomial_roots(&[3.0, 0.0]).is_empty());
    }

    #[test]
    fn linear_root() {
        // 2 + 4z = 0 -> z = -0.5
        let r = polynomial_roots(&[2.0, 4.0]);
        assert_eq!(r.len(), 1);
        assert!((r[0] - Complex::new(-0.5, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn quadratic_real_roots() {
        // (z-1)(z-3) = 3 - 4z + z^2
        let r = sort_by_re(polynomial_roots(&[3.0, -4.0, 1.0]));
        assert!((r[0] - Complex::new(1.0, 0.0)).abs() < 1e-8);
        assert!((r[1] - Complex::new(3.0, 0.0)).abs() < 1e-8);
    }

    #[test]
    fn quadratic_complex_pair() {
        // z^2 + 1 -> ±i
        let r = polynomial_roots(&[1.0, 0.0, 1.0]);
        let mut mags: Vec<f64> = r.iter().map(|z| z.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mags[0] - 1.0).abs() < 1e-8);
        assert!((mags[1] - 1.0).abs() < 1e-8);
        assert!(r.iter().any(|z| z.im > 0.9));
        assert!(r.iter().any(|z| z.im < -0.9));
    }

    #[test]
    fn roots_at_origin_factored_exactly() {
        // z^2 (z - 2) = -2 z^2 + z^3
        let r = sort_by_re(polynomial_roots(&[0.0, 0.0, -2.0, 1.0]));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], Complex::ZERO);
        assert_eq!(r[1], Complex::ZERO);
        assert!((r[2] - Complex::new(2.0, 0.0)).abs() < 1e-8);
    }

    #[test]
    fn degree_five_known_roots() {
        // (z-1)(z+1)(z-2)(z+2)(z-3) = expand:
        // (z^2-1)(z^2-4)(z-3) = (z^4 -5z^2 +4)(z-3)
        // = z^5 -3z^4 -5z^3 +15z^2 +4z -12
        let r = sort_by_re(polynomial_roots(&[-12.0, 4.0, 15.0, -5.0, -3.0, 1.0]));
        let expected = [-2.0, -1.0, 1.0, 2.0, 3.0];
        for (root, exp) in r.iter().zip(expected) {
            assert!((root.re - exp).abs() < 1e-7, "{root} vs {exp}");
            assert!(root.im.abs() < 1e-7);
        }
    }

    #[test]
    fn reconstruction_property() {
        // product over roots of (z - r) should reproduce a monic polynomial
        let coeffs = [0.5, -1.3, 0.7, 1.0];
        let roots = polynomial_roots(&coeffs);
        assert_eq!(roots.len(), 3);
        // evaluate original at each root: should be ~0
        for z in roots {
            let v = coeffs
                .iter()
                .rev()
                .fold(Complex::ZERO, |acc, &c| acc * z + Complex::from(c));
            assert!(v.abs() < 1e-8, "residual {v}");
        }
    }
}
