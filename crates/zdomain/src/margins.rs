//! Classical loop margins and sensitivity analysis of the adaptive-clock
//! control loop.
//!
//! The loop's *sensitivity function* is exactly the paper's `H_δ(z)`
//! (Eq. 5): it maps perturbations to residual timing error. Its magnitude
//! on the unit circle therefore *predicts* the time-domain figures:
//!
//! * `|H_δ(e^{jω})| < 1` — the loop attenuates perturbations of that
//!   frequency (the sub-1 region of the paper's Fig. 8 lower panel);
//! * `|H_δ(e^{jω})| > 1` — the loop *amplifies* them (the above-1 hump at
//!   `T_e/c ≈ 2–10`), a consequence of Bode's sensitivity integral: the
//!   attenuation bought at low frequency must be paid back somewhere.
//!
//! Gain/phase margins of the open loop `L(z) = H(z)·z^{−M−2}` quantify how
//! far the loop is from instability as the CDN delay `M` grows — the
//! z-domain version of the paper's clock-domain-size warning.

use crate::complex::Complex;
use crate::transfer::TransferFunction;

/// Classical stability margins of an open-loop transfer function under
/// unit negative feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopMargins {
    /// Gain margin (linear factor; > 1 means stable headroom), with the
    /// phase-crossover frequency (rad/sample). `None` when the phase never
    /// crosses −180° in `(0, π)`.
    pub gain_margin: Option<(f64, f64)>,
    /// Phase margin in degrees, with the gain-crossover frequency.
    /// `None` when the magnitude never crosses 1.
    pub phase_margin_deg: Option<(f64, f64)>,
}

/// Compute gain/phase margins of `open_loop` by dense unit-circle sampling
/// (`n` points) with linear interpolation at the crossings.
///
/// # Panics
///
/// Panics if `n < 16`.
pub fn loop_margins(open_loop: &TransferFunction, n: usize) -> LoopMargins {
    assert!(n >= 16, "need a reasonable frequency grid");
    // Avoid ω = 0 exactly (integrating loops have |L| → ∞ there) but
    // include ω = π, where real-coefficient loops often attain −180°.
    let omegas: Vec<f64> = (1..=n)
        .map(|k| std::f64::consts::PI * k as f64 / n as f64)
        .collect();
    let values: Vec<Complex> = omegas
        .iter()
        .map(|&w| open_loop.eval(Complex::unit_circle(w)))
        .collect();
    let mags: Vec<f64> = values.iter().map(|v| v.abs()).collect();
    // Unwrapped phase, in radians.
    let mut phases: Vec<f64> = values.iter().map(|v| v.arg()).collect();
    for k in 1..phases.len() {
        let mut d = phases[k] - phases[k - 1];
        while d > std::f64::consts::PI {
            d -= std::f64::consts::TAU;
        }
        while d < -std::f64::consts::PI {
            d += std::f64::consts::TAU;
        }
        phases[k] = phases[k - 1] + d;
    }

    // Phase crossover: phase passes -π (mod 2π) — search unwrapped phase
    // for crossings of −π − 2πk for small k. Loops whose phase only
    // *touches* −π at the Nyquist endpoint (e.g. a pure delayed gain)
    // count as crossing there.
    let mut gain_margin = None;
    'outer: for kk in 0..4 {
        let target = -std::f64::consts::PI - kk as f64 * std::f64::consts::TAU;
        for k in 1..phases.len() {
            let (a, b) = (phases[k - 1] - target, phases[k] - target);
            if a == 0.0 || a * b < 0.0 || (k == phases.len() - 1 && b.abs() < 1e-6) {
                let t = if (a - b).abs() < 1e-30 {
                    1.0
                } else {
                    a / (a - b)
                };
                let t = t.clamp(0.0, 1.0);
                let w = omegas[k - 1] + t * (omegas[k] - omegas[k - 1]);
                let m = mags[k - 1] + t * (mags[k] - mags[k - 1]);
                if m > 0.0 {
                    gain_margin = Some((1.0 / m, w));
                    break 'outer;
                }
            }
        }
    }

    // Gain crossover: |L| passes 1.
    let mut phase_margin_deg = None;
    for k in 1..mags.len() {
        let (a, b) = (mags[k - 1] - 1.0, mags[k] - 1.0);
        if a == 0.0 || a * b < 0.0 {
            let t = a / (a - b);
            let w = omegas[k - 1] + t * (omegas[k] - omegas[k - 1]);
            let ph = phases[k - 1] + t * (phases[k] - phases[k - 1]);
            let pm = 180.0 + ph.to_degrees();
            phase_margin_deg = Some((pm, w));
            break;
        }
    }

    LoopMargins {
        gain_margin,
        phase_margin_deg,
    }
}

/// `|H_δ(e^{jω})|` — the loop's perturbation amplification at angular
/// frequency `ω` (rad/sample). Use
/// [`sensitivity_at_period`] for the paper's `T_e`-based parameterization.
pub fn sensitivity_magnitude(error_tf: &TransferFunction, omega: f64) -> f64 {
    error_tf.eval(Complex::unit_circle(omega)).abs()
}

/// `|H_δ|` at a perturbation of period `te_periods` *clock periods*
/// (`ω = 2π / T_e`).
///
/// # Panics
///
/// Panics if `te_periods < 2` (beyond Nyquist).
pub fn sensitivity_at_period(error_tf: &TransferFunction, te_periods: f64) -> f64 {
    assert!(te_periods >= 2.0, "perturbation period must be ≥ 2 samples");
    sensitivity_magnitude(error_tf, std::f64::consts::TAU / te_periods)
}

/// Peak sensitivity `max_ω |H_δ(e^{jω})|` over `(0, π]` and the frequency
/// where it occurs. The classical `M_s` robustness measure: the paper's
/// "worst perturbation frequency".
pub fn sensitivity_peak(error_tf: &TransferFunction, n: usize) -> (f64, f64) {
    assert!(n >= 16, "need a reasonable frequency grid");
    (1..=n)
        .map(|k| {
            let w = std::f64::consts::PI * k as f64 / n as f64;
            (sensitivity_magnitude(error_tf, w), w)
        })
        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite magnitudes"))
        .expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closedloop;
    use crate::iir_paper_filter;
    use crate::poly::Polynomial;

    fn open_loop(m: usize) -> TransferFunction {
        iir_paper_filter().series(&TransferFunction::delay(m + 2))
    }

    #[test]
    fn margins_shrink_as_cdn_delay_grows() {
        let pm = |m: usize| {
            loop_margins(&open_loop(m), 4096)
                .phase_margin_deg
                .expect("loop crosses unity gain")
                .0
        };
        let pm1 = pm(1);
        let pm4 = pm(4);
        let pm8 = pm(8);
        assert!(pm1 > pm4 && pm4 > pm8, "{pm1} > {pm4} > {pm8} expected");
        assert!(pm1 > 0.0, "stable loop must have positive phase margin");
    }

    #[test]
    fn phase_margin_sign_matches_stability_boundary() {
        // From the closed-loop analysis the boundary is M = 10.
        let pm_stable = loop_margins(&open_loop(10), 8192)
            .phase_margin_deg
            .expect("crossing exists")
            .0;
        let pm_unstable = loop_margins(&open_loop(11), 8192)
            .phase_margin_deg
            .expect("crossing exists")
            .0;
        assert!(
            pm_stable > 0.0 && pm_unstable < 0.0,
            "phase margin must change sign at the boundary: {pm_stable} / {pm_unstable}"
        );
    }

    #[test]
    fn gain_margin_exists_and_exceeds_one_when_stable() {
        let gm = loop_margins(&open_loop(1), 8192)
            .gain_margin
            .expect("phase crosses -180 for a delayed loop")
            .0;
        assert!(gm > 1.0, "stable loop gain margin {gm}");
    }

    #[test]
    fn sensitivity_small_at_low_frequency_humped_in_middle() {
        let hd = closedloop::error_transfer(&iir_paper_filter(), 1);
        // At Te = 1000 periods: strong attenuation.
        let low = sensitivity_at_period(&hd, 1000.0);
        assert!(low < 0.1, "low-frequency sensitivity {low}");
        // Peak above 1 somewhere (Bode integral waterbed).
        let (peak, w_peak) = sensitivity_peak(&hd, 4096);
        assert!(peak > 1.0, "sensitivity peak {peak}");
        assert!(w_peak > 0.0 && w_peak <= std::f64::consts::PI);
        // At DC-adjacent frequency the integrator kills the error entirely.
        let near_dc = sensitivity_magnitude(&hd, 1e-4);
        assert!(near_dc < 1e-3, "near-DC sensitivity {near_dc}");
    }

    #[test]
    fn sensitivity_predicts_amplification_band() {
        // The Fig. 8 lower hump: around Te ≈ 10–20 periods the loop
        // amplifies (peak ≈ 1.42 at Te ≈ 13.7); by Te = 50 it attenuates.
        let hd = closedloop::error_transfer(&iir_paper_filter(), 1);
        assert!(sensitivity_at_period(&hd, 10.0) > 1.0);
        assert!(sensitivity_at_period(&hd, 15.0) > 1.3);
        assert!(sensitivity_at_period(&hd, 50.0) < 1.0);
        let (_, w_peak) = sensitivity_peak(&hd, 4096);
        let te_peak = std::f64::consts::TAU / w_peak;
        assert!(
            (10.0..20.0).contains(&te_peak),
            "peak at Te = {te_peak} periods"
        );
    }

    #[test]
    fn unity_loop_has_textbook_margins() {
        // L = 0.5·z⁻¹: |L| never reaches 1 -> no phase margin entry; phase
        // reaches -180° at ω = π with |L| = 0.5 -> gain margin 2.
        let l = TransferFunction::new(Polynomial::new(vec![0.0, 0.5]), Polynomial::one()).unwrap();
        let m = loop_margins(&l, 4096);
        assert!(m.phase_margin_deg.is_none());
        let (gm, w) = m.gain_margin.expect("phase crossover at Nyquist");
        assert!((gm - 2.0).abs() < 0.01, "gain margin {gm}");
        assert!((w - std::f64::consts::PI).abs() < 0.01);
    }
}
