//! Modal (partial-fraction) decomposition of discrete transfer functions.
//!
//! A proper rational `H(z)` with *simple* poles `p_i` splits as
//!
//! ```text
//! H(z) = D(z)  +  Σ_i  r_i / (1 − p_i z⁻¹)
//! ```
//!
//! where `D` is a finite direct (FIR) part. The impulse response is then a
//! sum of geometric modes `h[k] = d[k] + Σ_i r_i p_i^k` — which is how the
//! adaptive-clock loop's transient decomposes into a dominant settling mode
//! (the spectral radius) plus faster ringing terms. Used by the ablation
//! analyses to *explain* settling times, not just measure them.

use crate::complex::Complex;
use crate::error::Error;
use crate::poly::Polynomial;
use crate::roots::polynomial_roots;
use crate::transfer::TransferFunction;

/// One first-order mode `r / (1 − p z⁻¹)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Pole location in the `z` plane.
    pub pole: Complex,
    /// Residue (mode amplitude).
    pub residue: Complex,
}

impl Mode {
    /// The mode's contribution to the impulse response at sample `k`.
    pub fn sample(&self, k: usize) -> Complex {
        // p^k by repeated squaring is overkill for the sizes used here
        let mut acc = Complex::ONE;
        for _ in 0..k {
            acc *= self.pole;
        }
        self.residue * acc
    }

    /// Time constant in samples (`−1/ln|p|`), or `None` for `|p| ≥ 1`.
    pub fn time_constant(&self) -> Option<f64> {
        let m = self.pole.abs();
        if m >= 1.0 || m == 0.0 {
            None
        } else {
            Some(-1.0 / m.ln())
        }
    }
}

/// A complete modal decomposition.
///
/// # Example
///
/// ```
/// use zdomain::modal::ModalDecomposition;
/// use zdomain::{closedloop, iir_paper_filter};
///
/// # fn main() -> Result<(), zdomain::Error> {
/// let hd = closedloop::error_transfer(&iir_paper_filter(), 1);
/// let modes = ModalDecomposition::of(&hd)?;
/// let dominant = modes.dominant().expect("loop has poles");
/// // the slowest mode sets the settling rate of the adaptation error
/// assert!(dominant.pole.abs() < 1.0);
/// assert!(dominant.time_constant().expect("stable") > 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModalDecomposition {
    /// Direct FIR part (empty for strictly proper systems).
    pub direct: Polynomial,
    /// First-order modes, one per pole.
    pub modes: Vec<Mode>,
}

impl ModalDecomposition {
    /// Decompose `h`. Fails for systems with numerically repeated poles.
    ///
    /// # Errors
    ///
    /// [`Error::RepeatedPoles`] when two poles are closer than `1e-6`.
    pub fn of(h: &TransferFunction) -> Result<Self, Error> {
        // Poles: roots of den in z after clearing delays.
        let den_z_ascending: Vec<f64> = h.den().coeffs().iter().rev().copied().collect();
        let poles = polynomial_roots(&den_z_ascending);
        // Simple-pole check.
        let mut min_sep = f64::MAX;
        for (i, a) in poles.iter().enumerate() {
            for b in &poles[i + 1..] {
                min_sep = min_sep.min((*a - *b).abs());
            }
        }
        if poles.len() > 1 && min_sep < 1e-6 {
            return Err(Error::RepeatedPoles {
                separation: min_sep,
            });
        }
        // Long-divide num/den in x = z^-1 to split off the direct part when
        // deg(num) >= deg(den).
        let (direct, num_rem) = if h.num().degree() >= h.den().degree() {
            h.num().div_rem(h.den())
        } else {
            (Polynomial::zero(), h.num().clone())
        };
        // Residues: for H_p(z) = N(x)/A(x) strictly proper with simple
        // poles p_i, write A(x) = a_d · Π (x − x_i), x_i = 1/p_i. Then
        // N(x)/A(x) = Σ c_i/(x − x_i), c_i = N(x_i)/A'(x_i), and
        // c_i/(x − x_i) = (−c_i/x_i) / (1 − p_i x).
        let den_coeffs = h.den().coeffs();
        let derivative = |x: Complex| -> Complex {
            den_coeffs
                .iter()
                .enumerate()
                .skip(1)
                .fold(Complex::ZERO, |acc, (k, &c)| {
                    let mut xk = Complex::ONE;
                    for _ in 0..k - 1 {
                        xk *= x;
                    }
                    acc + xk * (c * k as f64)
                })
        };
        let num_at = |x: Complex| -> Complex {
            num_rem
                .coeffs()
                .iter()
                .rev()
                .fold(Complex::ZERO, |acc, &c| acc * x + Complex::from(c))
        };
        let mut modes = Vec::with_capacity(poles.len());
        for p in poles {
            if p.abs() < 1e-12 {
                // A pole at z = 0 would mean den(x) has a root at x = ∞,
                // impossible for a polynomial with a nonzero top
                // coefficient; skip defensively if the root finder ever
                // reports one.
                continue;
            }
            let x_i = p.recip();
            let c_i = num_at(x_i) / derivative(x_i);
            let residue = -(c_i / x_i);
            modes.push(Mode { pole: p, residue });
        }
        Ok(ModalDecomposition { direct, modes })
    }

    /// Reconstruct the impulse response from the modes (real part; the
    /// imaginary parts of conjugate pairs cancel).
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.direct.coeff(k);
        }
        // iterate modes with running pole powers for O(n·modes)
        for m in &self.modes {
            let mut pk = Complex::ONE;
            for slot in out.iter_mut() {
                *slot += (m.residue * pk).re;
                pk *= m.pole;
            }
        }
        out
    }

    /// The slowest (dominant) decaying mode, by pole magnitude.
    pub fn dominant(&self) -> Option<&Mode> {
        self.modes.iter().max_by(|a, b| {
            a.pole
                .abs()
                .partial_cmp(&b.pole.abs())
                .expect("finite poles")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closedloop;
    use crate::iir_paper_filter;

    fn tf(num: &[f64], den: &[f64]) -> TransferFunction {
        TransferFunction::new(Polynomial::new(num.to_vec()), Polynomial::new(den.to_vec()))
            .expect("valid")
    }

    #[test]
    fn one_pole_mode() {
        let h = tf(&[1.0], &[1.0, -0.5]);
        let d = ModalDecomposition::of(&h).unwrap();
        assert_eq!(d.modes.len(), 1);
        let m = &d.modes[0];
        assert!((m.pole - Complex::new(0.5, 0.0)).abs() < 1e-9);
        assert!((m.residue - Complex::ONE).abs() < 1e-9);
        let tc = m.time_constant().unwrap();
        assert!((tc - 1.0 / (2f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn reconstruction_matches_direct_simulation_two_pole() {
        let den = Polynomial::new(vec![1.0, -0.5]).mul(&Polynomial::new(vec![1.0, 0.25]));
        let h = TransferFunction::new(Polynomial::new(vec![1.0, 0.3]), den).unwrap();
        let d = ModalDecomposition::of(&h).unwrap();
        let want = h.impulse_response(40);
        let got = d.impulse_response(40);
        for k in 0..40 {
            assert!(
                (got[k] - want[k]).abs() < 1e-8,
                "k={k}: {} vs {}",
                got[k],
                want[k]
            );
        }
    }

    #[test]
    fn reconstruction_matches_for_complex_pair() {
        // resonant pair: den = 1 - 1.2 z^-1 + 0.72 z^-2
        let h = tf(&[0.5, 0.1], &[1.0, -1.2, 0.72]);
        let d = ModalDecomposition::of(&h).unwrap();
        assert_eq!(d.modes.len(), 2);
        let want = h.impulse_response(50);
        let got = d.impulse_response(50);
        for k in 0..50 {
            assert!((got[k] - want[k]).abs() < 1e-8, "k={k}");
        }
    }

    #[test]
    fn paper_closed_loop_decomposes_and_dominant_matches_radius() {
        let h = iir_paper_filter();
        let hd = closedloop::error_transfer(&h, 1);
        let d = ModalDecomposition::of(&hd).unwrap();
        let want = hd.impulse_response(120);
        let got = d.impulse_response(120);
        for k in 0..120 {
            assert!(
                (got[k] - want[k]).abs() < 1e-6,
                "k={k}: {} vs {}",
                got[k],
                want[k]
            );
        }
        let dominant = d.dominant().expect("modes exist");
        let radius = closedloop::stability(&h, 1).spectral_radius;
        assert!(
            (dominant.pole.abs() - radius).abs() < 1e-6,
            "dominant pole {} vs spectral radius {radius}",
            dominant.pole.abs()
        );
        // settle time explained: ~4 dominant time constants within band
        let tc = dominant.time_constant().expect("stable");
        assert!(tc > 1.0 && tc < 40.0, "time constant {tc}");
    }

    #[test]
    fn improper_system_gets_direct_part() {
        // H = (1 + x + x^2)/(1 + 0.5x): deg num > deg den
        let h = tf(&[1.0, 1.0, 1.0], &[1.0, 0.5]);
        let d = ModalDecomposition::of(&h).unwrap();
        assert!(!d.direct.is_zero());
        let want = h.impulse_response(30);
        let got = d.impulse_response(30);
        for k in 0..30 {
            assert!((got[k] - want[k]).abs() < 1e-8, "k={k}");
        }
    }

    #[test]
    fn repeated_poles_rejected() {
        // (1 - 0.5x)^2 denominator
        let den = Polynomial::new(vec![1.0, -0.5]).mul(&Polynomial::new(vec![1.0, -0.5]));
        let h = TransferFunction::new(Polynomial::one(), den).unwrap();
        assert!(matches!(
            ModalDecomposition::of(&h),
            Err(Error::RepeatedPoles { .. })
        ));
    }

    #[test]
    fn fir_system_is_all_direct() {
        let h = tf(&[1.0, 2.0, 3.0], &[1.0]);
        let d = ModalDecomposition::of(&h).unwrap();
        assert!(d.modes.is_empty());
        assert_eq!(d.impulse_response(5), vec![1.0, 2.0, 3.0, 0.0, 0.0]);
        assert!(d.dominant().is_none());
    }
}
