//! Minimal complex arithmetic (kept in-tree to avoid external numeric
//! dependencies).

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// The point `e^{iθ}` on the unit circle.
    pub fn unit_circle(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex::abs`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Complex division IS multiplication by the reciprocal; the lint's
    // operator-confusion heuristic does not apply here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_operations() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn recip_and_conj() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z * z.recip() - Complex::ONE).abs() < 1e-12);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn unit_circle_has_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::unit_circle(k as f64 * 0.4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
