//! System identification: fit a rational transfer function to an observed
//! impulse response by linear least squares.
//!
//! Given samples `h[0..N]` of an impulse response, find
//! `H(z) = B(z)/A(z)` (orders chosen by the caller) such that the
//! convolution identity `A ⊛ h = B` holds in the least-squares sense —
//! the classical Shanks/Steiglitz arrangement of the problem. Used here to
//! close the loop in the *other* direction: estimate the adaptive-clock
//! loop's transfer function from simulated data alone and check it against
//! the Eq. (4)–(5) algebra.

use crate::error::Error;
use crate::poly::Polynomial;
use crate::transfer::TransferFunction;

/// Solve the dense linear system `M x = rhs` by Gaussian elimination with
/// partial pivoting. `M` is row-major, `n × n`.
///
/// Returns `None` for (numerically) singular systems.
fn solve_dense(mut m: Vec<f64>, mut rhs: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(m.len(), n * n);
    debug_assert_eq!(rhs.len(), n);
    for col in 0..n {
        // pivot
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[r * n + col].abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite matrix"))?;
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let inv = 1.0 / m[col * n + col];
        for r in col + 1..n {
            let f = m[r * n + col] * inv;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[r * n + k] -= f * m[col * n + k];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Fit `H = B/A` with `deg B = nb` and `deg A = na` (so `nb+1` numerator
/// and `na` unknown denominator coefficients; `a₀ = 1`) to the impulse
/// response samples `h`.
///
/// # Example
///
/// ```
/// use zdomain::{ident, Polynomial, TransferFunction};
///
/// # fn main() -> Result<(), zdomain::Error> {
/// let truth = TransferFunction::new(
///     Polynomial::new(vec![1.0]),
///     Polynomial::new(vec![1.0, -0.5]),
/// )?;
/// let data = truth.impulse_response(50);
/// let fitted = ident::fit_impulse_response(&data, 0, 1)?;
/// assert!((fitted.den().coeff(1) + 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// The fit enforces the convolution equations
/// `h[k] + Σ_{i=1..na} a_i h[k−i] = b_k` exactly for `k ≤ nb` and in the
/// least-squares sense for `nb < k < h.len()`.
///
/// # Errors
///
/// Returns [`Error::NoConvergence`] when the normal equations are singular
/// (data too short or orders too high) and [`Error::NonCausalDenominator`]
/// via [`TransferFunction::new`] never (by construction `a₀ = 1`).
pub fn fit_impulse_response(h: &[f64], nb: usize, na: usize) -> Result<TransferFunction, Error> {
    if h.len() < nb + na + 2 {
        return Err(Error::NoConvergence {
            algorithm: "impulse-response fit",
            iterations: h.len(),
        });
    }
    let sample = |k: isize| -> f64 {
        if k < 0 {
            0.0
        } else {
            h.get(k as usize).copied().unwrap_or(0.0)
        }
    };
    // Stage 1: denominator from equations k = nb+1 .. len-1:
    //   Σ_i a_i h[k-i] = -h[k]      (least squares, normal equations)
    if na > 0 {
        let rows: Vec<usize> = (nb + 1..h.len()).collect();
        let mut normal = vec![0.0; na * na];
        let mut rhs = vec![0.0; na];
        for &k in &rows {
            for i in 0..na {
                let hi = sample(k as isize - (i as isize + 1));
                rhs[i] -= hi * sample(k as isize);
                for j in 0..na {
                    let hj = sample(k as isize - (j as isize + 1));
                    normal[i * na + j] += hi * hj;
                }
            }
        }
        let a_tail = solve_dense(normal, rhs, na).ok_or(Error::NoConvergence {
            algorithm: "impulse-response fit (normal equations)",
            iterations: rows.len(),
        })?;
        let mut a = vec![1.0];
        a.extend(a_tail);
        // Stage 2: numerator directly from k = 0..=nb:
        //   b_k = Σ_{i=0..na} a_i h[k-i]
        let mut b = vec![0.0; nb + 1];
        for (k, bk) in b.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                acc += ai * sample(k as isize - i as isize);
            }
            *bk = acc;
        }
        TransferFunction::new(Polynomial::new(b), Polynomial::new(a))
    } else {
        // FIR fit: numerator is the truncated response.
        let b: Vec<f64> = (0..=nb).map(|k| sample(k as isize)).collect();
        TransferFunction::new(Polynomial::new(b), Polynomial::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closedloop;
    use crate::iir_paper_filter;

    fn tf(num: &[f64], den: &[f64]) -> TransferFunction {
        TransferFunction::new(Polynomial::new(num.to_vec()), Polynomial::new(den.to_vec()))
            .expect("valid")
    }

    #[test]
    fn identifies_one_pole_system_exactly() {
        let truth = tf(&[1.0, 0.25], &[1.0, -0.5]);
        let h = truth.impulse_response(60);
        let fitted = fit_impulse_response(&h, 1, 1).unwrap();
        for (g, w) in fitted.den().coeffs().iter().zip(truth.den().coeffs()) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        for (g, w) in fitted.num().coeffs().iter().zip(truth.num().coeffs()) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn identifies_second_order_resonator() {
        let truth = tf(&[0.3, -0.1], &[1.0, -1.2, 0.72]);
        let h = truth.impulse_response(120);
        let fitted = fit_impulse_response(&h, 1, 2).unwrap();
        let got = fitted.impulse_response(120);
        for k in 0..120 {
            assert!((got[k] - h[k]).abs() < 1e-8, "k={k}");
        }
    }

    #[test]
    fn fir_fit_truncates() {
        let truth = tf(&[1.0, 2.0, 3.0], &[1.0]);
        let h = truth.impulse_response(10);
        let fitted = fit_impulse_response(&h, 2, 0).unwrap();
        assert_eq!(fitted.num().coeffs(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identifies_the_papers_closed_loop_from_data() {
        // The headline: recover H_δ(z) of Eq. (5) from its own impulse
        // response, blind to the algebra.
        let h = iir_paper_filter();
        let hd = closedloop::error_transfer(&h, 1);
        let data = hd.impulse_response(400);
        let nb = hd.num().degree().unwrap_or(0);
        let na = hd.den().degree().unwrap_or(0);
        let fitted = fit_impulse_response(&data, nb, na).unwrap();
        // compare responses (coefficients may differ by near-cancelling
        // representations; the response is the invariant)
        let got = fitted.impulse_response(400);
        for k in 0..400 {
            assert!(
                (got[k] - data[k]).abs() < 1e-6,
                "k={k}: {} vs {}",
                got[k],
                data[k]
            );
        }
        // and the identified model predicts the same stability margin
        let rad_true = hd.pole_radius().unwrap_or(0.0);
        let rad_fit = fitted.pole_radius().unwrap_or(0.0);
        assert!(
            (rad_true - rad_fit).abs() < 1e-3,
            "radius {rad_true} vs {rad_fit}"
        );
    }

    #[test]
    fn short_data_is_rejected() {
        assert!(matches!(
            fit_impulse_response(&[1.0, 0.5], 2, 3),
            Err(Error::NoConvergence { .. })
        ));
    }

    #[test]
    fn singular_data_is_rejected() {
        // all-zero response cannot pin down a denominator
        let zeros = vec![0.0; 50];
        assert!(fit_impulse_response(&zeros, 1, 2).is_err());
    }
}
