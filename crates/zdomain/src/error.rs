use std::fmt;

/// Errors from z-domain constructions and algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A transfer function was built with a zero denominator polynomial.
    ZeroDenominator,
    /// A transfer function denominator's leading (z⁰) coefficient is zero,
    /// i.e. the difference equation cannot be solved for the current output.
    NonCausalDenominator,
    /// A rational number was built with a zero denominator.
    ZeroRationalDenominator,
    /// Arithmetic overflowed the underlying integer type.
    Overflow,
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The final value does not exist (a pole on or outside the unit circle
    /// other than a simple pole at z = 1).
    FinalValueUndefined,
    /// A modal decomposition was requested for a system with (numerically)
    /// repeated poles, where simple partial fractions do not apply.
    RepeatedPoles {
        /// The smallest pairwise pole separation found.
        separation: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroDenominator => write!(f, "transfer function denominator is zero"),
            Error::NonCausalDenominator => write!(
                f,
                "denominator has zero constant coefficient; system is not causal"
            ),
            Error::ZeroRationalDenominator => write!(f, "rational denominator is zero"),
            Error::Overflow => write!(f, "integer arithmetic overflow"),
            Error::NoConvergence {
                algorithm,
                iterations,
            } => write!(f, "{algorithm} did not converge after {iterations} iterations"),
            Error::FinalValueUndefined => write!(f, "final value does not exist"),
            Error::RepeatedPoles { separation } => write!(
                f,
                "repeated poles (separation {separation:.2e}); modal decomposition needs simple poles"
            ),
        }
    }
}

impl std::error::Error for Error {}
