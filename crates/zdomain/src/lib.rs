//! `zdomain` — discrete-time (z-domain) analysis toolkit.
//!
//! This crate provides the analytical counterpart to the time-domain
//! simulators in the workspace: dense polynomials in `z⁻¹`, rational
//! transfer functions, exact rational arithmetic, root finding, the Jury
//! stability criterion, frequency responses, and — specific to the SOCC 2012
//! adaptive-clock paper — the closed-loop algebra of its Eq. (4)–(8):
//!
//! ```text
//! H_lRO(z) = N(z) / (D(z) + N(z) z^{-M-2})      (Eq. 4)
//! H_δ(z)   = D(z) / (D(z) + N(z) z^{-M-2})      (Eq. 5)
//! N(1) ≠ 0   and   D(1) = 0                     (Eq. 8)
//! ```
//!
//! where `H(z) = N(z)/D(z)` is the control block and `M` the clock
//! distribution delay in periods.
//!
//! # Example
//!
//! Verify that the paper's IIR control filter satisfies the final-value
//! constraints and yields zero steady-state adaptation error:
//!
//! ```
//! use zdomain::{closedloop, iir_paper_filter};
//!
//! let h = iir_paper_filter();
//! assert!(closedloop::satisfies_constraints(&h));
//! let hd = closedloop::error_transfer(&h, 1);
//! // steady-state error for a unit step: final value of H_δ · step
//! let fv = hd.step_final_value().unwrap();
//! assert!(fv.abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closedloop;
mod complex;
mod error;
mod freq;
pub mod ident;
pub mod margins;
pub mod modal;
mod poly;
mod rational;
mod roots;
mod stability;
mod transfer;

pub use complex::Complex;
pub use error::Error;
pub use freq::FrequencyResponse;
pub use poly::Polynomial;
pub use rational::Rational;
pub use roots::polynomial_roots;
pub use stability::{jury_stable, spectral_radius, StabilityReport};
pub use transfer::TransferFunction;

/// The exact IIR control filter used in the paper's simulations (§IV):
/// `H(z) = z⁻¹ (1/k* − Σ kᵢ z⁻ⁱ)⁻¹` with `k* = 1/4`,
/// `k = [2, 1, 1/2, 1/4, 1/8, 1/8]` (Eq. 9, Fig. 5).
///
/// The gains satisfy Eq. (10): `k* = (Σ kᵢ)⁻¹`, so the filter has an
/// integrator pole at `z = 1` and the closed loop reaches zero steady-state
/// error.
pub fn iir_paper_filter() -> TransferFunction {
    let k = [2.0, 1.0, 0.5, 0.25, 0.125, 0.125];
    let k_star: f64 = 0.25;
    // N(z) = z^{-1}
    let num = Polynomial::new(vec![0.0, 1.0]);
    // D(z) = 1/k* - sum k_i z^{-i}
    let mut den = vec![1.0 / k_star];
    den.extend(k.iter().map(|ki| -ki));
    let den = Polynomial::new(den);
    TransferFunction::new(num, den).expect("paper filter is well-formed")
}
