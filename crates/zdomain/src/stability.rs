//! Discrete-time stability tests.
//!
//! Two independent methods are provided and cross-checked in tests:
//!
//! * the **Jury criterion** — an algebraic test on the characteristic
//!   polynomial, analogous to Routh–Hurwitz for continuous systems;
//! * the **spectral radius** — the largest root magnitude obtained from the
//!   Durand–Kerner root finder.
//!
//! Downstream, these determine the largest clock-distribution delay `M` for
//! which the paper's closed loop (Eq. 4–5) remains stable — the "clock
//! domain size" limitation discussed in the paper's conclusions.

use crate::poly::Polynomial;
use crate::roots::polynomial_roots;

/// Outcome of a stability analysis of a characteristic polynomial.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Verdict from the Jury criterion.
    pub jury_stable: bool,
    /// Largest root magnitude (`< 1` means stable with margin `1 − radius`).
    pub spectral_radius: f64,
}

impl StabilityReport {
    /// Analyze a characteristic polynomial given in `z⁻¹` form
    /// (e.g. a closed-loop denominator).
    pub fn of(char_poly: &Polynomial) -> Self {
        StabilityReport {
            jury_stable: jury_stable(char_poly),
            spectral_radius: spectral_radius(char_poly),
        }
    }

    /// Consensus verdict (both methods agree on stable).
    pub fn is_stable(&self) -> bool {
        self.jury_stable && self.spectral_radius < 1.0
    }
}

/// Largest root magnitude of a characteristic polynomial given in `z⁻¹`
/// form. Returns `0.0` for constant polynomials (no roots).
pub fn spectral_radius(char_poly: &Polynomial) -> f64 {
    let ascending: Vec<f64> = char_poly.coeffs().iter().rev().copied().collect();
    polynomial_roots(&ascending)
        .iter()
        .map(|z| z.abs())
        .fold(0.0, f64::max)
}

/// Jury stability criterion.
///
/// Tests whether all roots of the polynomial lie strictly inside the unit
/// circle. `char_poly` is given in `z⁻¹` form; internally it is converted to
/// a polynomial in `z` (`a_n zⁿ + … + a₀` with `a_n` the constant `z⁰`
/// coefficient of the input).
///
/// Returns `false` for degenerate (zero/constant-zero) polynomials only if
/// they are identically zero; a nonzero constant is trivially "stable".
pub fn jury_stable(char_poly: &Polynomial) -> bool {
    if char_poly.is_zero() {
        return false;
    }
    // In z form (descending powers): a = [a_n, ..., a_0] where the z^-1-form
    // constant coefficient becomes the z^n coefficient.
    let mut a: Vec<f64> = char_poly.coeffs().to_vec();
    // Remove exact trailing zeros (roots at origin are stable; they reduce
    // the z-polynomial degree).
    // In z^-1 ascending form, trailing zeros were already trimmed by
    // Polynomial::new, so `a` has a nonzero last element.
    let n = a.len() - 1; // degree in z
    if n == 0 {
        return true;
    }
    // Normalize sign so a[0] (the z^n coefficient) is positive.
    if a[0] < 0.0 {
        for c in &mut a {
            *c = -*c;
        }
    }
    let eval = |coeffs: &[f64], z: f64| -> f64 {
        // coeffs descending in z
        coeffs.iter().fold(0.0, |acc, &c| acc * z + c)
    };
    // Necessary conditions.
    let p1 = eval(&a, 1.0);
    if p1 <= 0.0 {
        return false;
    }
    let pm1 = eval(&a, -1.0);
    let pm1_signed = if n.is_multiple_of(2) { pm1 } else { -pm1 };
    if pm1_signed <= 0.0 {
        return false;
    }
    if a[n].abs() >= a[0] {
        return false;
    }
    // Jury table reduction.
    let mut row = a;
    let mut deg = n;
    while deg > 2 {
        let k = row[deg] / row[0];
        let mut next = Vec::with_capacity(deg);
        for i in 0..deg {
            next.push(row[i] - k * row[deg - i]);
        }
        // next has degree deg-1 (descending coefficients next[0..deg])
        if next[0] <= 0.0 {
            return false;
        }
        if next[deg - 1].abs() >= next[0] {
            return false;
        }
        row = next;
        deg -= 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn poly(coeffs: &[f64]) -> Polynomial {
        Polynomial::new(coeffs.to_vec())
    }

    #[test]
    fn one_pole_boundary() {
        // 1 - a z^-1: root at z = a
        assert!(jury_stable(&poly(&[1.0, -0.5])));
        assert!(!jury_stable(&poly(&[1.0, -1.0])));
        assert!(!jury_stable(&poly(&[1.0, -1.5])));
        assert!(jury_stable(&poly(&[1.0, 0.99])));
        assert!(!jury_stable(&poly(&[1.0, 1.0])));
    }

    #[test]
    fn constant_is_stable() {
        assert!(jury_stable(&poly(&[1.0])));
        assert!(!jury_stable(&Polynomial::zero()));
    }

    #[test]
    fn second_order_known_cases() {
        // (1 - 0.5 z^-1)(1 + 0.5 z^-1) = 1 - 0.25 z^-2: stable
        assert!(jury_stable(&poly(&[1.0, 0.0, -0.25])));
        // roots at ±1.2: 1 - 1.44 z^-2 in z form z^2 - 1.44 -> unstable
        assert!(!jury_stable(&poly(&[1.0, 0.0, -1.44])));
        // complex pair with radius 0.9: z^2 - 1.2 z + 0.81 (stable)
        assert!(jury_stable(&poly(&[1.0, -1.2, 0.81])));
        // complex pair with radius 1.1: z^2 - 1.4z + 1.21 (unstable)
        assert!(!jury_stable(&poly(&[1.0, -1.4, 1.21])));
    }

    #[test]
    fn spectral_radius_matches_construction() {
        // roots at 0.5 and -0.25
        let p = poly(&[1.0, -0.5]).mul(&poly(&[1.0, 0.25]));
        assert!((spectral_radius(&p) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn report_consensus() {
        let stable = poly(&[1.0, -0.9]);
        let r = StabilityReport::of(&stable);
        assert!(r.is_stable());
        assert!(r.spectral_radius < 1.0);
        let unstable = poly(&[1.0, -2.0]);
        let r = StabilityReport::of(&unstable);
        assert!(!r.is_stable());
        assert!(r.spectral_radius > 1.0);
    }

    proptest! {
        /// Jury and the root finder must agree away from the unit circle.
        #[test]
        fn jury_agrees_with_roots(
            c1 in -1.8f64..1.8,
            c2 in -0.95f64..0.95,
            c3 in -0.6f64..0.6,
        ) {
            let p = poly(&[1.0, c1, c2, c3]);
            let radius = spectral_radius(&p);
            // skip near-boundary cases where numeric disagreement is fair
            prop_assume!((radius - 1.0).abs() > 1e-3);
            let jury = jury_stable(&p);
            prop_assert_eq!(jury, radius < 1.0,
                "p = {}, radius = {}", p, radius);
        }

        /// Products of stable first-order factors are always Jury-stable.
        #[test]
        fn stable_factors_product(
            r1 in -0.95f64..0.95,
            r2 in -0.95f64..0.95,
            r3 in -0.95f64..0.95,
        ) {
            let p = poly(&[1.0, -r1]).mul(&poly(&[1.0, -r2])).mul(&poly(&[1.0, -r3]));
            prop_assert!(jury_stable(&p), "p = {}", p);
        }
    }
}
