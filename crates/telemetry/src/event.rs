//! Structured event log: typed events, sequence-stamped records, a
//! bounded ring buffer and an optional JSONL file sink.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write;

use serde::{Deserialize, Serialize};

/// One structured occurrence inside a simulation or sweep. All payload
/// floats must be finite — the JSONL sink rejects NaN/inf, and every
/// emitting site guards for it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The sensed critical-path delay exceeded the clock period
    /// (τ < c in the paper's notation): the cycle would have failed.
    TimingViolation {
        /// Sensed worst-case slack measurement for the cycle.
        tau: f64,
        /// The configured setpoint (clock period in gate delays).
        setpoint: f64,
        /// `setpoint - tau` (positive when violating).
        margin: f64,
    },
    /// The controller asked for a ring-oscillator length outside the
    /// hardware bounds and the request was clamped.
    RoSaturation {
        /// Length the controller computed.
        requested: f64,
        /// Length actually applied after clamping.
        clamped: f64,
    },
    /// The controller produced a new RO length from a slack error.
    ControllerUpdate {
        /// Slack error fed to the controller (`setpoint - tau`).
        delta: f64,
        /// New RO length (post-clamp).
        length: f64,
    },
    /// A delay sensor returned a non-finite reading and was excluded
    /// from the worst-case reduction for this cycle.
    SensorDropout {
        /// Index of the sensor inside the bank.
        sensor: u64,
    },
    /// A finished trace span (hierarchical timing region). Emitted when
    /// a [`TraceScope`](crate::TraceScope) closes, so the JSONL stream
    /// carries the span tree inline: children appear before their
    /// parents (a scope can only close after everything inside it).
    Span {
        /// Process-unique span id (never 0).
        id: u64,
        /// Enclosing span id, or 0 for a root span.
        parent: u64,
        /// Region name, e.g. `engine.batch` or `sweep.worker`.
        name: String,
        /// Start, microseconds since tracing was enabled (monotonic).
        start_us: u64,
        /// End, microseconds since tracing was enabled (monotonic).
        end_us: u64,
    },
    /// One evaluated point of a margin/period search grid.
    MarginSearchIteration {
        /// Experiment identifier (e.g. `fig8-upper`).
        experiment: String,
        /// Scheme label (e.g. `IIR`).
        scheme: String,
        /// Sweep coordinate of this point.
        x: f64,
        /// Measured objective at this point.
        value: f64,
    },
}

impl Event {
    /// Stable kind label used for grouping and summary tables.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::TimingViolation { .. } => "TimingViolation",
            Event::RoSaturation { .. } => "RoSaturation",
            Event::ControllerUpdate { .. } => "ControllerUpdate",
            Event::SensorDropout { .. } => "SensorDropout",
            Event::Span { .. } => "Span",
            Event::MarginSearchIteration { .. } => "MarginSearchIteration",
        }
    }
}

/// An [`Event`] stamped with a process-unique sequence number and the
/// domain time it occurred at. This is the JSONL line type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Emission order, starting at 0; strictly increasing within one
    /// [`Telemetry`](crate::Telemetry) instance, including across
    /// threads.
    pub seq: u64,
    /// Domain time: simulation time for engine events, the sweep
    /// coordinate for search events.
    pub time: f64,
    /// The event payload.
    pub event: Event,
}

pub(crate) struct EventLog {
    next_seq: u64,
    ring: VecDeque<EventRecord>,
    capacity: usize,
    by_kind: BTreeMap<&'static str, u64>,
    jsonl: Option<std::io::BufWriter<std::fs::File>>,
    io_error: Option<std::io::Error>,
}

impl EventLog {
    pub(crate) fn new(capacity: usize, jsonl: Option<std::io::BufWriter<std::fs::File>>) -> Self {
        EventLog {
            next_seq: 0,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            by_kind: BTreeMap::new(),
            jsonl,
            io_error: None,
        }
    }

    pub(crate) fn emit(&mut self, time: f64, event: Event) {
        *self.by_kind.entry(event.kind_name()).or_insert(0) += 1;
        let record = EventRecord {
            seq: self.next_seq,
            time,
            event,
        };
        self.next_seq += 1;
        if let Some(w) = &mut self.jsonl {
            if self.io_error.is_none() {
                let res = serde_json::to_string(&record)
                    .map_err(|e| std::io::Error::other(e.to_string()))
                    .and_then(|line| writeln!(w, "{line}"));
                if let Err(e) = res {
                    self.io_error = Some(e);
                }
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
    }

    pub(crate) fn has_sink(&self) -> bool {
        self.jsonl.is_some()
    }

    pub(crate) fn recent(&self) -> Vec<EventRecord> {
        self.ring.iter().cloned().collect()
    }

    pub(crate) fn total(&self) -> u64 {
        self.next_seq
    }

    pub(crate) fn counts_by_kind(&self) -> Vec<(String, u64)> {
        self.by_kind
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect()
    }

    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.io_error.take() {
            return Err(e);
        }
        if let Some(w) = &mut self.jsonl {
            // Flush the buffer *and* fsync the file: a graceful shutdown
            // (or a crash immediately after one) must never lose the last
            // events of a run to the OS page cache.
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        Ok(())
    }
}

impl Drop for EventLog {
    /// Best-effort flush + fsync when the log is dropped without an
    /// explicit [`flush`](EventLog::flush) — a process that exits through
    /// the normal drop path keeps its tail events even if the caller
    /// forgot to flush. Errors are ignored: there is nowhere left to
    /// report them during drop.
    fn drop(&mut self) {
        if let Some(w) = &mut self.jsonl {
            let _ = w.flush();
            let _ = w.get_ref().sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_round_trip() {
        let original = EventRecord {
            seq: 7,
            time: 1250.5,
            event: Event::MarginSearchIteration {
                experiment: "fig8-upper".to_owned(),
                scheme: "IIR".to_owned(),
                x: 0.1,
                value: -2.25,
            },
        };
        let text = serde_json::to_string(&original).expect("serialize");
        let back: EventRecord = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, original);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            Event::TimingViolation {
                tau: 60.0,
                setpoint: 64.0,
                margin: 4.0,
            },
            Event::RoSaturation {
                requested: 130.0,
                clamped: 96.0,
            },
            Event::ControllerUpdate {
                delta: -0.5,
                length: 63.0,
            },
            Event::SensorDropout { sensor: 2 },
            Event::Span {
                id: 3,
                parent: 1,
                name: "engine.batch".to_owned(),
                start_us: 120,
                end_us: 480,
            },
            Event::MarginSearchIteration {
                experiment: "fig9".to_owned(),
                scheme: "TEAtime".to_owned(),
                x: -0.2,
                value: 0.875,
            },
        ];
        for e in events {
            let kind = e.kind_name();
            let text = serde_json::to_string(&e).expect("serialize");
            assert!(text.contains(kind), "{text} should name {kind}");
            let back: Event = serde_json::from_str(&text).expect("parse");
            assert_eq!(back.kind_name(), kind);
            assert_eq!(back, e);
        }
    }
}
