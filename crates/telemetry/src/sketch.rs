//! Streaming quantile sketch: deterministic, bounded-memory quantile
//! estimation for latency-style streams.
//!
//! The sketch keeps up to a fixed number of samples. While the stream
//! fits, quantiles are **exact**. Once the buffer fills, it compacts:
//! the kept samples are sorted and every other one is retained (which
//! preserves the shape of the empirical distribution), and from then on
//! only every `stride`-th incoming sample is recorded, with the stride
//! doubling at each compaction. The whole process is deterministic — no
//! randomness, no wall clock — so two identical streams always produce
//! identical sketches. `min`, `max` and the sample count stay exact
//! forever.

/// Default number of retained samples ([`QuantileSketch::new`]).
pub const DEFAULT_SKETCH_CAPACITY: usize = 4096;

/// A deterministic compacting quantile sketch (see the module docs).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    cap: usize,
    keep: Vec<f64>,
    /// Record every `stride`-th sample once compaction has begun.
    stride: u64,
    /// Finite samples seen (recorded or skipped).
    count: u64,
    /// Non-finite samples dropped.
    dropped: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// A sketch with the default retention capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SKETCH_CAPACITY)
    }

    /// A sketch retaining at most `cap` samples (floored at 16 so
    /// compaction always leaves something to interpolate over).
    pub fn with_capacity(cap: usize) -> Self {
        QuantileSketch {
            cap: cap.max(16),
            keep: Vec::new(),
            stride: 1,
            count: 0,
            dropped: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are dropped (counted under
    /// [`dropped`](Self::dropped), never mixed into the quantiles).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let take = self.count.is_multiple_of(self.stride);
        self.count += 1;
        if !take {
            return;
        }
        self.keep.push(v);
        if self.keep.len() >= self.cap {
            self.compact();
        }
    }

    /// Sorted-halving compaction: keep every other sample *in sorted
    /// order* (preserving the distribution shape), double the stride.
    fn compact(&mut self) {
        self.keep.sort_by(f64::total_cmp);
        let mut i = 0;
        self.keep.retain(|_| {
            let keep = i % 2 == 1;
            i += 1;
            keep
        });
        self.stride = self.stride.saturating_mul(2);
    }

    /// Merge another sketch into this one — the deterministic
    /// recombination step for sketches built on parallel chunks of one
    /// logical stream.
    ///
    /// The retained samples become the **sorted multiset union** of both
    /// sides' buffers, counts and dropped totals add, `min`/`max` stay
    /// exact, and the recording stride becomes the larger of the two.
    /// No compaction happens during the merge itself: multiset union is
    /// commutative and associative, so merging any number of sketches in
    /// *any order* yields identical retained samples — and therefore
    /// identical quantiles — which is what makes parallel chunk
    /// recombination reproducible run-to-run regardless of worker
    /// scheduling. (Compacting inside `merge` would break this: the
    /// halving would depend on how the merge tree groups.)
    ///
    /// The retained buffer may temporarily exceed the capacity bound
    /// after a merge — by at most the sum of the parts, e.g. merging `K`
    /// full sketches retains up to `K·cap` samples until the next
    /// [`record`](Self::record) triggers an ordinary compaction. Chunks
    /// of similar size carry similar strides, so their union weights the
    /// pooled distribution evenly; merging sketches whose strides differ
    /// wildly over-weights the finer-grained side's retained samples
    /// (min/max/count stay exact either way).
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.dropped += other.dropped;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
        self.stride = self.stride.max(other.stride);
        self.cap = self.cap.max(other.cap);
        self.keep.extend_from_slice(&other.keep);
        self.keep.sort_by(f64::total_cmp);
    }

    /// Finite samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite samples dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact minimum of the stream, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum of the stream, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the retained
    /// samples — exact while the stream has not yet compacted, the
    /// nearest retained sample afterwards. `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.keep.is_empty() {
            // count > 0 with an empty buffer is impossible (the first
            // sample is always recorded), so empty buffer == empty stream.
            return None;
        }
        let mut sorted = self.keep.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank on the retained population; the exact extremes
        // override the edges so compaction can never lose min/max.
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_before_compaction() {
        let mut s = QuantileSketch::with_capacity(1024);
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.9), Some(90.0));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.max(), Some(100.0));
        assert_eq!(s.min(), Some(1.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.quantile(0.5), None);
        s.record(2.0);
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn compaction_keeps_quantiles_close_and_extremes_exact() {
        let mut s = QuantileSketch::with_capacity(64);
        let n = 10_000u64;
        for v in 0..n {
            s.record(v as f64);
        }
        assert_eq!(s.count(), n);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some((n - 1) as f64));
        let p50 = s.quantile(0.5).unwrap();
        let p90 = s.quantile(0.9).unwrap();
        // Uniform ramp: the true quantiles are q*n. Compacted resolution
        // is ~n/32 here; allow a few buckets of slack.
        assert!((p50 - 5_000.0).abs() < 1_500.0, "p50 {p50}");
        assert!((p90 - 9_000.0).abs() < 1_500.0, "p90 {p90}");
        assert!(p90 > p50, "quantiles stay ordered");
    }

    #[test]
    fn deterministic_across_identical_streams() {
        let run = || {
            let mut s = QuantileSketch::with_capacity(32);
            for v in 0..5_000u64 {
                s.record(((v * 2_654_435_761) % 1_000) as f64);
            }
            (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99), s.max())
        };
        assert_eq!(run(), run());
    }

    /// Build one chunk sketch from a seeded splitmix64 stream, as a
    /// parallel worker over chunk `c` of a fixed logical stream would.
    fn chunk_sketch(seed: u64, c: u64, len: u64, cap: usize) -> QuantileSketch {
        let mut s = QuantileSketch::with_capacity(cap);
        let mut state = seed ^ c.wrapping_mul(0xA076_1D64_78BD_642F);
        for _ in 0..len {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s.record(((z ^ (z >> 31)) % 100_000) as f64 / 100.0);
        }
        s
    }

    fn fingerprint(s: &QuantileSketch) -> (u64, u64, [u64; 5]) {
        let qs = [0.0, 0.5, 0.9, 0.99, 1.0].map(|q| s.quantile(q).unwrap().to_bits());
        (s.count(), s.dropped(), qs)
    }

    #[test]
    fn merge_is_invariant_under_merge_order() {
        const CHUNKS: u64 = 8;
        let parts: Vec<QuantileSketch> = (0..CHUNKS)
            .map(|c| chunk_sketch(0x000C_1A05, c, 3_000, 64))
            .collect();

        // Sequential, reversed, and pairwise-tree merge orders.
        let mut seq = parts[0].clone();
        for p in &parts[1..] {
            seq.merge(p);
        }
        let mut rev = parts[CHUNKS as usize - 1].clone();
        for p in parts[..CHUNKS as usize - 1].iter().rev() {
            rev.merge(p);
        }
        let mut level: Vec<QuantileSketch> = parts.clone();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    let mut left = pair[0].clone();
                    if let Some(right) = pair.get(1) {
                        left.merge(right);
                    }
                    left
                })
                .collect();
        }
        let tree = level.pop().unwrap();

        assert_eq!(seq.count(), CHUNKS * 3_000);
        assert_eq!(
            fingerprint(&seq),
            fingerprint(&rev),
            "sequential vs reversed"
        );
        assert_eq!(fingerprint(&seq), fingerprint(&tree), "sequential vs tree");
    }

    #[test]
    fn merged_chunks_answer_like_one_sketch_while_exact() {
        // Below capacity nothing compacts, so chunked-then-merged must
        // equal one sketch over the concatenated stream *exactly*.
        let mut whole = QuantileSketch::with_capacity(4096);
        let mut merged = QuantileSketch::with_capacity(4096);
        for c in 0..4u64 {
            let part = chunk_sketch(42, c, 200, 4096);
            merged.merge(&part);
            let mut state = 42u64 ^ c.wrapping_mul(0xA076_1D64_78BD_642F);
            for _ in 0..200 {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                whole.record(((z ^ (z >> 31)) % 100_000) as f64 / 100.0);
            }
        }
        assert_eq!(fingerprint(&merged), fingerprint(&whole));
    }

    #[test]
    fn merge_carries_extremes_counts_and_drops() {
        let mut a = QuantileSketch::with_capacity(32);
        a.record(5.0);
        a.record(f64::NAN);
        let mut b = QuantileSketch::with_capacity(32);
        b.record(-3.0);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.min(), Some(-3.0));
        assert_eq!(a.max(), Some(11.0));
        // Merging an empty sketch changes nothing.
        let before = fingerprint(&a);
        a.merge(&QuantileSketch::new());
        assert_eq!(fingerprint(&a), before);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut s = QuantileSketch::new();
        s.record(7.25);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(7.25), "q={q}");
        }
    }
}
