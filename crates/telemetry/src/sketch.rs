//! Streaming quantile sketch: deterministic, bounded-memory quantile
//! estimation for latency-style streams.
//!
//! The sketch keeps up to a fixed number of samples. While the stream
//! fits, quantiles are **exact**. Once the buffer fills, it compacts:
//! the kept samples are sorted and every other one is retained (which
//! preserves the shape of the empirical distribution), and from then on
//! only every `stride`-th incoming sample is recorded, with the stride
//! doubling at each compaction. The whole process is deterministic — no
//! randomness, no wall clock — so two identical streams always produce
//! identical sketches. `min`, `max` and the sample count stay exact
//! forever.

/// Default number of retained samples ([`QuantileSketch::new`]).
pub const DEFAULT_SKETCH_CAPACITY: usize = 4096;

/// A deterministic compacting quantile sketch (see the module docs).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    cap: usize,
    keep: Vec<f64>,
    /// Record every `stride`-th sample once compaction has begun.
    stride: u64,
    /// Finite samples seen (recorded or skipped).
    count: u64,
    /// Non-finite samples dropped.
    dropped: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// A sketch with the default retention capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SKETCH_CAPACITY)
    }

    /// A sketch retaining at most `cap` samples (floored at 16 so
    /// compaction always leaves something to interpolate over).
    pub fn with_capacity(cap: usize) -> Self {
        QuantileSketch {
            cap: cap.max(16),
            keep: Vec::new(),
            stride: 1,
            count: 0,
            dropped: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are dropped (counted under
    /// [`dropped`](Self::dropped), never mixed into the quantiles).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let take = self.count.is_multiple_of(self.stride);
        self.count += 1;
        if !take {
            return;
        }
        self.keep.push(v);
        if self.keep.len() >= self.cap {
            self.compact();
        }
    }

    /// Sorted-halving compaction: keep every other sample *in sorted
    /// order* (preserving the distribution shape), double the stride.
    fn compact(&mut self) {
        self.keep.sort_by(f64::total_cmp);
        let mut i = 0;
        self.keep.retain(|_| {
            let keep = i % 2 == 1;
            i += 1;
            keep
        });
        self.stride = self.stride.saturating_mul(2);
    }

    /// Finite samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite samples dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact minimum of the stream, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum of the stream, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the retained
    /// samples — exact while the stream has not yet compacted, the
    /// nearest retained sample afterwards. `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.keep.is_empty() {
            // count > 0 with an empty buffer is impossible (the first
            // sample is always recorded), so empty buffer == empty stream.
            return None;
        }
        let mut sorted = self.keep.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank on the retained population; the exact extremes
        // override the edges so compaction can never lose min/max.
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_before_compaction() {
        let mut s = QuantileSketch::with_capacity(1024);
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.9), Some(90.0));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.max(), Some(100.0));
        assert_eq!(s.min(), Some(1.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.quantile(0.5), None);
        s.record(2.0);
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn compaction_keeps_quantiles_close_and_extremes_exact() {
        let mut s = QuantileSketch::with_capacity(64);
        let n = 10_000u64;
        for v in 0..n {
            s.record(v as f64);
        }
        assert_eq!(s.count(), n);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some((n - 1) as f64));
        let p50 = s.quantile(0.5).unwrap();
        let p90 = s.quantile(0.9).unwrap();
        // Uniform ramp: the true quantiles are q*n. Compacted resolution
        // is ~n/32 here; allow a few buckets of slack.
        assert!((p50 - 5_000.0).abs() < 1_500.0, "p50 {p50}");
        assert!((p90 - 9_000.0).abs() < 1_500.0, "p90 {p90}");
        assert!(p90 > p50, "quantiles stay ordered");
    }

    #[test]
    fn deterministic_across_identical_streams() {
        let run = || {
            let mut s = QuantileSketch::with_capacity(32);
            for v in 0..5_000u64 {
                s.record(((v * 2_654_435_761) % 1_000) as f64);
            }
            (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99), s.max())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut s = QuantileSketch::new();
        s.record(7.25);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(7.25), "q={q}");
        }
    }
}
