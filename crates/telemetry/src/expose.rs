//! Prometheus-style text exposition of a metrics [`Snapshot`]: one
//! `name value` line per sample, suitable for `grep`/`awk` scripting or
//! scraping out of a CI log.
//!
//! Metric names are sanitised to the Prometheus charset (`[a-zA-Z0-9_:]`,
//! so `sweep.cache_hits` becomes `sweep_cache_hits`). Histograms are
//! exposed as summaries: `_count`, `_underflow`, `_overflow`, `_dropped`
//! plus `{quantile="…"}` sample lines from the embedded quantile sketch.

use crate::Snapshot;

/// Sanitise one metric name to the Prometheus charset.
fn metric_name(raw: &str) -> String {
    let mut out: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Format a float sample the way Prometheus expects (plain decimal,
/// `NaN`/`+Inf`/`-Inf` for non-finite values).
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Render the snapshot as Prometheus text exposition lines.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{} {}\n", metric_name(name), v));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{} {}\n", metric_name(name), sample(*v)));
    }
    for h in &snap.histograms {
        let base = metric_name(&h.name);
        out.push_str(&format!("{base}_count {}\n", h.count));
        out.push_str(&format!("{base}_underflow {}\n", h.underflow));
        out.push_str(&format!("{base}_overflow {}\n", h.overflow));
        out.push_str(&format!("{base}_dropped {}\n", h.dropped));
        for (q, v) in [
            ("0.5", h.p50),
            ("0.9", h.p90),
            ("0.99", h.p99),
            ("1", h.max),
        ] {
            if let Some(v) = v {
                out.push_str(&format!("{base}{{quantile=\"{q}\"}} {}\n", sample(v)));
            }
        }
    }
    out.push_str(&format!("telemetry_events_total {}\n", snap.events_total));
    for (kind, n) in &snap.events_by_kind {
        out.push_str(&format!("telemetry_events{{kind=\"{kind}\"}} {n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Telemetry};

    #[test]
    fn exposition_lists_counters_gauges_histograms_and_events() {
        let t = Telemetry::enabled();
        t.counter("sweep.cache_hits").add(7);
        t.gauge("core.margin").set(-1.5);
        let h = t.histogram("loop.delta", 0.0, 10.0, 5);
        for v in [1.0, 2.0, 3.0, f64::NAN] {
            h.record(v);
        }
        t.emit(0.0, Event::SensorDropout { sensor: 1 });
        let text = prometheus_text(&t.snapshot());
        assert!(text.contains("sweep_cache_hits 7\n"), "{text}");
        assert!(text.contains("core_margin -1.5\n"), "{text}");
        assert!(text.contains("loop_delta_count 3\n"), "{text}");
        assert!(text.contains("loop_delta_dropped 1\n"), "{text}");
        assert!(text.contains("loop_delta{quantile=\"0.5\"} 2\n"), "{text}");
        assert!(text.contains("loop_delta{quantile=\"1\"} 3\n"), "{text}");
        assert!(text.contains("telemetry_events_total 1\n"), "{text}");
        assert!(text.contains("telemetry_events{kind=\"SensorDropout\"} 1\n"));
        // Every line is `name value` or `name{labels} value`.
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some() && parts.next().is_some(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }

    #[test]
    fn names_are_sanitised() {
        assert_eq!(metric_name("sweep.tail-ms"), "sweep_tail_ms");
        assert_eq!(metric_name("9lives"), "_9lives");
    }
}
