//! Wall-time attribution: fold a flat list of [`SpanRecord`]s into a
//! self/total time tree aggregated by name path.
//!
//! Every span contributes its duration to the tree node addressed by its
//! chain of ancestor names (`fig9 → sweep.stage → sweep.worker →
//! engine.batch`). A node's **total** is the summed duration of its
//! spans; its **self** time is total minus the time covered by direct
//! children (clamped at zero — parallel workers can legitimately overlap
//! their parent). Per-node duration quantiles come from the
//! [`QuantileSketch`], so a node visited thousands of times (cache
//! probes, kernel steps) reports p50/p90/p99/max rather than just a
//! mean.

use std::collections::HashMap;

use crate::sketch::QuantileSketch;
use crate::trace::{SpanRecord, NO_PARENT};

/// One aggregated node of the attribution tree.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Span name (the last element of the name path).
    pub name: String,
    /// Summed duration of every span aggregated here, microseconds.
    pub total_us: u64,
    /// `total_us` minus time covered by direct children (clamped ≥ 0).
    pub self_us: u64,
    /// Number of spans aggregated into this node.
    pub calls: u64,
    /// Distribution of single-span durations (milliseconds).
    pub durations_ms: QuantileSketch,
    /// Child nodes, sorted by descending total time.
    pub children: Vec<ProfileNode>,
}

/// The attribution tree for one trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Root nodes (spans with no parent), sorted by descending total.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// Sum of `self_us` over the whole tree — the wall time the trace
    /// can attribute to a specific region.
    pub fn attributed_self_us(&self) -> u64 {
        fn walk(n: &ProfileNode) -> u64 {
            n.self_us + n.children.iter().map(walk).sum::<u64>()
        }
        self.roots.iter().map(walk).sum()
    }
}

#[derive(Default)]
struct Agg {
    total_us: u64,
    self_us: u64,
    calls: u64,
    durations: QuantileSketch,
    children: HashMap<String, Agg>,
}

impl Agg {
    fn into_node(self, name: String) -> ProfileNode {
        let mut children: Vec<ProfileNode> = self
            .children
            .into_iter()
            .map(|(name, agg)| agg.into_node(name))
            .collect();
        children.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        ProfileNode {
            name,
            total_us: self.total_us,
            self_us: self.self_us,
            calls: self.calls,
            durations_ms: self.durations,
            children,
        }
    }
}

/// Build the attribution tree from finished spans (any order). Spans
/// whose parent id is unknown (e.g. a trace drained mid-run) are treated
/// as roots.
pub fn build_profile(spans: &[SpanRecord]) -> Profile {
    // Parent chain lookup and per-parent child time.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_time: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != NO_PARENT {
            *child_time.entry(s.parent).or_insert(0) += s.dur_us();
        }
    }

    // Name path of a span: ancestor names root-first.
    fn path_of<'a>(s: &'a SpanRecord, by_id: &HashMap<u64, &'a SpanRecord>) -> Vec<&'a str> {
        let mut path = vec![s.name.as_str()];
        let mut cur = s.parent;
        let mut hops = 0usize;
        while cur != NO_PARENT && hops < 256 {
            match by_id.get(&cur) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cur = p.parent;
                }
                None => break,
            }
            hops += 1;
        }
        path.reverse();
        path
    }

    let mut root = Agg::default();
    for s in spans {
        let dur = s.dur_us();
        let covered = child_time.get(&s.id).copied().unwrap_or(0);
        let mut node = &mut root;
        for name in path_of(s, &by_id) {
            node = node.children.entry(name.to_owned()).or_default();
        }
        node.total_us += dur;
        node.self_us += dur.saturating_sub(covered);
        node.calls += 1;
        node.durations.record(dur as f64 / 1000.0);
    }
    root.into_node(String::new()).children.into_iter().fold(
        Profile { roots: Vec::new() },
        |mut p, n| {
            p.roots.push(n);
            p
        },
    )
}

fn fmt_ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

fn fmt_q(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"))
}

/// Render the tree as the `--profile` report. `wall_ms` is the measured
/// wall time of the run the trace came from; the header states how much
/// of it the tree attributes to specific regions.
pub fn render_profile(profile: &Profile, wall_ms: f64) -> String {
    let attributed_ms = profile.attributed_self_us() as f64 / 1000.0;
    let pct = if wall_ms > 0.0 {
        100.0 * attributed_ms / wall_ms
    } else {
        0.0
    };
    let mut out =
        format!("profile: wall {wall_ms:.2} ms, attributed {attributed_ms:.2} ms ({pct:.1}%)\n");
    out.push_str(&format!(
        "  {:<42} {:>10} {:>10} {:>7} {:>8} {:>8} {:>8} {:>8}\n",
        "span", "total ms", "self ms", "calls", "p50", "p90", "p99", "max"
    ));
    fn walk(out: &mut String, node: &ProfileNode, depth: usize) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", node.name);
        let s = &node.durations_ms;
        out.push_str(&format!(
            "  {:<42} {:>10} {:>10} {:>7} {:>8} {:>8} {:>8} {:>8}\n",
            label,
            fmt_ms(node.total_us),
            fmt_ms(node.self_us),
            node.calls,
            fmt_q(s.quantile(0.5)),
            fmt_q(s.quantile(0.9)),
            fmt_q(s.quantile(0.99)),
            fmt_q(s.max()),
        ));
        for c in &node.children {
            walk(out, c, depth + 1);
        }
    }
    for root in &profile.roots {
        walk(&mut out, root, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            tid: 0,
            start_us,
            end_us,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let spans = vec![
            span(1, 0, "run", 0, 1000),
            span(2, 1, "probe", 0, 300),
            span(3, 1, "compute", 300, 900),
        ];
        let p = build_profile(&spans);
        assert_eq!(p.roots.len(), 1);
        let run = &p.roots[0];
        assert_eq!(run.total_us, 1000);
        assert_eq!(run.self_us, 100);
        assert_eq!(run.children.len(), 2);
        // Children sorted by descending total.
        assert_eq!(run.children[0].name, "compute");
        assert_eq!(run.children[0].self_us, 600);
        assert_eq!(p.attributed_self_us(), 1000);
    }

    #[test]
    fn overlapping_children_clamp_self_at_zero() {
        // Two parallel workers each cover the parent's whole window.
        let spans = vec![
            span(1, 0, "stage", 0, 500),
            span(2, 1, "worker", 0, 500),
            span(3, 1, "worker", 0, 500),
        ];
        let p = build_profile(&spans);
        let stage = &p.roots[0];
        assert_eq!(stage.self_us, 0, "never negative");
        assert_eq!(stage.children[0].calls, 2);
        assert_eq!(stage.children[0].total_us, 1000);
    }

    #[test]
    fn same_name_different_parents_stay_separate() {
        let spans = vec![
            span(1, 0, "a", 0, 100),
            span(2, 0, "b", 100, 200),
            span(3, 1, "step", 0, 50),
            span(4, 2, "step", 100, 160),
        ];
        let p = build_profile(&spans);
        let a = p.roots.iter().find(|n| n.name == "a").expect("a");
        let b = p.roots.iter().find(|n| n.name == "b").expect("b");
        assert_eq!(a.children[0].total_us, 50);
        assert_eq!(b.children[0].total_us, 60);
    }

    #[test]
    fn orphan_spans_become_roots() {
        let spans = vec![span(5, 99, "lost", 0, 10)];
        let p = build_profile(&spans);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].name, "lost");
    }

    #[test]
    fn render_reports_attribution_percentage() {
        let spans = vec![span(1, 0, "run", 0, 10_000)];
        let p = build_profile(&spans);
        let text = render_profile(&p, 10.0);
        assert!(text.starts_with("profile: wall 10.00 ms, attributed 10.00 ms (100.0%)"));
        assert!(text.contains("run"));
    }
}
