//! Named metric registry: counters, gauges, fixed-bucket histograms and
//! wall-clock spans.
//!
//! Resolution (name → handle) takes a registry lock; the handles
//! themselves are `Arc`ed atomics, so the hot path — `inc`, `add`,
//! `set`, `record` — is lock-free. Resolve handles once per region, not
//! per iteration.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sketch::QuantileSketch;

/// A monotonically increasing `u64` metric.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    pub(crate) fn noop() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins `f64` metric (stored as bit pattern in an atomic).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    pub(crate) fn noop() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Overwrite the gauge with `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

struct HistogramCore {
    lo: f64,
    hi: f64,
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    dropped: AtomicU64,
    sketch: Mutex<QuantileSketch>,
}

/// A fixed-bucket histogram: `buckets` equal bins over `[lo, hi)` plus
/// explicit underflow/overflow edge bins, backed by a
/// [`QuantileSketch`] for p50/p90/p99/max. Out-of-range samples clamp to
/// the edge bins; non-finite samples (NaN/±inf) are **dropped** — they
/// count under [`HistogramSnapshot::dropped`] and never contaminate the
/// bins or the quantiles.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    pub(crate) fn noop() -> Self {
        Histogram { core: None }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        let Some(core) = &self.core else { return };
        if !v.is_finite() {
            core.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if v >= core.hi {
            core.overflow.fetch_add(1, Ordering::Relaxed);
        } else if v < core.lo {
            core.underflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let frac = (v - core.lo) / (core.hi - core.lo);
            let idx = ((frac * core.buckets.len() as f64) as usize).min(core.buckets.len() - 1);
            core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        core.sketch.lock().expect("histogram sketch lock").record(v);
    }
}

/// A wall-clock timer; on drop it adds the elapsed nanoseconds to one
/// counter and bumps a call counter. Obtained from
/// [`Telemetry::span`](crate::Telemetry::span).
pub struct Span {
    started: Option<Instant>,
    ns: Counter,
    calls: Counter,
}

impl Span {
    pub(crate) fn noop() -> Self {
        Span {
            started: None,
            ns: Counter::noop(),
            calls: Counter::noop(),
        }
    }

    pub(crate) fn running(ns: Counter, calls: Counter) -> Self {
        Span {
            started: Some(Instant::now()),
            ns,
            calls,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            let dt = t0.elapsed().as_nanos();
            self.ns.add(u64::try_from(dt).unwrap_or(u64::MAX));
            self.calls.inc();
        }
    }
}

/// Point-in-time copy of a histogram's bins and quantiles.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Per-bin sample counts (equal bins over the configured range).
    pub buckets: Vec<u64>,
    /// Samples below the range (clamped to the lower edge bin).
    pub underflow: u64,
    /// Samples at/above the range (clamped to the upper edge bin).
    pub overflow: u64,
    /// Finite samples recorded (bins + underflow + overflow).
    pub count: u64,
    /// Non-finite samples dropped (excluded from `count` and quantiles).
    pub dropped: u64,
    /// Median from the quantile sketch (`None` while empty).
    pub p50: Option<f64>,
    /// 90th percentile from the quantile sketch.
    pub p90: Option<f64>,
    /// 99th percentile from the quantile sketch.
    pub p99: Option<f64>,
    /// Exact maximum of the stream.
    pub max: Option<f64>,
}

/// Point-in-time copy of every metric plus event-log accounting, filled
/// in by [`Telemetry::snapshot`](crate::Telemetry::snapshot).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Total events emitted (including those evicted from the ring).
    pub events_total: u64,
    /// `(kind, count)` per event kind, sorted by kind.
    pub events_by_kind: Vec<(String, u64)>,
}

impl Snapshot {
    /// Value of the counter `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of events of the given kind (0 if none were emitted).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.events_by_kind
            .iter()
            .find(|(n, _)| n == kind)
            .map_or(0, |(_, v)| *v)
    }
}

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter registry lock");
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter::live(Arc::clone(cell))
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge registry lock");
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())));
        Gauge::live(Arc::clone(cell))
    }

    pub(crate) fn histogram(&self, name: &str, lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "histogram needs lo < hi"
        );
        let mut map = self.histograms.lock().expect("histogram registry lock");
        let core = map.entry(name.to_owned()).or_insert_with(|| {
            Arc::new(HistogramCore {
                lo,
                hi,
                buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
                underflow: AtomicU64::new(0),
                overflow: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                sketch: Mutex::new(QuantileSketch::new()),
            })
        });
        Histogram {
            core: Some(Arc::clone(core)),
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry lock")
            .iter()
            .map(|(n, c)| (n.clone(), f64::from_bits(c.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(n, core)| {
                let buckets: Vec<u64> = core
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                let underflow = core.underflow.load(Ordering::Relaxed);
                let overflow = core.overflow.load(Ordering::Relaxed);
                let count = buckets.iter().sum::<u64>() + underflow + overflow;
                let sketch = core.sketch.lock().expect("histogram sketch lock");
                HistogramSnapshot {
                    name: n.clone(),
                    buckets,
                    underflow,
                    overflow,
                    count,
                    dropped: core.dropped.load(Ordering::Relaxed),
                    p50: sketch.quantile(0.5),
                    p90: sketch.quantile(0.9),
                    p99: sketch.quantile(0.99),
                    max: sketch.max(),
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            events_total: 0,
            events_by_kind: Vec::new(),
        }
    }
}
