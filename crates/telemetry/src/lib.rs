//! `clock-telemetry` — workspace-wide instrumentation for the adaptive
//! clock reproduction.
//!
//! One [`Telemetry`] handle is threaded through the simulation engines and
//! experiment harnesses. It is either **disabled** (the default —
//! every operation is a branch on a `None` and nothing is allocated,
//! recorded, or locked) or **enabled**, in which case it carries:
//!
//! * a registry of named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s (lock-free on the hot path — handles are resolved
//!   once and update atomics);
//! * [`Span`] wall-clock timers that accumulate per-region time;
//! * a structured [`Event`] log — timing violations, RO length
//!   saturations, controller updates, sensor dropouts, margin-search
//!   iterations — drained to a bounded in-memory ring buffer and,
//!   optionally, to a JSONL file sink;
//! * a [`Snapshot`] for end-of-run summaries.
//!
//! The handle is `Clone` (cheap `Arc` clone) and `Send + Sync`, so one
//! telemetry instance can observe parallel sweeps.
//!
//! ```
//! use clock_telemetry::{Event, Telemetry};
//!
//! let t = Telemetry::enabled();
//! let violations = t.counter("core.timing_violations");
//! violations.inc();
//! t.emit(12.5, Event::TimingViolation { tau: 63.0, setpoint: 64.0, margin: 1.0 });
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("core.timing_violations"), Some(1));
//! assert_eq!(snap.events_total, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod expose;
pub mod profile;
pub mod registry;
pub mod sketch;
pub mod trace;

use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

pub use event::{Event, EventRecord};
pub use expose::prometheus_text;
pub use profile::{build_profile, render_profile, Profile, ProfileNode};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Snapshot, Span};
pub use sketch::QuantileSketch;
pub use trace::{SpanRecord, TraceScope, NO_PARENT};

use event::EventLog;
use registry::Registry;
use trace::TraceBuf;

/// Default capacity of the in-memory event ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

struct Inner {
    registry: Registry,
    log: Mutex<EventLog>,
    trace: OnceLock<TraceBuf>,
}

/// The instrumentation handle. Cheap to clone and pass around; a disabled
/// handle makes every operation a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle (same as `Telemetry::default()`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default ring-buffer sink and no file
    /// sink.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle with a ring buffer of the given capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                log: Mutex::new(EventLog::new(capacity, None)),
                trace: OnceLock::new(),
            })),
        }
    }

    /// An enabled handle that additionally appends every event as one
    /// JSON line to the file at `path` (truncating an existing file).
    ///
    /// # Errors
    ///
    /// Propagates the error from creating the file.
    pub fn to_jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                log: Mutex::new(EventLog::new(
                    DEFAULT_RING_CAPACITY,
                    Some(std::io::BufWriter::new(file)),
                )),
                trace: OnceLock::new(),
            })),
        })
    }

    /// Like [`Telemetry::to_jsonl`], but an unopenable sink **degrades**
    /// instead of failing: the handle comes back enabled with the ring
    /// buffer only, and the `telemetry.open_failures` counter records
    /// the degradation (mirroring the result cache's
    /// `persistent_or_disabled`). The run proceeds either way.
    pub fn to_jsonl_or_degraded(path: impl AsRef<Path>) -> Self {
        match Self::to_jsonl(path) {
            Ok(t) => t,
            Err(_) => {
                let t = Self::enabled();
                t.counter("telemetry.open_failures").inc();
                t
            }
        }
    }

    /// Whether events are being mirrored to a JSONL file sink.
    pub fn has_file_sink(&self) -> bool {
        match &self.inner {
            Some(i) => i.log.lock().expect("event log lock").has_sink(),
            None => false,
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (creating on first use) the counter named `name`. The
    /// returned handle updates an atomic directly — resolve once outside
    /// hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Resolve (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Resolve (creating on first use) a histogram with `buckets` equal
    /// bins spanning `[lo, hi)` plus under/overflow bins. Bounds are fixed
    /// by the first resolution of each name.
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, buckets: usize) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, lo, hi, buckets),
            None => Histogram::noop(),
        }
    }

    /// Start a wall-clock span. On drop it adds the elapsed nanoseconds to
    /// the counter `<name>.ns` and increments `<name>.calls`.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(i) => Span::running(
                i.registry.counter(&format!("{name}.ns")),
                i.registry.counter(&format!("{name}.calls")),
            ),
            None => Span::noop(),
        }
    }

    /// Turn on hierarchical span tracing for this handle (idempotent;
    /// the first call fixes the trace epoch). Until this is called,
    /// [`Telemetry::scope`] hands out inert guards, so instrumentation
    /// in hot paths costs one branch when profiling is off.
    pub fn enable_tracing(&self) {
        if let Some(i) = &self.inner {
            let _ = i.trace.get_or_init(TraceBuf::new);
        }
    }

    /// Whether [`enable_tracing`](Telemetry::enable_tracing) has been
    /// called on an enabled handle.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_buf().is_some()
    }

    pub(crate) fn trace_buf(&self) -> Option<&TraceBuf> {
        self.inner.as_ref().and_then(|i| i.trace.get())
    }

    /// Open a trace span named `name`. Its parent is the innermost span
    /// of this handle still live **on this thread** (spans opened on
    /// other threads need [`Telemetry::scope_under`]). The span ends —
    /// and is recorded + emitted as an [`Event::Span`] — when the guard
    /// drops.
    pub fn scope(&self, name: &str) -> TraceScope {
        if self.tracing_enabled() {
            TraceScope::open(self, name, None)
        } else {
            TraceScope::noop()
        }
    }

    /// Open a trace span with an explicit parent id — the cross-thread
    /// variant: capture [`Telemetry::current_span`] (or
    /// [`TraceScope::id`]) before spawning and pass it here from the
    /// worker thread.
    pub fn scope_under(&self, parent: u64, name: &str) -> TraceScope {
        if self.tracing_enabled() {
            TraceScope::open(self, name, Some(parent))
        } else {
            TraceScope::noop()
        }
    }

    /// Id of the innermost live span on this thread ([`NO_PARENT`] when
    /// none, or when tracing is off).
    pub fn current_span(&self) -> u64 {
        self.trace_buf().map_or(NO_PARENT, trace::current_on_thread)
    }

    /// Every finished span so far, sorted by start time (empty when
    /// tracing is off).
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.trace_buf().map_or_else(Vec::new, TraceBuf::finished)
    }

    /// The finished spans rendered as a Chrome trace-event JSON document
    /// (load in `chrome://tracing` or Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(&self.trace_spans())
    }

    /// Write the Chrome trace-event document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-write error.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Record a structured event at domain time `time` (simulation time
    /// for engine events, the sweep coordinate for search events).
    pub fn emit(&self, time: f64, event: Event) {
        if let Some(i) = &self.inner {
            i.log.lock().expect("event log lock").emit(time, event);
        }
    }

    /// The most recent events still held by the ring buffer (oldest
    /// first).
    pub fn recent_events(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(i) => i.log.lock().expect("event log lock").recent(),
            None => Vec::new(),
        }
    }

    /// A point-in-time copy of every metric and the event accounting.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(i) => {
                let mut snap = i.registry.snapshot();
                let log = i.log.lock().expect("event log lock");
                snap.events_total = log.total();
                snap.events_by_kind = log.counts_by_kind();
                snap
            }
            None => Snapshot::default(),
        }
    }

    /// Flush the JSONL sink, if any, and surface any write error that
    /// occurred since the last flush.
    ///
    /// # Errors
    ///
    /// Returns the first sticky I/O error from the JSONL sink.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(i) => i.log.lock().expect("event log lock").flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("x").inc();
        t.gauge("y").set(1.5);
        t.histogram("h", 0.0, 1.0, 4).record(0.5);
        t.emit(0.0, Event::SensorDropout { sensor: 0 });
        drop(t.span("s"));
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert_eq!(snap.events_total, 0);
        assert!(t.recent_events().is_empty());
        assert!(t.flush().is_ok());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let t = Telemetry::enabled();
        let c1 = t.counter("steps");
        let c2 = t.clone().counter("steps");
        c1.add(3);
        c2.inc();
        assert_eq!(t.snapshot().counter("steps"), Some(4));
    }

    #[test]
    fn gauge_keeps_last_value() {
        let t = Telemetry::enabled();
        let g = t.gauge("margin");
        g.set(2.5);
        g.set(-1.25);
        let snap = t.snapshot();
        let (_, v) = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "margin")
            .expect("gauge present");
        assert_eq!(*v, -1.25);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let t = Telemetry::enabled();
        let h = t.histogram("delta", 0.0, 4.0, 4);
        for v in [-1.0, 0.5, 1.5, 1.6, 3.9, 100.0] {
            h.record(v);
        }
        let snap = t.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.underflow, 1);
        assert_eq!(hs.overflow, 1);
        assert_eq!(hs.buckets, vec![1, 2, 0, 1]);
        assert_eq!(hs.count, 6);
    }

    #[test]
    fn histogram_drops_non_finite_samples() {
        let t = Telemetry::enabled();
        let h = t.histogram("delta", 0.0, 4.0, 4);
        h.record(1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        let snap = t.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.dropped, 3, "NaN and both infinities are dropped");
        assert_eq!(hs.count, 1, "dropped samples never reach the bins");
        assert_eq!(hs.underflow, 0, "-inf must not clamp into underflow");
        assert_eq!(hs.overflow, 0, "+inf must not clamp into overflow");
        assert_eq!(hs.max, Some(1.0), "quantiles see only finite samples");
    }

    #[test]
    fn histogram_clamps_out_of_range_to_edge_bins() {
        let t = Telemetry::enabled();
        let h = t.histogram("delta", 0.0, 4.0, 4);
        h.record(-1e18);
        h.record(-0.001);
        h.record(4.0); // hi itself is exclusive
        h.record(1e18);
        let snap = t.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.underflow, 2);
        assert_eq!(hs.overflow, 2);
        assert_eq!(hs.buckets, vec![0, 0, 0, 0]);
        assert_eq!(hs.count, 4, "clamped samples still count");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let t = Telemetry::enabled();
        let _ = t.histogram("bad", 0.0, 1.0, 0);
    }

    #[test]
    fn histogram_quantiles_track_the_stream() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat", 0.0, 200.0, 10);
        for k in 1..=100 {
            h.record(f64::from(k));
        }
        let snap = t.snapshot();
        let hs = &snap.histograms[0];
        let p50 = hs.p50.expect("non-empty stream has a median");
        let p99 = hs.p99.expect("non-empty stream has a p99");
        assert!((45.0..=55.0).contains(&p50), "p50 ≈ 50, got {p50}");
        assert!(p99 >= 95.0, "p99 near the top, got {p99}");
        assert_eq!(hs.max, Some(100.0), "max is exact");
    }

    #[test]
    fn unopenable_sink_degrades_instead_of_failing() {
        let t = Telemetry::to_jsonl_or_degraded("/nonexistent-dir/deeper/sink.jsonl");
        assert!(t.is_enabled(), "degraded handle still records metrics");
        assert!(!t.has_file_sink());
        t.counter("work").inc();
        let snap = t.snapshot();
        assert_eq!(snap.counter("telemetry.open_failures"), Some(1));
        assert_eq!(snap.counter("work"), Some(1));
    }

    #[test]
    fn span_times_are_recorded() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("work.calls"), Some(1));
        assert!(snap.counter("work.ns").expect("ns counter") > 1_000_000);
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let t = Telemetry::with_ring_capacity(3);
        for k in 0..5u64 {
            t.emit(k as f64, Event::SensorDropout { sensor: k });
        }
        let recent = t.recent_events();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[2].seq, 4);
        assert_eq!(t.snapshot().events_total, 5);
    }

    #[test]
    fn events_count_by_kind() {
        let t = Telemetry::enabled();
        t.emit(
            0.0,
            Event::TimingViolation {
                tau: 63.0,
                setpoint: 64.0,
                margin: 1.0,
            },
        );
        t.emit(
            1.0,
            Event::TimingViolation {
                tau: 62.0,
                setpoint: 64.0,
                margin: 2.0,
            },
        );
        t.emit(
            2.0,
            Event::ControllerUpdate {
                delta: 1.0,
                length: 65.0,
            },
        );
        let snap = t.snapshot();
        assert_eq!(snap.event_count("TimingViolation"), 2);
        assert_eq!(snap.event_count("ControllerUpdate"), 1);
        assert_eq!(snap.event_count("RoSaturation"), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_records() {
        let path = std::env::temp_dir().join("clock-telemetry-test-sink.jsonl");
        let t = Telemetry::to_jsonl(&path).expect("temp file");
        t.emit(
            1.0,
            Event::RoSaturation {
                requested: 80.2,
                clamped: 76.0,
            },
        );
        t.emit(2.0, Event::SensorDropout { sensor: 1 });
        t.flush().expect("flush");
        let body = std::fs::read_to_string(&path).expect("read back");
        let records: Vec<EventRecord> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL line"))
            .collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert!(matches!(records[0].event, Event::RoSaturation { .. }));
        let _ = std::fs::remove_file(&path);
    }

    /// Dropping the last handle without an explicit flush must still land
    /// every buffered event on disk — the last events of a run are exactly
    /// the ones a crash-analysis needs, and a `BufWriter` silently dropped
    /// mid-buffer used to lose them.
    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path = std::env::temp_dir().join(format!(
            "clock-telemetry-drop-sink-{}.jsonl",
            std::process::id()
        ));
        {
            let t = Telemetry::to_jsonl(&path).expect("temp file");
            for k in 0..32u64 {
                t.emit(k as f64, Event::SensorDropout { sensor: k });
            }
            // no flush: the drop path owns persistence
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(
            body.lines().count(),
            32,
            "all events must survive an unflushed drop"
        );
        for line in body.lines() {
            let _: EventRecord = serde_json::from_str(line).expect("complete JSONL line");
        }
        let _ = std::fs::remove_file(&path);
    }
}
