//! Hierarchical trace spans: parent/child span ids, monotonic
//! microsecond timestamps, per-span attributes, and a Chrome
//! trace-event exporter.
//!
//! Tracing is **opt-in on top of an enabled handle**
//! ([`Telemetry::enable_tracing`](crate::Telemetry::enable_tracing)):
//! a handle without tracing hands out no-op [`TraceScope`]s, so
//! instrumented hot paths cost one branch when profiling is off.
//!
//! Parent/child structure is tracked automatically per thread: a scope
//! opened while another scope of the same handle is live on the same
//! thread becomes its child. Crossing threads (sweep workers) is
//! explicit — capture [`Telemetry::current_span`](crate::Telemetry::current_span)
//! before spawning and open the worker scope with
//! [`Telemetry::scope_under`](crate::Telemetry::scope_under).
//!
//! Every finished span is appended to an in-memory buffer (drained by
//! [`Telemetry::trace_spans`](crate::Telemetry::trace_spans) for the
//! profiler) and emitted as an [`Event::Span`] on
//! the structured event log, so a `--telemetry` JSONL capture carries
//! the span tree inline with the engine events. The whole trace exports
//! to the Chrome trace-event format (`chrome://tracing`, Perfetto) via
//! [`Telemetry::chrome_trace_json`](crate::Telemetry::chrome_trace_json).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{Event, Telemetry};

/// The parent id of a root span.
pub const NO_PARENT: u64 = 0;

/// One finished span: ids, name, thread, microsecond window and
/// attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or [`NO_PARENT`] for a root.
    pub parent: u64,
    /// Span name (the profiler aggregates by name path).
    pub name: String,
    /// Small stable per-thread index (0 = first tracing thread seen).
    pub tid: u64,
    /// Start, in microseconds since tracing was enabled (monotonic).
    pub start_us: u64,
    /// End, in microseconds since tracing was enabled (monotonic).
    pub end_us: u64,
    /// Free-form `key=value` attributes attached via [`TraceScope::attr`].
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The per-handle trace state: epoch, id allocator and the finished-span
/// buffer.
pub(crate) struct TraceBuf {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceBuf {
    pub(crate) fn new() -> Self {
        TraceBuf {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn token(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    pub(crate) fn finished(&self) -> Vec<SpanRecord> {
        let mut spans = self.spans.lock().expect("trace span buffer lock").clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }
}

// Process-wide small thread indices, stable for the thread's lifetime.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The stack of live spans on this thread: `(handle token, span id)`.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

fn thread_tid() -> u64 {
    TID.with(|t| *t)
}

/// The id of the innermost live span of `buf` on this thread.
pub(crate) fn current_on_thread(buf: &TraceBuf) -> u64 {
    let token = buf.token();
    SPAN_STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|(t, _)| *t == token)
            .map_or(NO_PARENT, |(_, id)| *id)
    })
}

/// A live span guard. Ends (and records) the span on drop. Obtained from
/// [`Telemetry::scope`](crate::Telemetry::scope) /
/// [`Telemetry::scope_under`](crate::Telemetry::scope_under); a handle
/// without tracing returns an inert guard.
pub struct TraceScope {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    telemetry: Telemetry,
    id: u64,
    parent: u64,
    name: String,
    tid: u64,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

impl TraceScope {
    pub(crate) fn noop() -> Self {
        TraceScope { live: None }
    }

    pub(crate) fn open(telemetry: &Telemetry, name: &str, parent: Option<u64>) -> Self {
        let Some(buf) = telemetry.trace_buf() else {
            return TraceScope::noop();
        };
        let parent = parent.unwrap_or_else(|| current_on_thread(buf));
        let id = buf.next_id.fetch_add(1, Ordering::Relaxed);
        let start_us = buf.now_us();
        let token = buf.token();
        SPAN_STACK.with(|s| s.borrow_mut().push((token, id)));
        TraceScope {
            live: Some(LiveSpan {
                telemetry: telemetry.clone(),
                id,
                parent,
                name: name.to_owned(),
                tid: thread_tid(),
                start_us,
                attrs: Vec::new(),
            }),
        }
    }

    /// Whether this guard records anything on drop.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// The span id (0 for an inert guard) — the value to hand to
    /// [`Telemetry::scope_under`](crate::Telemetry::scope_under) on
    /// another thread.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(NO_PARENT, |l| l.id)
    }

    /// Attach a `key=value` attribute (no-op on an inert guard).
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(l) = self.live.as_mut() {
            l.attrs.push((key.to_owned(), value.to_string()));
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let Some(buf) = live.telemetry.trace_buf() else {
            return;
        };
        let end_us = buf.now_us();
        let token = buf.token();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|e| *e == (token, live.id)) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            tid: live.tid,
            start_us: live.start_us,
            end_us,
            attrs: live.attrs,
        };
        live.telemetry.emit(
            record.start_us as f64,
            Event::Span {
                id: record.id,
                parent: record.parent,
                name: record.name.clone(),
                start_us: record.start_us,
                end_us: record.end_us,
            },
        );
        buf.spans
            .lock()
            .expect("trace span buffer lock")
            .push(record);
    }
}

/// Render spans as a Chrome trace-event JSON document (the
/// `chrome://tracing` / Perfetto "JSON Array Format" with the standard
/// `traceEvents` wrapper). Every span becomes one complete (`"ph":"X"`)
/// event; ids, parent links and attributes ride in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    use serde::Value;
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut args = vec![
                ("id".to_owned(), Value::Str(s.id.to_string())),
                ("parent".to_owned(), Value::Str(s.parent.to_string())),
            ];
            for (k, v) in &s.attrs {
                args.push((k.clone(), Value::Str(v.clone())));
            }
            Value::Object(vec![
                ("name".to_owned(), Value::Str(s.name.clone())),
                ("cat".to_owned(), Value::Str("repro".to_owned())),
                ("ph".to_owned(), Value::Str("X".to_owned())),
                ("ts".to_owned(), Value::UInt(s.start_us)),
                ("dur".to_owned(), Value::UInt(s.dur_us())),
                ("pid".to_owned(), Value::UInt(1)),
                ("tid".to_owned(), Value::UInt(s.tid)),
                ("args".to_owned(), Value::Object(args)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
    ]);
    serde_json::to_string(&doc).expect("chrome trace document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced() -> Telemetry {
        let t = Telemetry::enabled();
        t.enable_tracing();
        t
    }

    #[test]
    fn disabled_and_untraced_handles_hand_out_inert_scopes() {
        let off = Telemetry::disabled();
        let mut s = off.scope("x");
        assert!(!s.is_recording());
        s.attr("k", 1);
        drop(s);
        assert!(off.trace_spans().is_empty());

        let untraced = Telemetry::enabled();
        assert!(!untraced.tracing_enabled());
        assert!(!untraced.scope("x").is_recording());
        assert!(untraced.trace_spans().is_empty());
    }

    #[test]
    fn nesting_links_parent_and_child() {
        let t = traced();
        {
            let outer = t.scope("outer");
            let outer_id = outer.id();
            {
                let inner = t.scope("inner");
                assert_ne!(inner.id(), outer_id);
            }
            assert_eq!(t.current_span(), outer_id);
        }
        assert_eq!(t.current_span(), NO_PARENT);
        let spans = t.trace_spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.parent, NO_PARENT);
        assert_eq!(inner.parent, outer.id);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us <= outer.end_us);
    }

    #[test]
    fn siblings_share_a_parent() {
        let t = traced();
        {
            let _root = t.scope("root");
            drop(t.scope("a"));
            drop(t.scope("b"));
        }
        let spans = t.trace_spans();
        let root = spans.iter().find(|s| s.name == "root").expect("root");
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).expect(name);
            assert_eq!(s.parent, root.id, "{name} must attach to root");
        }
    }

    #[test]
    fn cross_thread_parenting_via_scope_under() {
        let t = traced();
        {
            let root = t.scope("root");
            let root_id = root.id();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let mut w = t.scope_under(root_id, "worker");
                    w.attr("index", 3);
                    drop(t.scope("job"));
                });
            });
        }
        let spans = t.trace_spans();
        let root = spans.iter().find(|s| s.name == "root").expect("root");
        let worker = spans.iter().find(|s| s.name == "worker").expect("worker");
        let job = spans.iter().find(|s| s.name == "job").expect("job");
        assert_eq!(worker.parent, root.id);
        assert_eq!(job.parent, worker.id, "thread-local nesting under worker");
        assert_ne!(worker.tid, root.tid, "worker ran on another thread");
        assert_eq!(worker.attrs, vec![("index".to_owned(), "3".to_owned())]);
    }

    #[test]
    fn two_handles_do_not_cross_parent() {
        let a = traced();
        let b = traced();
        let _ra = a.scope("root-a");
        let sb = b.scope("root-b");
        // b's scope must not adopt a's live span as parent.
        drop(sb);
        let spans = b.trace_spans();
        assert_eq!(spans[0].parent, NO_PARENT);
    }

    #[test]
    fn spans_are_emitted_to_the_event_log_children_first() {
        let t = traced();
        {
            let _outer = t.scope("outer");
            let _inner = t.scope("inner");
        }
        let kinds: Vec<String> = t
            .recent_events()
            .iter()
            .map(|r| r.event.kind_name().to_owned())
            .collect();
        assert_eq!(kinds, vec!["Span", "Span"]);
        let names: Vec<String> = t
            .recent_events()
            .iter()
            .filter_map(|r| match &r.event {
                Event::Span { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            names,
            vec!["inner", "outer"],
            "a child span finishes (and logs) before its parent"
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let t = traced();
        {
            let mut s = t.scope("root");
            s.attr("grid", 9);
            drop(t.scope("child"));
        }
        let json = t.chrome_trace_json();
        let doc: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let obj = doc.as_object().expect("top-level object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for ev in events {
            let fields = ev.as_object().expect("event object");
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
    }
}
