//! Transient-response metrics: settling time, overshoot, rise time, limit
//! cycles. Used by the design-space ablations ("balance between filter
//! adaptation velocity and low output ripple", paper §IV).

use serde::{Deserialize, Serialize};

/// Index after which `|e[n]| ≤ band` holds for the rest of the record
/// (i.e. the settling time in samples), or `None` if the signal is still
/// outside the band at the end.
pub fn settling_time(errors: &[f64], band: f64) -> Option<usize> {
    assert!(band >= 0.0, "band must be non-negative");
    match errors.iter().rposition(|e| e.abs() > band) {
        None => Some(0),
        Some(last_bad) if last_bad + 1 < errors.len() => Some(last_bad + 1),
        Some(_) => None,
    }
}

/// Peak overshoot of a step response beyond its final value, as a fraction
/// of the step size. Returns 0 for non-overshooting responses.
///
/// # Panics
///
/// Panics if `step_size == 0`.
pub fn overshoot(response: &[f64], final_value: f64, step_size: f64) -> f64 {
    assert!(step_size != 0.0, "step size must be nonzero");
    let sign = step_size.signum();
    response
        .iter()
        .map(|&y| sign * (y - final_value) / step_size.abs())
        .fold(0.0, f64::max)
}

/// 10–90 % rise time of a step response (samples between first crossing of
/// `lo_frac` and first crossing of `hi_frac` of the final value), or
/// `None` if either level is never reached.
///
/// # Panics
///
/// Panics unless `0 ≤ lo_frac < hi_frac ≤ 1`.
pub fn rise_time(response: &[f64], final_value: f64, lo_frac: f64, hi_frac: f64) -> Option<usize> {
    assert!(
        (0.0..1.0).contains(&lo_frac) && lo_frac < hi_frac && hi_frac <= 1.0,
        "rise-time fractions must satisfy 0 <= lo < hi <= 1"
    );
    let sign = final_value.signum();
    let crossed = |frac: f64| {
        response
            .iter()
            .position(|&y| sign * y >= frac * final_value.abs())
    };
    let lo = crossed(lo_frac)?;
    let hi = crossed(hi_frac)?;
    Some(hi.saturating_sub(lo))
}

/// Peak-to-peak amplitude of the tail of a record — the steady-state limit
/// cycle (TEAtime hunts ±1 stage; the integer IIR dithers a fraction of a
/// stage).
///
/// # Panics
///
/// Panics if `tail_fraction` is not in `(0, 1]` or the record is empty.
pub fn limit_cycle_amplitude(record: &[f64], tail_fraction: f64) -> f64 {
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail fraction must be in (0, 1]"
    );
    assert!(!record.is_empty(), "record must be non-empty");
    let start = ((1.0 - tail_fraction) * record.len() as f64) as usize;
    let tail = &record[start.min(record.len() - 1)..];
    let lo = tail.iter().cloned().fold(f64::MAX, f64::min);
    let hi = tail.iter().cloned().fold(f64::MIN, f64::max);
    hi - lo
}

/// Combined transient report for an error record that should settle to 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Settling time into the band, if reached.
    pub settling: Option<usize>,
    /// Peak absolute error.
    pub peak_error: f64,
    /// Steady-state limit-cycle amplitude (last 20 %).
    pub limit_cycle: f64,
}

impl ConvergenceReport {
    /// Analyze an error record against a settling band.
    pub fn analyze(errors: &[f64], band: f64) -> Option<ConvergenceReport> {
        if errors.is_empty() {
            return None;
        }
        Some(ConvergenceReport {
            settling: settling_time(errors, band),
            peak_error: errors.iter().fold(0.0f64, |a, e| a.max(e.abs())),
            limit_cycle: limit_cycle_amplitude(errors, 0.2),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_time_basic() {
        let e = [5.0, 3.0, 1.5, 0.4, 0.2, 0.1, 0.3];
        assert_eq!(settling_time(&e, 0.5), Some(3));
        assert_eq!(settling_time(&e, 10.0), Some(0));
        // still outside band at the end:
        assert_eq!(settling_time(&e, 0.25), None);
    }

    #[test]
    fn settling_time_last_sample_bad() {
        assert_eq!(settling_time(&[0.0, 0.0, 9.0], 0.5), None);
    }

    #[test]
    fn overshoot_measures_peak() {
        // step to 10 with a 20% overshoot
        let y = [0.0, 6.0, 12.0, 10.5, 10.0, 10.0];
        assert!((overshoot(&y, 10.0, 10.0) - 0.2).abs() < 1e-12);
        // monotone response has zero overshoot
        let y = [0.0, 5.0, 8.0, 10.0];
        assert_eq!(overshoot(&y, 10.0, 10.0), 0.0);
    }

    #[test]
    fn overshoot_negative_step() {
        let y = [0.0, -6.0, -12.0, -10.0];
        assert!((overshoot(&y, -10.0, -10.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rise_time_counts_crossings() {
        let y = [0.0, 1.0, 3.0, 5.0, 7.0, 9.0, 10.0, 10.0];
        // 10%=1 at index 1, 90%=9 at index 5
        assert_eq!(rise_time(&y, 10.0, 0.1, 0.9), Some(4));
        assert_eq!(rise_time(&[0.0, 1.0], 10.0, 0.1, 0.9), None);
    }

    #[test]
    fn limit_cycle_of_tail() {
        let mut r = vec![0.0; 80];
        r.extend((0..20).map(|k| if k % 2 == 0 { 1.0 } else { -1.0 }));
        assert_eq!(limit_cycle_amplitude(&r, 0.2), 2.0);
        assert_eq!(limit_cycle_amplitude(&r, 1.0), 2.0);
    }

    #[test]
    fn convergence_report() {
        let e = [8.0, 4.0, 2.0, 0.5, 0.2, -0.2, 0.1, -0.1, 0.1, -0.1];
        let r = ConvergenceReport::analyze(&e, 1.0).unwrap();
        assert_eq!(r.settling, Some(3));
        assert_eq!(r.peak_error, 8.0);
        assert!((r.limit_cycle - 0.2).abs() < 1e-12);
        assert!(ConvergenceReport::analyze(&[], 1.0).is_none());
    }
}
