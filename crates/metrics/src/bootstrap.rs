//! Bootstrap confidence intervals for metrics aggregated over stochastic
//! seeds (the broadband-noise experiments report these).

use serde::{Deserialize, Serialize};

/// A bootstrap percentile confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// The confidence level used (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether a value lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// A tiny deterministic PRNG (splitmix64) so the bootstrap itself is
/// reproducible without external crates in this crate's dependency set.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile-bootstrap confidence interval for the mean of `values`.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples == 0`, or `level` outside
/// `(0, 1)`.
pub fn bootstrap_mean_ci(
    values: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!values.is_empty(), "need at least one observation");
    assert!(resamples > 0, "need at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut rng = SplitMix(seed.wrapping_add(0x1234_5678));
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let s: f64 = (0..n).map(|_| values[rng.below(n)]).sum();
        means.push(s / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let idx =
        |p: f64| -> usize { ((p * (resamples - 1) as f64).round() as usize).min(resamples - 1) };
    ConfidenceInterval {
        mean,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_mean() {
        let values: Vec<f64> = (0..50).map(|k| (k % 7) as f64).collect();
        let ci = bootstrap_mean_ci(&values, 0.95, 2000, 42);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.contains(ci.mean));
        assert!(ci.half_width() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let values = [1.0, 2.0, 3.0, 4.0, 10.0];
        let a = bootstrap_mean_ci(&values, 0.9, 500, 7);
        let b = bootstrap_mean_ci(&values, 0.9, 500, 7);
        assert_eq!(a, b);
        // (different seeds may legitimately snap to the same percentile
        // values on small samples, so only same-seed equality is asserted)
    }

    #[test]
    fn tighter_data_gives_tighter_interval() {
        let tight: Vec<f64> = (0..40).map(|k| 5.0 + 0.01 * (k % 3) as f64).collect();
        let wide: Vec<f64> = (0..40).map(|k| 5.0 + 2.0 * (k % 3) as f64).collect();
        let ct = bootstrap_mean_ci(&tight, 0.95, 1000, 1);
        let cw = bootstrap_mean_ci(&wide, 0.95, 1000, 1);
        assert!(ct.half_width() < cw.half_width());
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let ci = bootstrap_mean_ci(&[3.0; 10], 0.99, 200, 0);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_rejected() {
        let _ = bootstrap_mean_ci(&[], 0.95, 100, 0);
    }

    #[test]
    fn coverage_sanity() {
        // For normal-ish data the 95% CI for the mean should contain the
        // true mean in most of repeated trials. Build trials from disjoint
        // slices of a deterministic pseudo-random stream.
        let mut rng = SplitMix(99);
        let mut hits = 0;
        let trials = 60;
        for t in 0..trials {
            let values: Vec<f64> = (0..30)
                .map(|_| {
                    // Irwin-Hall(4) centered: mean 0
                    let s: f64 = (0..4)
                        .map(|_| (rng.next() >> 11) as f64 / (1u64 << 53) as f64)
                        .sum();
                    s - 2.0
                })
                .collect();
            let ci = bootstrap_mean_ci(&values, 0.95, 400, t as u64);
            if ci.contains(0.0) {
                hits += 1;
            }
        }
        assert!(hits >= 48, "coverage {hits}/{trials} too low");
    }
}
