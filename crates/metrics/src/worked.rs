//! The paper's worked examples (end of §IV-A and §IV-B): translating the
//! stage-unit adaptation results into nanoseconds and safety-margin
//! reductions.
//!
//! Setup common to both examples: the set-point `c = 64` corresponds, in
//! ideal conditions, to a clock period of 1 ns (so one stage ≈ 15.6 ps).

use serde::{Deserialize, Serialize};

/// One worked example: a worst-case delay variation forces a margined
/// fixed clock; the adaptive clock reclaims part of that margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkedExample {
    /// Set-point in stages (64 in the paper).
    pub setpoint: i64,
    /// Nominal period in ns at the set-point (1.0 in the paper).
    pub nominal_ns: f64,
    /// Total worst-case delay variation, as a fraction of nominal (e.g.
    /// 0.2 for §IV-A's 20 % HoDV, 0.4 for §IV-B's 20 % HoDV + 20 % HeDV).
    pub variation_frac: f64,
    /// Fraction of the *margined period* the adaptive clock saves (0.1 in
    /// §IV-A, 0.2 in §IV-B).
    pub adaptive_saving_frac: f64,
}

/// Derived quantities of a worked example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkedResult {
    /// The margined fixed-clock period in ns (`nominal · (1 + variation)`).
    pub fixed_period_ns: f64,
    /// The equivalent set-point in stages (`ceil(c · (1 + variation))`).
    pub margined_setpoint: i64,
    /// Absolute period saving of the adaptive clock in ns.
    pub saving_ns: f64,
    /// The saving as a percentage of the *added* safety margin.
    pub sm_reduction_pct: f64,
}

impl WorkedExample {
    /// The §IV-A example: 20 % HoDV, 10 % adaptive set-point reduction.
    pub fn hodv_paper() -> Self {
        WorkedExample {
            setpoint: 64,
            nominal_ns: 1.0,
            variation_frac: 0.2,
            adaptive_saving_frac: 0.1,
        }
    }

    /// The §IV-B example: 20 % HoDV + 20 % HeDV (0.4 total), 20 % adaptive
    /// set-point reduction.
    pub fn hedv_paper() -> Self {
        WorkedExample {
            setpoint: 64,
            nominal_ns: 1.0,
            variation_frac: 0.4,
            adaptive_saving_frac: 0.2,
        }
    }

    /// Evaluate the example.
    ///
    /// # Panics
    ///
    /// Panics if `variation_frac <= 0` (no margin to reduce).
    pub fn compute(&self) -> WorkedResult {
        assert!(self.variation_frac > 0.0, "no margin to reduce");
        let fixed_period_ns = self.nominal_ns * (1.0 + self.variation_frac);
        let margined_setpoint = (self.setpoint as f64 * (1.0 + self.variation_frac)).ceil() as i64;
        let added_margin_ns = self.nominal_ns * self.variation_frac;
        let saving_ns = self.adaptive_saving_frac * fixed_period_ns;
        WorkedResult {
            fixed_period_ns,
            margined_setpoint,
            saving_ns,
            sm_reduction_pct: 100.0 * saving_ns / added_margin_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §IV-A: "the clock period has to be set to 1.2 ns, or … c = 77. …
    /// a reduction of 0.12 ns in the clock period, which is a 60 %
    /// reduction of the added SM."
    #[test]
    fn hodv_example_reproduces_paper_numbers() {
        let r = WorkedExample::hodv_paper().compute();
        assert!((r.fixed_period_ns - 1.2).abs() < 1e-12);
        assert_eq!(r.margined_setpoint, 77);
        assert!((r.saving_ns - 0.12).abs() < 1e-12);
        assert!((r.sm_reduction_pct - 60.0).abs() < 1e-9);
    }

    /// §IV-B: "the clock period has to be set to 1.4 ns, or … c = 90. …
    /// a reduction of 0.28 ns in the clock period, which is a 70 %
    /// reduction of the added safety margin."
    #[test]
    fn hedv_example_reproduces_paper_numbers() {
        let r = WorkedExample::hedv_paper().compute();
        assert!((r.fixed_period_ns - 1.4).abs() < 1e-12);
        assert_eq!(r.margined_setpoint, 90);
        assert!((r.saving_ns - 0.28).abs() < 1e-12);
        assert!((r.sm_reduction_pct - 70.0).abs() < 1e-9);
    }

    #[test]
    fn zero_saving_gives_zero_reduction() {
        let ex = WorkedExample {
            adaptive_saving_frac: 0.0,
            ..WorkedExample::hodv_paper()
        };
        let r = ex.compute();
        assert_eq!(r.saving_ns, 0.0);
        assert_eq!(r.sm_reduction_pct, 0.0);
    }

    #[test]
    #[should_panic(expected = "no margin to reduce")]
    fn rejects_zero_variation() {
        let ex = WorkedExample {
            variation_frac: 0.0,
            ..WorkedExample::hodv_paper()
        };
        let _ = ex.compute();
    }
}
