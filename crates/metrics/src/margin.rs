//! Safety-margin accounting and the relative adaptive period.
//!
//! # The shift property
//!
//! Every scheme in the paper responds to a set-point (or design-length, or
//! fixed-period) increase of `m` stages by shifting its whole `τ` and
//! period trajectories up by exactly `m`:
//!
//! * **fixed clock** — `τ = T_fixed − e + μ` is affine in `T_fixed`;
//! * **free RO** — `τ = l_RO + Δe + μ` is affine in the design length;
//! * **IIR / TEAtime RO** — the loop regulates `τ` to the set-point; both
//!   the linear filter and the sign nonlinearity commute with a constant
//!   offset of (set-point, τ, l_RO) as long as the integer arithmetic is
//!   offset by whole stages.
//!
//! Hence the *minimal error-free margin* is read off a single nominal run:
//! `m* = max(0, max_n (c − τ[n]))`, the mean period of the margined system
//! is `⟨T⟩ + m*`, and no per-point search is needed. The integration tests
//! re-verify the property by actually re-running shifted systems.
//!
//! For sweeps that probe margins empirically (or validate the shift
//! property point by point), [`minimal_margin`] provides a bracketing
//! search that can be warm-started from a neighbouring grid point's
//! result, cutting the probe count along smooth sweeps.

use adaptive_clock::RunTrace;

/// The minimal margin (stages) that must be added for error-free operation:
/// `max(0, max_n (c − τ[n]))`.
pub fn required_margin(run: &RunTrace) -> f64 {
    run.worst_negative_error()
}

/// Outcome of a [`minimal_margin`] search: the smallest passing margin and
/// the number of predicate evaluations it took to find it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarginSearch {
    /// The smallest non-negative integer margin for which the predicate
    /// holds.
    pub margin: i64,
    /// How many times the predicate was evaluated. Sweeps warm-started from
    /// a neighbouring grid point's result report `probes` savings through
    /// telemetry.
    pub probes: u32,
}

/// Find the smallest non-negative integer margin `m` such that `ok(m)` is
/// true, assuming `ok` is monotone (once true, true for every larger
/// margin).
///
/// The search exponentially brackets the transition outward from
/// `warm_start` (or from 0 when cold) and then bisects the bracket, so a
/// warm start taken from the neighbouring point of a smooth sweep costs
/// `O(log Δ)` probes in the distance `Δ` between the two results instead of
/// `O(log m)` from scratch.
///
/// ```
/// use clock_metrics::margin::minimal_margin;
///
/// let cold = minimal_margin(|m| m >= 13, None);
/// assert_eq!(cold.margin, 13);
/// let warm = minimal_margin(|m| m >= 13, Some(12));
/// assert_eq!(warm.margin, 13);
/// assert!(warm.probes < cold.probes);
/// ```
pub fn minimal_margin(mut ok: impl FnMut(i64) -> bool, warm_start: Option<i64>) -> MarginSearch {
    let mut probes = 0u32;
    let mut probe = |m: i64, probes: &mut u32| {
        *probes += 1;
        ok(m)
    };
    let start = warm_start.unwrap_or(0).max(0);
    // Bracket the transition: end with ok(hi) true and ok(lo) false, lo < hi.
    let mut lo;
    let mut hi;
    if probe(start, &mut probes) {
        if start == 0 {
            return MarginSearch { margin: 0, probes };
        }
        // Walk down in doubling steps until the predicate fails.
        hi = start;
        let mut step = 1i64;
        loop {
            let cand = (hi - step).max(0);
            if probe(cand, &mut probes) {
                hi = cand;
                if cand == 0 {
                    return MarginSearch { margin: 0, probes };
                }
                step = step.saturating_mul(2);
            } else {
                lo = cand;
                break;
            }
        }
    } else {
        // Walk up in doubling steps until the predicate holds.
        lo = start;
        let mut step = 1i64;
        loop {
            let cand = start.saturating_add(step);
            if probe(cand, &mut probes) {
                hi = cand;
                break;
            }
            lo = cand;
            step = step.saturating_mul(2);
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid, &mut probes) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    MarginSearch { margin: hi, probes }
}

/// Mean clock period of the run once operated with just enough margin to be
/// error-free: `⟨T⟩ + m*`.
pub fn adaptive_needed_period(run: &RunTrace) -> f64 {
    run.mean_period() + required_margin(run)
}

/// The fixed-clock period needed for error-free operation, from a run of
/// the fixed clock at its nominal period `c`: `c + m*_fixed`.
pub fn needed_fixed_period(fixed_run: &RunTrace) -> f64 {
    fixed_run.setpoint() + required_margin(fixed_run)
}

/// The paper's figure of merit `⟨T_clk⟩ / T_fixed` (Figs. 8–9): values
/// below 1 mean the adaptive clock runs faster, on average, than the
/// margined fixed clock while giving the same error-free guarantee.
pub fn relative_adaptive_period(adaptive_run: &RunTrace, fixed_run: &RunTrace) -> f64 {
    adaptive_needed_period(adaptive_run) / needed_fixed_period(fixed_run)
}

/// Relative adaptive period against an externally-supplied margin (used by
/// the paper's Fig. 9, where the free RO's margin is fixed at design time
/// to cover the whole mismatch range rather than tuned per operating
/// point).
pub fn relative_adaptive_period_with_margin(
    adaptive_run: &RunTrace,
    margin: f64,
    fixed_run: &RunTrace,
) -> f64 {
    (adaptive_run.mean_period() + margin) / needed_fixed_period(fixed_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_clock::event::Sample;

    fn trace(setpoint: f64, taus: &[f64], periods: &[f64]) -> RunTrace {
        let samples: Vec<Sample> = taus
            .iter()
            .zip(periods)
            .enumerate()
            .map(|(k, (&tau, &period))| Sample {
                time: k as f64,
                period,
                tau,
                delta: setpoint - tau,
                lro: period,
            })
            .collect();
        RunTrace::from_samples(setpoint, samples)
    }

    #[test]
    fn margin_is_worst_negative_excursion() {
        let r = trace(64.0, &[64.0, 60.0, 66.0, 62.0], &[64.0; 4]);
        assert_eq!(required_margin(&r), 4.0);
    }

    #[test]
    fn margin_zero_when_always_above_setpoint() {
        let r = trace(64.0, &[64.0, 65.0, 70.0], &[64.0; 3]);
        assert_eq!(required_margin(&r), 0.0);
    }

    #[test]
    fn needed_period_adds_margin_to_mean() {
        let r = trace(64.0, &[60.0, 64.0], &[64.0, 66.0]);
        assert_eq!(adaptive_needed_period(&r), 65.0 + 4.0);
    }

    #[test]
    fn fixed_needed_period_uses_setpoint_not_mean() {
        // fixed run at nominal c: τ dips by 12.8 under a 20% HoDV
        let r = trace(64.0, &[51.2, 76.8, 64.0], &[64.0; 3]);
        assert!((needed_fixed_period(&r) - 76.8).abs() < 1e-12);
    }

    #[test]
    fn relative_period_below_one_when_adaptive_wins() {
        let adaptive = trace(64.0, &[63.0, 65.0], &[64.0, 64.0]);
        let fixed = trace(64.0, &[51.2, 76.8], &[64.0, 64.0]);
        let r = relative_adaptive_period(&adaptive, &fixed);
        assert!((r - 65.0 / 76.8).abs() < 1e-12);
        assert!(r < 1.0);
    }

    #[test]
    fn minimal_margin_finds_threshold_cold() {
        for threshold in [0i64, 1, 2, 7, 13, 100, 1000] {
            let r = minimal_margin(|m| m >= threshold, None);
            assert_eq!(r.margin, threshold, "threshold {threshold}");
        }
    }

    #[test]
    fn minimal_margin_warm_start_saves_probes() {
        let cold = minimal_margin(|m| m >= 137, None);
        assert_eq!(cold.margin, 137);
        // A neighbouring sweep point's result is close to the answer.
        for warm_start in [135i64, 136, 137, 138, 140] {
            let warm = minimal_margin(|m| m >= 137, Some(warm_start));
            assert_eq!(warm.margin, 137, "warm from {warm_start}");
            assert!(
                warm.probes < cold.probes,
                "warm from {warm_start}: {} vs cold {}",
                warm.probes,
                cold.probes
            );
        }
    }

    #[test]
    fn minimal_margin_exact_warm_start_is_cheapest() {
        let exact = minimal_margin(|m| m >= 42, Some(42));
        assert_eq!(exact.margin, 42);
        // probe(42)=true, probe(41)=false: the bracket is immediate.
        assert_eq!(exact.probes, 2);
    }

    #[test]
    fn minimal_margin_handles_zero_and_negative_warm_start() {
        let r = minimal_margin(|m| m >= 0, Some(-5));
        assert_eq!(r.margin, 0);
        assert_eq!(r.probes, 1);
        let r = minimal_margin(|m| m >= 9, Some(0));
        assert_eq!(r.margin, 9);
    }

    #[test]
    fn minimal_margin_counts_runs_as_probes() {
        // The intended use: each probe re-runs a margined system.
        let mut runs = 0u32;
        let r = minimal_margin(
            |m| {
                runs += 1;
                m >= 5
            },
            None,
        );
        assert_eq!(r.margin, 5);
        assert_eq!(r.probes, runs);
    }

    #[test]
    fn external_margin_variant() {
        let adaptive = trace(64.0, &[64.0, 64.0], &[64.0, 64.0]);
        let fixed = trace(64.0, &[54.0, 64.0], &[64.0, 64.0]);
        let r = relative_adaptive_period_with_margin(&adaptive, 10.0, &fixed);
        assert!((r - 74.0 / 74.0).abs() < 1e-12);
    }
}
