//! Safety-margin accounting and the relative adaptive period.
//!
//! # The shift property
//!
//! Every scheme in the paper responds to a set-point (or design-length, or
//! fixed-period) increase of `m` stages by shifting its whole `τ` and
//! period trajectories up by exactly `m`:
//!
//! * **fixed clock** — `τ = T_fixed − e + μ` is affine in `T_fixed`;
//! * **free RO** — `τ = l_RO + Δe + μ` is affine in the design length;
//! * **IIR / TEAtime RO** — the loop regulates `τ` to the set-point; both
//!   the linear filter and the sign nonlinearity commute with a constant
//!   offset of (set-point, τ, l_RO) as long as the integer arithmetic is
//!   offset by whole stages.
//!
//! Hence the *minimal error-free margin* is read off a single nominal run:
//! `m* = max(0, max_n (c − τ[n]))`, the mean period of the margined system
//! is `⟨T⟩ + m*`, and no per-point search is needed. The integration tests
//! re-verify the property by actually re-running shifted systems.

use adaptive_clock::RunTrace;

/// The minimal margin (stages) that must be added for error-free operation:
/// `max(0, max_n (c − τ[n]))`.
pub fn required_margin(run: &RunTrace) -> f64 {
    run.worst_negative_error()
}

/// Mean clock period of the run once operated with just enough margin to be
/// error-free: `⟨T⟩ + m*`.
pub fn adaptive_needed_period(run: &RunTrace) -> f64 {
    run.mean_period() + required_margin(run)
}

/// The fixed-clock period needed for error-free operation, from a run of
/// the fixed clock at its nominal period `c`: `c + m*_fixed`.
pub fn needed_fixed_period(fixed_run: &RunTrace) -> f64 {
    fixed_run.setpoint() + required_margin(fixed_run)
}

/// The paper's figure of merit `⟨T_clk⟩ / T_fixed` (Figs. 8–9): values
/// below 1 mean the adaptive clock runs faster, on average, than the
/// margined fixed clock while giving the same error-free guarantee.
pub fn relative_adaptive_period(adaptive_run: &RunTrace, fixed_run: &RunTrace) -> f64 {
    adaptive_needed_period(adaptive_run) / needed_fixed_period(fixed_run)
}

/// Relative adaptive period against an externally-supplied margin (used by
/// the paper's Fig. 9, where the free RO's margin is fixed at design time
/// to cover the whole mismatch range rather than tuned per operating
/// point).
pub fn relative_adaptive_period_with_margin(
    adaptive_run: &RunTrace,
    margin: f64,
    fixed_run: &RunTrace,
) -> f64 {
    (adaptive_run.mean_period() + margin) / needed_fixed_period(fixed_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_clock::event::Sample;

    fn trace(setpoint: f64, taus: &[f64], periods: &[f64]) -> RunTrace {
        let samples: Vec<Sample> = taus
            .iter()
            .zip(periods)
            .enumerate()
            .map(|(k, (&tau, &period))| Sample {
                time: k as f64,
                period,
                tau,
                delta: setpoint - tau,
                lro: period,
            })
            .collect();
        RunTrace::from_samples(setpoint, samples)
    }

    #[test]
    fn margin_is_worst_negative_excursion() {
        let r = trace(64.0, &[64.0, 60.0, 66.0, 62.0], &[64.0; 4]);
        assert_eq!(required_margin(&r), 4.0);
    }

    #[test]
    fn margin_zero_when_always_above_setpoint() {
        let r = trace(64.0, &[64.0, 65.0, 70.0], &[64.0; 3]);
        assert_eq!(required_margin(&r), 0.0);
    }

    #[test]
    fn needed_period_adds_margin_to_mean() {
        let r = trace(64.0, &[60.0, 64.0], &[64.0, 66.0]);
        assert_eq!(adaptive_needed_period(&r), 65.0 + 4.0);
    }

    #[test]
    fn fixed_needed_period_uses_setpoint_not_mean() {
        // fixed run at nominal c: τ dips by 12.8 under a 20% HoDV
        let r = trace(64.0, &[51.2, 76.8, 64.0], &[64.0; 3]);
        assert!((needed_fixed_period(&r) - 76.8).abs() < 1e-12);
    }

    #[test]
    fn relative_period_below_one_when_adaptive_wins() {
        let adaptive = trace(64.0, &[63.0, 65.0], &[64.0, 64.0]);
        let fixed = trace(64.0, &[51.2, 76.8], &[64.0, 64.0]);
        let r = relative_adaptive_period(&adaptive, &fixed);
        assert!((r - 65.0 / 76.8).abs() < 1e-12);
        assert!(r < 1.0);
    }

    #[test]
    fn external_margin_variant() {
        let adaptive = trace(64.0, &[64.0, 64.0], &[64.0, 64.0]);
        let fixed = trace(64.0, &[54.0, 64.0], &[64.0, 64.0]);
        let r = relative_adaptive_period_with_margin(&adaptive, 10.0, &fixed);
        assert!((r - 74.0 / 74.0).abs() < 1e-12);
    }
}
