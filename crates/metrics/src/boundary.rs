//! Handshake and metastability-risk accounting at inter-domain clock
//! boundaries.
//!
//! In a GALS mesh each directed link crosses a clock boundary: the
//! producer domain's delivered edges arrive at the consumer after the
//! boundary CDN delay, and the *skew* between the advertised producer
//! period and the consumer's own period is what the synchronizer at the
//! boundary has to absorb. Two figures of merit matter:
//!
//! * **handshake violations** — periods where the skew exceeds the
//!   boundary's tolerance (the synchronizer's guaranteed capture window),
//!   each one a chance for a handshake to be missed outright;
//! * **metastability risk** — even inside the window, the closer the skew
//!   comes to the tolerance the smaller the settling slack, and the
//!   probability that a flip-flop resolves late decays exponentially in
//!   that slack (the classic `exp(−slack/τ_s)` model). The monitor
//!   integrates this per sample and reports the mean.
//!
//! A [`BoundaryMonitor`] watches one directed link, fed one skew sample
//! per delivered period, and additionally implements the mesh's
//! **quarantine** policy: a run of consecutive violations long enough to
//! rule out a transient marks the link quarantined (FATAL+-style
//! containment — the consumer stops listening to a boundary it can no
//! longer synchronize with).

use serde::{Deserialize, Serialize};

/// Probability-like metastability risk of one boundary crossing.
///
/// `slack` is the remaining settling margin (stages): the boundary
/// tolerance minus the observed skew magnitude. `window` is the
/// synchronizer's resolution time constant `τ_s` in the same units. Risk
/// follows the standard exponential settling model `exp(−slack/τ_s)`,
/// saturating at 1 when the slack is gone (or negative — the crossing is
/// already a violation).
pub fn metastability_risk(slack: f64, window: f64) -> f64 {
    if !slack.is_finite() || slack <= 0.0 {
        return 1.0;
    }
    let window = if window > 0.0 {
        window
    } else {
        f64::MIN_POSITIVE
    };
    (-slack / window).exp()
}

/// Per-link boundary statistics (see [`BoundaryMonitor`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryReport {
    /// Skew samples observed (one per delivered period).
    pub samples: usize,
    /// Samples whose skew magnitude exceeded the tolerance (or was
    /// non-finite) — handshake violations.
    pub violations: usize,
    /// Largest finite skew magnitude observed (0 with no samples).
    pub worst_skew: f64,
    /// Smallest settling slack observed, clamped below at 0.
    pub min_slack: f64,
    /// Mean metastability risk across the samples (0 with no samples).
    pub mean_metastability_risk: f64,
    /// Period at which the quarantine policy tripped, if it did.
    pub quarantined_at: Option<u64>,
}

/// Watches one directed inter-domain link, one skew sample per period.
#[derive(Debug, Clone)]
pub struct BoundaryMonitor {
    tolerance: f64,
    window: f64,
    quarantine_after: usize,
    samples: usize,
    violations: usize,
    consecutive: usize,
    worst_skew: f64,
    min_slack: f64,
    risk_sum: f64,
    quarantined_at: Option<u64>,
}

impl BoundaryMonitor {
    /// A monitor with capture `tolerance` (stages), synchronizer
    /// resolution `window` `τ_s` (stages), quarantining after
    /// `quarantine_after` consecutive violations (`0` disables the
    /// policy).
    pub fn new(tolerance: f64, window: f64, quarantine_after: usize) -> Self {
        BoundaryMonitor {
            tolerance,
            window,
            quarantine_after,
            samples: 0,
            violations: 0,
            consecutive: 0,
            worst_skew: 0.0,
            min_slack: f64::INFINITY,
            risk_sum: 0.0,
            quarantined_at: None,
        }
    }

    /// Feed the skew observed at period `n`. Returns `true` when the
    /// sample is a handshake violation. Samples after quarantine are
    /// ignored (the consumer no longer listens).
    pub fn observe(&mut self, n: u64, skew: f64) -> bool {
        if self.quarantined_at.is_some() {
            return false;
        }
        self.samples += 1;
        let magnitude = skew.abs();
        let violation = !magnitude.is_finite() || magnitude > self.tolerance;
        let slack = if magnitude.is_finite() {
            if magnitude > self.worst_skew {
                self.worst_skew = magnitude;
            }
            (self.tolerance - magnitude).max(0.0)
        } else {
            0.0
        };
        if slack < self.min_slack {
            self.min_slack = slack;
        }
        self.risk_sum += metastability_risk(slack, self.window);
        if violation {
            self.violations += 1;
            self.consecutive += 1;
            if self.quarantine_after > 0 && self.consecutive >= self.quarantine_after {
                self.quarantined_at = Some(n);
            }
        } else {
            self.consecutive = 0;
        }
        violation
    }

    /// Whether the quarantine policy has tripped.
    pub fn quarantined(&self) -> bool {
        self.quarantined_at.is_some()
    }

    /// The accumulated statistics. Every field is finite for any input.
    pub fn report(&self) -> BoundaryReport {
        BoundaryReport {
            samples: self.samples,
            violations: self.violations,
            worst_skew: self.worst_skew,
            min_slack: if self.min_slack.is_finite() {
                self.min_slack
            } else {
                0.0
            },
            mean_metastability_risk: if self.samples > 0 {
                self.risk_sum / self.samples as f64
            } else {
                0.0
            },
            quarantined_at: self.quarantined_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_model_is_monotone_and_saturates() {
        assert_eq!(metastability_risk(0.0, 1.0), 1.0);
        assert_eq!(metastability_risk(-3.0, 1.0), 1.0);
        assert_eq!(metastability_risk(f64::NAN, 1.0), 1.0);
        let near = metastability_risk(0.5, 1.0);
        let far = metastability_risk(5.0, 1.0);
        assert!(near > far, "risk must fall with slack: {near} vs {far}");
        assert!(far > 0.0 && near < 1.0);
    }

    #[test]
    fn quiet_boundary_reports_low_risk_and_no_quarantine() {
        let mut mon = BoundaryMonitor::new(4.0, 1.0, 3);
        for n in 0..100u64 {
            assert!(!mon.observe(n, 0.25));
        }
        let r = mon.report();
        assert_eq!(r.samples, 100);
        assert_eq!(r.violations, 0);
        assert_eq!(r.worst_skew, 0.25);
        assert_eq!(r.min_slack, 3.75);
        assert!(r.mean_metastability_risk < 0.05);
        assert_eq!(r.quarantined_at, None);
    }

    #[test]
    fn consecutive_violations_trip_quarantine_and_freeze_the_monitor() {
        let mut mon = BoundaryMonitor::new(2.0, 1.0, 3);
        // two violations, then a clean sample: the run resets
        assert!(mon.observe(0, 5.0));
        assert!(mon.observe(1, -5.0));
        assert!(!mon.observe(2, 0.0));
        assert!(!mon.quarantined());
        // three in a row trips it at the third period
        for n in 3..6u64 {
            mon.observe(n, 9.0);
        }
        assert_eq!(mon.report().quarantined_at, Some(5));
        // further samples are ignored
        let before = mon.report();
        assert!(!mon.observe(6, 100.0));
        assert_eq!(mon.report(), before);
    }

    #[test]
    fn non_finite_skew_is_a_full_risk_violation() {
        let mut mon = BoundaryMonitor::new(2.0, 1.0, 0);
        assert!(mon.observe(0, f64::NAN));
        assert!(mon.observe(1, f64::INFINITY));
        let r = mon.report();
        assert_eq!(r.violations, 2);
        assert_eq!(r.min_slack, 0.0);
        assert_eq!(r.mean_metastability_risk, 1.0);
        assert_eq!(r.quarantined_at, None, "quarantine_after = 0 disables");
        assert!(r.worst_skew.is_finite());
    }

    #[test]
    fn empty_monitor_is_all_zero() {
        let r = BoundaryMonitor::new(2.0, 1.0, 3).report();
        assert_eq!(r.samples, 0);
        assert_eq!(r.mean_metastability_risk, 0.0);
        assert_eq!(r.min_slack, 0.0);
        assert_eq!(r.quarantined_at, None);
    }
}
