//! `clock-metrics` — figures of merit for adaptive clock generation.
//!
//! The paper evaluates clock generation schemes by two quantities:
//!
//! * the **timing error** `τ − c` (Fig. 7) and its most negative excursion,
//!   which "is equal, in absolute value, to the needed safety margin";
//! * the **relative adaptive period** `⟨T_clk⟩ / T_fixed` (Figs. 8–9): the
//!   mean period of the adaptive clock *operated with just enough margin to
//!   be error-free*, normalized by the fixed-clock period that would be
//!   needed for the same guarantee.
//!
//! The margin accounting exploits a structural property of every scheme in
//! the paper (see [`margin`]): adding `m` stages to the set-point (or to
//! the free-RO length, or to the fixed period) shifts the whole `τ` and
//! period trajectories by exactly `+m`. The minimal error-free margin is
//! therefore `max(0, max_n (c − τ[n]))` of a single run at the nominal
//! set-point — no search loop is needed, and the tests verify the shift
//! property explicitly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod boundary;
pub mod margin;
pub mod resilience;
pub mod settling;
pub mod stats;
pub mod worked;

pub use boundary::{metastability_risk, BoundaryMonitor, BoundaryReport};
pub use margin::{adaptive_needed_period, needed_fixed_period, relative_adaptive_period};
pub use resilience::{violation_report, ViolationReport};
pub use stats::{Histogram, Summary};
