//! Timing-violation and re-lock accounting for faulted runs.
//!
//! The margin machinery in [`margin`](crate::margin) assumes a clean run
//! whose worst excursion *is* the needed safety margin. Under fault
//! injection the question inverts: given a deployed margin, **how often is
//! it violated, how far, and how fast does the loop re-lock?**
//! [`violation_report`] answers all three from a `τ` trace.
//!
//! Every output is guaranteed finite for any input (non-finite `τ` samples
//! are counted as *dropped* and excluded from the accounting; all divisions
//! are guarded), which the chaos proptests rely on.

/// Violation and re-lock statistics of one faulted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationReport {
    /// Samples inspected (the trace length).
    pub samples: usize,
    /// Samples excluded because `τ` was non-finite.
    pub dropped: usize,
    /// Delivered edges whose excursion `c − τ` exceeded the deployed
    /// margin — each one is a setup-time violation.
    pub violations: usize,
    /// `violations / samples` (0 for an empty trace).
    pub violation_rate: f64,
    /// Largest excursion `c − τ` observed, clamped below at 0 (a run that
    /// never undershoots reports 0).
    pub worst_excursion: f64,
    /// Out-of-lock episodes that ended with the loop re-locked.
    pub relock_events: usize,
    /// Mean periods from losing lock to re-locking (0 with no events).
    pub mean_time_to_relock: f64,
    /// Worst re-lock time in periods (0 with no events).
    pub max_time_to_relock: f64,
    /// Whether the run ended still out of lock.
    pub unresolved: bool,
}

/// Scan a `τ` trace against set-point `setpoint` with a deployed safety
/// margin of `margin` stages.
///
/// A sample violates timing when it is finite and `setpoint − τ > margin`
/// (the delivered period ate through the whole margin). Lock is tracked by
/// the absolute error: an out-of-lock episode opens when
/// `|setpoint − τ| > lock_tolerance` and closes at the first sample that
/// starts `lock_run` consecutive samples back inside the tolerance; the
/// episode's re-lock time is the number of periods from its opening to
/// that sample. Non-finite samples drop out of both accountings.
pub fn violation_report(
    setpoint: f64,
    tau: &[f64],
    margin: f64,
    lock_tolerance: f64,
    lock_run: usize,
) -> ViolationReport {
    let lock_run = lock_run.max(1);
    let mut dropped = 0usize;
    let mut violations = 0usize;
    let mut worst = 0.0f64;
    let mut episode_start: Option<usize> = None;
    let mut quiet_run = 0usize;
    let mut relock_times: Vec<f64> = Vec::new();
    for (n, &t) in tau.iter().enumerate() {
        if !t.is_finite() {
            dropped += 1;
            // an unreadable sample cannot attest lock
            quiet_run = 0;
            continue;
        }
        let excursion = setpoint - t;
        if excursion > margin {
            violations += 1;
        }
        if excursion > worst {
            worst = excursion;
        }
        if excursion.abs() > lock_tolerance {
            if episode_start.is_none() {
                episode_start = Some(n);
            }
            quiet_run = 0;
        } else if let Some(start) = episode_start {
            quiet_run += 1;
            if quiet_run >= lock_run {
                // re-locked at the first sample of the quiet run
                let relock_at = n + 1 - quiet_run;
                relock_times.push((relock_at - start) as f64);
                episode_start = None;
                quiet_run = 0;
            }
        }
    }
    let samples = tau.len();
    let violation_rate = if samples > 0 {
        violations as f64 / samples as f64
    } else {
        0.0
    };
    let relock_events = relock_times.len();
    let (mean_ttr, max_ttr) = if relock_events > 0 {
        let sum: f64 = relock_times.iter().sum();
        let max = relock_times.iter().cloned().fold(0.0f64, f64::max);
        (sum / relock_events as f64, max)
    } else {
        (0.0, 0.0)
    };
    ViolationReport {
        samples,
        dropped,
        violations,
        violation_rate,
        worst_excursion: if worst.is_finite() { worst } else { 0.0 },
        relock_events,
        mean_time_to_relock: mean_ttr,
        max_time_to_relock: max_ttr,
        unresolved: episode_start.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trace_reports_nothing() {
        let tau = vec![64.0; 100];
        let r = violation_report(64.0, &tau, 6.0, 2.0, 5);
        assert_eq!(r.samples, 100);
        assert_eq!(r.violations, 0);
        assert_eq!(r.violation_rate, 0.0);
        assert_eq!(r.worst_excursion, 0.0);
        assert_eq!(r.relock_events, 0);
        assert!(!r.unresolved);
    }

    #[test]
    fn one_burst_counts_violations_and_relock_time() {
        let mut tau = vec![64.0; 50];
        // periods 10..14 undershoot by 10 stages (margin 6 → violations)
        for t in &mut tau[10..15] {
            *t = 54.0;
        }
        // 15..19 undershoot by 3 (out of lock tol 2, inside margin)
        for t in &mut tau[15..20] {
            *t = 61.0;
        }
        let r = violation_report(64.0, &tau, 6.0, 2.0, 5);
        assert_eq!(r.violations, 5);
        assert_eq!(r.worst_excursion, 10.0);
        assert_eq!(r.relock_events, 1);
        // lock lost at 10, regained at 20
        assert_eq!(r.mean_time_to_relock, 10.0);
        assert_eq!(r.max_time_to_relock, 10.0);
        assert!(!r.unresolved);
    }

    #[test]
    fn overshoot_is_locked_out_but_not_a_violation() {
        let mut tau = vec![64.0; 30];
        for t in &mut tau[5..10] {
            *t = 80.0; // long periods: safe, but out of lock
        }
        let r = violation_report(64.0, &tau, 6.0, 2.0, 3);
        assert_eq!(r.violations, 0);
        assert_eq!(r.worst_excursion, 0.0);
        assert_eq!(r.relock_events, 1);
        assert_eq!(r.mean_time_to_relock, 5.0);
    }

    #[test]
    fn unresolved_episode_is_flagged() {
        let mut tau = vec![64.0; 20];
        for t in &mut tau[15..20] {
            *t = 40.0;
        }
        let r = violation_report(64.0, &tau, 6.0, 2.0, 5);
        assert!(r.unresolved);
        assert_eq!(r.relock_events, 0);
        assert_eq!(r.mean_time_to_relock, 0.0);
    }

    #[test]
    fn non_finite_samples_drop_out_and_outputs_stay_finite() {
        let tau = vec![f64::NAN, 64.0, f64::INFINITY, 30.0, f64::NEG_INFINITY, 64.0];
        let r = violation_report(64.0, &tau, 6.0, 2.0, 2);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.violations, 1);
        for v in [
            r.violation_rate,
            r.worst_excursion,
            r.mean_time_to_relock,
            r.max_time_to_relock,
        ] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let r = violation_report(64.0, &[], 6.0, 2.0, 5);
        assert_eq!(r.samples, 0);
        assert_eq!(r.violation_rate, 0.0);
        assert!(!r.unresolved);
    }

    #[test]
    fn multiple_episodes_average() {
        let mut tau = vec![64.0; 60];
        for t in &mut tau[10..14] {
            *t = 50.0; // 4-period episode
        }
        for t in &mut tau[30..38] {
            *t = 50.0; // 8-period episode
        }
        let r = violation_report(64.0, &tau, 6.0, 2.0, 3);
        assert_eq!(r.relock_events, 2);
        assert_eq!(r.mean_time_to_relock, 6.0);
        assert_eq!(r.max_time_to_relock, 8.0);
    }
}
