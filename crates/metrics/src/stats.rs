//! Descriptive statistics over recorded signals.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
///
/// # Example
///
/// ```
/// use clock_metrics::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]).expect("non-empty");
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.range(), 2.0);
/// assert!(Summary::of(&[]).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a slice. Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        let pct = |p: f64| -> f64 {
            // linear interpolation between closest ranks
            let idx = p * (n - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] + frac * (sorted[hi] - sorted[lo])
        };
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p05: pct(0.05),
            p50: pct(0.50),
            p95: pct(0.95),
        })
    }

    /// Peak-to-peak range.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build a histogram of `values` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Out-of-range values clamp into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn build(values: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut counts = vec![0u64; bins];
        for &v in values {
            let x = ((v - lo) / (hi - lo) * bins as f64).floor();
            let idx = (x as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total: values.len() as u64,
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples binned.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `[lo, hi)` range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Fraction of samples in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.range(), 4.0);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p05, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::of(&[0.0, 10.0]).unwrap();
        assert!((s.p05 - 0.5).abs() < 1e-12);
        assert!((s.p95 - 9.5).abs() < 1e-12);
        assert!((s.p50 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn summary_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = Histogram::build(&[-10.0, 0.1, 0.5, 0.9, 99.0], 0.0, 1.0, 2);
        // -10 clamps into bin 0; 0.5, 0.9 and 99 land/clamp into bin 1
        assert_eq!(h.counts(), &[2, 3]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_range(0), (0.0, 0.5));
        assert!((h.fraction(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_boundary_value_goes_right() {
        let h = Histogram::build(&[0.5], 0.0, 1.0, 2);
        assert_eq!(h.counts(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::build(&[1.0], 0.0, 1.0, 0);
    }
}
