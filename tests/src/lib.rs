//! Shared helpers for the cross-crate integration tests.

use adaptive_clock::system::{Scheme, System, SystemBuilder};
use adaptive_clock::RunTrace;
use variation::sources::Waveform;

/// Build a paper-parameterized system (`c = 64`, `t_clk = c`) for a scheme,
/// with an optional static sensor mismatch.
pub fn paper_system(scheme: Scheme, mu: f64) -> System {
    SystemBuilder::new(64)
        .cdn_delay(64.0)
        .scheme(scheme)
        .single_sensor_mu(mu)
        .build()
        .expect("paper parameters are valid")
}

/// Run a system long enough for steady state and drop the warm-up.
pub fn steady_run<W: Waveform + ?Sized>(system: &System, e: &W) -> RunTrace {
    system.run(e, 6000).skip(1500)
}

/// Assert two floats agree within `tol`, with a labelled panic message.
///
/// # Panics
///
/// Panics when the values disagree.
pub fn assert_close(label: &str, got: f64, want: f64, tol: f64) {
    assert!(
        (got - want).abs() <= tol,
        "{label}: got {got}, want {want} (tol {tol})"
    );
}

/// The four schemes of the paper's comparison.
pub fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::iir_paper(),
        Scheme::TeaTime,
        Scheme::FreeRo { extra_length: 0 },
        Scheme::Fixed,
    ]
}
