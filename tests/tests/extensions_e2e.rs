//! End-to-end tests of the extension features working together: the
//! pipeline error model, the AIMD set-point tuner, generator jitter and
//! multi-domain partitioning — all driven through public APIs only.

use adaptive_clock::domains::{Domain, MultiDomain};
use adaptive_clock::pipeline::PipelineModel;
use adaptive_clock::setpoint::{SetPointTuner, TunerConfig};
use adaptive_clock::system::{Scheme, SystemBuilder};
use variation::sources::Harmonic;

/// The tuner, fed by the pipeline model's violation verdicts on real runs,
/// converges to a set-point that clears the true requirement with small
/// margin — closing the loop the paper's §V sketches.
#[test]
fn tuner_converges_against_pipeline_ground_truth() {
    let c_req = 64i64;
    let window = 150usize;
    let model = PipelineModel::new(c_req as f64, 6);
    let mut tuner = SetPointTuner::new(
        90,
        TunerConfig {
            window,
            backoff: 2,
            probe: 1,
            floor: 48,
            ceiling: 128,
        },
    );
    let hodv = Harmonic::new(3.2, 64.0 * 60.0, 0.0);
    let mut trajectory = Vec::new();
    for _ in 0..60 {
        let c_now = tuner.setpoint();
        let run = SystemBuilder::new(c_now)
            .cdn_delay(c_req as f64)
            .scheme(Scheme::iir_paper())
            .build()
            .expect("valid")
            .run(&hodv, window + 100)
            .skip(100);
        let report = model.evaluate(&run);
        if report.violations > 0 {
            tuner.observe(true);
        } else {
            for _ in 0..window {
                tuner.observe(false);
            }
        }
        trajectory.push(c_now);
    }
    let tail: Vec<i64> = trajectory.iter().rev().take(10).copied().collect();
    let avg = tail.iter().sum::<i64>() as f64 / tail.len() as f64;
    assert!(
        (c_req as f64..c_req as f64 + 8.0).contains(&avg),
        "tuner should hunt just above c_req = {c_req}, got {avg}"
    );
    // and it must have actually descended from the conservative start
    assert!(trajectory[0] == 90 && avg < 75.0);
}

/// Jitter sets a margin floor that adaptation cannot reclaim, and the floor
/// adds (approximately in quadrature, but we only check monotonicity and
/// dominance) to the tracking residual.
#[test]
fn jitter_floor_composes_with_tracking_residual() {
    let hodv = Harmonic::new(12.8, 64.0 * 100.0, 0.0);
    let margin = |sigma: f64| -> f64 {
        let mut b = SystemBuilder::new(64)
            .cdn_delay(64.0)
            .scheme(Scheme::iir_paper());
        if sigma > 0.0 {
            b = b.jitter(sigma, 77);
        }
        b.build()
            .expect("valid")
            .run(&hodv, 6000)
            .skip(1000)
            .worst_negative_error()
    };
    let m0 = margin(0.0);
    let m2 = margin(2.0);
    assert!(
        m2 > m0 + 3.0,
        "σ=2 jitter must add a real floor: {m0} -> {m2}"
    );
    // Jitter hurts the margined *fixed* clock identically — it is not an
    // adaptive-clock weakness.
    let fixed = SystemBuilder::new(64)
        .scheme(Scheme::Fixed)
        .jitter(2.0, 77)
        .build()
        .expect("valid")
        .run(&hodv, 6000)
        .skip(1000);
    assert!(
        fixed.worst_negative_error() > 12.8,
        "fixed pays HoDV + jitter"
    );
}

/// Partitioning a die into smaller adaptive domains buys droop tolerance —
/// the clock-domain-size conclusion, end to end.
#[test]
fn finer_partitioning_reduces_worst_margin() {
    let c = 64.0;
    let droop_train = variation::stochastic::SsnBursts::new(
        5,
        variation::stochastic::SsnConfig {
            mean_gap: 150.0 * c,
            amplitude: (0.1 * c, 0.15 * c),
            duration: (8.0 * c, 12.0 * c),
            horizon: 2.0e6,
        },
    );
    let build = |t_clk: f64| {
        SystemBuilder::new(64)
            .cdn_delay(t_clk)
            .scheme(Scheme::iir_paper())
            .build()
            .expect("valid")
    };
    let coarse = MultiDomain::new().with(Domain::new("mono", build(4.0 * c)));
    let fine = MultiDomain::new()
        .with(Domain::new("t0", build(0.25 * c)))
        .with(Domain::new("t1", build(0.25 * c)));
    let mc = coarse.run(&droop_train, 10_000, 500).worst_margin();
    let mf = fine.run(&droop_train, 10_000, 500).worst_margin();
    assert!(
        mf < 0.75 * mc,
        "fine partitioning margin {mf} vs monolithic {mc}"
    );
}

/// The paper's concluding claim, end to end with a *dynamic heterogeneous*
/// variation: a workload hotspot migrating between cores. The free RO
/// (point sensor at the generator) is blind to it; the IIR loop follows
/// whichever TDC is currently worst.
#[test]
fn migrating_hotspot_defeats_free_ro_but_not_iir() {
    use adaptive_clock::system::SensorSpec;
    use variation::spatial::{MovingHotspot, Position};

    let c = 64i64;
    let hotspot = MovingHotspot::new(
        vec![
            Position::new(0.1, 0.1),
            Position::new(0.9, 0.1),
            Position::new(0.9, 0.9),
            Position::new(0.1, 0.9),
        ],
        2_000.0 * c as f64, // slow migration (thermal time constants)
        -10.0,              // 10 stages slower under the hotspot
        0.2,
    );
    let sensors: Vec<SensorSpec> = Position::grid(9)
        .into_iter()
        .map(|p| SensorSpec {
            offset: 0.0,
            dynamic: Some(std::sync::Arc::new(hotspot.at_position(p))),
            noise: None,
        })
        .collect();
    let run_for = |scheme: Scheme| {
        SystemBuilder::new(c)
            .cdn_delay(c as f64)
            .scheme(scheme)
            .sensors(sensors.clone())
            .build()
            .expect("valid")
            .run(&variation::sources::NoVariation, 16_000)
            .skip(2000)
    };
    let free = run_for(Scheme::FreeRo { extra_length: 0 });
    let iir = run_for(Scheme::iir_paper());
    let m_free = free.worst_negative_error();
    let m_iir = iir.worst_negative_error();
    assert!(
        m_free > 8.0,
        "free RO must pay ≈ the hotspot depth, got {m_free}"
    );
    assert!(
        m_iir < 0.35 * m_free,
        "IIR must track the migrating worst sensor: {m_iir} vs {m_free}"
    );
    // the IIR's RO stretches and relaxes as the hotspot passes sensors
    let lro: Vec<f64> = iir.samples().iter().map(|s| s.lro).collect();
    let lro_span =
        lro.iter().cloned().fold(f64::MIN, f64::max) - lro.iter().cloned().fold(f64::MAX, f64::min);
    assert!(lro_span > 2.0, "RO length must breathe with the hotspot");
}

/// The throughput story is self-consistent: at each scheme's
/// experiment-reported optimum, the pipeline model really does retire more
/// work per unit time for the adaptive clock.
#[test]
fn throughput_optimum_is_real() {
    use experiments::config::PaperParams;
    use experiments::ext_throughput;
    use experiments::runner::RunCtx;
    let r = ext_throughput::run(&RunCtx::new(PaperParams::default()), 8);
    let iir = r.series_named("IIR RO").expect("series");
    let fixed = r.series_named("Fixed clock").expect("series");
    let (iir_c, iir_t) = ext_throughput::optimum(iir);
    let (fixed_c, fixed_t) = ext_throughput::optimum(fixed);
    assert!(iir_t > fixed_t, "IIR optimum {iir_t} vs fixed {fixed_t}");
    assert!(iir_c < fixed_c, "IIR runs closer to the requirement");
    // Re-run the winning configuration independently and confirm the score.
    let model = PipelineModel::new(64.0, 8);
    let hodv = Harmonic::new(12.8, 64.0 * 50.0, 0.0);
    let run = SystemBuilder::new(iir_c as i64)
        .cdn_delay(64.0)
        .scheme(Scheme::iir_paper())
        .build()
        .expect("valid")
        .run(&hodv, 7000)
        .skip(1000);
    let score = model.evaluate(&run).relative_throughput(64.0);
    assert!(
        (score - iir_t).abs() < 0.02,
        "independent re-run {score} vs experiment {iir_t}"
    );
}
