//! Cross-crate telemetry integration: a single-threaded system run must
//! produce a coherent event stream — strictly increasing sequence numbers,
//! monotone timestamps, counters consistent with the run length — and the
//! JSONL sink must round-trip through serde.

use adaptive_clock::system::{Scheme, SensorSpec, SystemBuilder};
use clock_telemetry::{Event, EventRecord, Telemetry};
use variation::sources::Harmonic;

const C: i64 = 64;

fn observed_run(telemetry: &Telemetry, n: usize) {
    let system = SystemBuilder::new(C)
        .cdn_delay(C as f64)
        .scheme(Scheme::iir_paper())
        .single_sensor_mu(0.0)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid paper configuration");
    let hodv = Harmonic::new(0.2 * C as f64, 37.5 * C as f64, 0.0);
    system.run(&hodv, n);
}

#[test]
fn event_stream_is_ordered_and_monotone() {
    let telemetry = Telemetry::enabled();
    observed_run(&telemetry, 600);

    let events = telemetry.recent_events();
    assert!(!events.is_empty(), "a 20 % HoDV must produce events");
    for pair in events.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "sequence strictly increasing");
        assert!(
            pair[1].time >= pair[0].time,
            "a serial run emits in time order: {} then {}",
            pair[0].time,
            pair[1].time
        );
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("core.samples"), Some(600));
    assert!(snap.counter("core.controller_steps").unwrap_or(0) > 0);
    assert_eq!(
        snap.counter("core.timing_violations"),
        Some(snap.event_count("TimingViolation")),
        "violation counter and event log must agree"
    );
    assert!(snap.event_count("TimingViolation") > 0);
    assert!(snap.event_count("ControllerUpdate") > 0);
}

#[test]
fn jsonl_sink_round_trips_through_serde() {
    let path =
        std::env::temp_dir().join(format!("telemetry-roundtrip-{}.jsonl", std::process::id()));
    let telemetry = Telemetry::to_jsonl(&path).expect("sink opens");
    observed_run(&telemetry, 600);
    telemetry.flush().expect("sink flushes");

    let raw = std::fs::read_to_string(&path).expect("sink written");
    std::fs::remove_file(&path).ok();
    let records: Vec<EventRecord> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("every line is a valid record"))
        .collect();
    assert_eq!(
        records.len() as u64,
        telemetry.snapshot().events_total,
        "the file holds the complete stream"
    );
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "file order equals sequence order");
        if i > 0 {
            assert!(r.time >= records[i - 1].time, "timestamps monotone");
        }
    }
    // The in-memory ring and the file agree on the tail of the stream.
    let ring = telemetry.recent_events();
    let tail = &records[records.len() - ring.len()..];
    assert_eq!(ring, tail);
}

#[test]
fn nan_sensor_readings_become_dropout_events() {
    let telemetry = Telemetry::enabled();
    let n = 200;
    let system = SystemBuilder::new(C)
        .cdn_delay(C as f64)
        .scheme(Scheme::iir_paper())
        .sensors(vec![SensorSpec::ideal(), SensorSpec::offset(f64::NAN)])
        .telemetry(telemetry.clone())
        .build()
        .expect("two-sensor configuration is valid");
    let run = system.run(&Harmonic::new(0.0, 37.5 * C as f64, 0.0), n);

    // The healthy sensor keeps the loop running on finite readings.
    assert!(run.samples().iter().all(|s| s.tau.is_finite()));

    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter("core.sensor_dropouts"),
        Some(n as u64),
        "one dropout per sample from the NaN sensor"
    );
    assert_eq!(snap.event_count("SensorDropout"), n as u64);
    let dropped: Vec<u64> = telemetry
        .recent_events()
        .iter()
        .filter_map(|r| match r.event {
            Event::SensorDropout { sensor } => Some(sensor),
            _ => None,
        })
        .collect();
    assert!(!dropped.is_empty());
    assert!(
        dropped.iter().all(|&s| s == 1),
        "only the second sensor (index 1) drops out"
    );
}

#[test]
fn disabled_telemetry_records_nothing() {
    let telemetry = Telemetry::disabled();
    observed_run(&telemetry, 300);
    assert!(!telemetry.is_enabled());
    assert!(telemetry.recent_events().is_empty());
    let snap = telemetry.snapshot();
    assert_eq!(snap.events_total, 0);
    assert!(snap.counters.is_empty());
}
