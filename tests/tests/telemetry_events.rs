//! Cross-crate telemetry integration: a single-threaded system run must
//! produce a coherent event stream — strictly increasing sequence numbers,
//! monotone timestamps, counters consistent with the run length — and the
//! JSONL sink must round-trip through serde.

use adaptive_clock::system::{Scheme, SensorSpec, SystemBuilder};
use clock_telemetry::{Event, EventRecord, Telemetry};
use variation::sources::Harmonic;

const C: i64 = 64;

fn observed_run(telemetry: &Telemetry, n: usize) {
    let system = SystemBuilder::new(C)
        .cdn_delay(C as f64)
        .scheme(Scheme::iir_paper())
        .single_sensor_mu(0.0)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid paper configuration");
    let hodv = Harmonic::new(0.2 * C as f64, 37.5 * C as f64, 0.0);
    system.run(&hodv, n);
}

#[test]
fn event_stream_is_ordered_and_monotone() {
    let telemetry = Telemetry::enabled();
    observed_run(&telemetry, 600);

    let events = telemetry.recent_events();
    assert!(!events.is_empty(), "a 20 % HoDV must produce events");
    for pair in events.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "sequence strictly increasing");
        assert!(
            pair[1].time >= pair[0].time,
            "a serial run emits in time order: {} then {}",
            pair[0].time,
            pair[1].time
        );
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("core.samples"), Some(600));
    assert!(snap.counter("core.controller_steps").unwrap_or(0) > 0);
    assert_eq!(
        snap.counter("core.timing_violations"),
        Some(snap.event_count("TimingViolation")),
        "violation counter and event log must agree"
    );
    assert!(snap.event_count("TimingViolation") > 0);
    assert!(snap.event_count("ControllerUpdate") > 0);
}

#[test]
fn jsonl_sink_round_trips_through_serde() {
    let path =
        std::env::temp_dir().join(format!("telemetry-roundtrip-{}.jsonl", std::process::id()));
    let telemetry = Telemetry::to_jsonl(&path).expect("sink opens");
    observed_run(&telemetry, 600);
    telemetry.flush().expect("sink flushes");

    let raw = std::fs::read_to_string(&path).expect("sink written");
    std::fs::remove_file(&path).ok();
    let records: Vec<EventRecord> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("every line is a valid record"))
        .collect();
    assert_eq!(
        records.len() as u64,
        telemetry.snapshot().events_total,
        "the file holds the complete stream"
    );
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "file order equals sequence order");
        if i > 0 {
            assert!(r.time >= records[i - 1].time, "timestamps monotone");
        }
    }
    // The in-memory ring and the file agree on the tail of the stream.
    let ring = telemetry.recent_events();
    let tail = &records[records.len() - ring.len()..];
    assert_eq!(ring, tail);
}

#[test]
fn nan_sensor_readings_become_dropout_events() {
    let telemetry = Telemetry::enabled();
    let n = 200;
    let system = SystemBuilder::new(C)
        .cdn_delay(C as f64)
        .scheme(Scheme::iir_paper())
        .sensors(vec![SensorSpec::ideal(), SensorSpec::offset(f64::NAN)])
        .telemetry(telemetry.clone())
        .build()
        .expect("two-sensor configuration is valid");
    let run = system.run(&Harmonic::new(0.0, 37.5 * C as f64, 0.0), n);

    // The healthy sensor keeps the loop running on finite readings.
    assert!(run.samples().iter().all(|s| s.tau.is_finite()));

    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter("core.sensor_dropouts"),
        Some(n as u64),
        "one dropout per sample from the NaN sensor"
    );
    assert_eq!(snap.event_count("SensorDropout"), n as u64);
    let dropped: Vec<u64> = telemetry
        .recent_events()
        .iter()
        .filter_map(|r| match r.event {
            Event::SensorDropout { sensor } => Some(sensor),
            _ => None,
        })
        .collect();
    assert!(!dropped.is_empty());
    assert!(
        dropped.iter().all(|&s| s == 1),
        "only the second sensor (index 1) drops out"
    );
}

/// Nested [`TraceScope`]s must reach the JSONL sink as `Span` events in
/// completion order — children before parents, each carrying the parent
/// id that reassembles the tree.
#[test]
fn span_events_reach_jsonl_children_first() {
    let path = std::env::temp_dir().join(format!("telemetry-spans-{}.jsonl", std::process::id()));
    let telemetry = Telemetry::to_jsonl(&path).expect("sink opens");
    telemetry.enable_tracing();
    {
        let outer = telemetry.scope("outer");
        assert!(outer.is_recording());
        {
            let _inner = telemetry.scope("inner");
            observed_run(&telemetry, 100);
        }
    }
    telemetry.flush().expect("sink flushes");
    let raw = std::fs::read_to_string(&path).expect("sink written");
    std::fs::remove_file(&path).ok();

    let spans: Vec<(u64, u64, String)> = raw
        .lines()
        .map(|l| serde_json::from_str::<EventRecord>(l).expect("valid record"))
        .filter_map(|r| match r.event {
            Event::Span {
                id, parent, name, ..
            } => Some((id, parent, name)),
            _ => None,
        })
        .collect();
    // The engine opens its own `engine.core` span inside `inner`, so the
    // completion (= emission) order is engine.core, inner, outer.
    assert_eq!(spans.len(), 3, "all scopes closed");
    let (engine_id, engine_parent, engine_name) = &spans[0];
    let (inner_id, inner_parent, inner_name) = &spans[1];
    let (outer_id, outer_parent, outer_name) = &spans[2];
    assert_eq!(engine_name, "engine.core", "deepest span emits first");
    assert_eq!(inner_name, "inner");
    assert_eq!(outer_name, "outer", "the root span emits last");
    assert_eq!(engine_parent, inner_id, "the engine nests under `inner`");
    assert_eq!(inner_parent, outer_id, "`inner` nests under `outer`");
    assert_eq!(*outer_parent, 0, "the outer span is a root");
    assert_ne!(engine_id, inner_id);
    assert_ne!(inner_id, outer_id);

    // The sorted span view reassembles the same tree, parents first.
    let tree = telemetry.trace_spans();
    assert_eq!(tree.len(), 3);
    assert_eq!(tree[0].name, "outer", "sorted by start time");
    assert_eq!(tree[1].parent, tree[0].id);
    assert_eq!(tree[2].parent, tree[1].id);
    assert!(tree[0].dur_us() >= tree[1].dur_us());
}

/// The Chrome-trace export must be a valid JSON document of complete
/// (`ph == "X"`) events that a JSON parser round-trips, with the span
/// tree recoverable from the `args.id` / `args.parent` fields.
#[test]
fn chrome_trace_export_round_trips_as_json() {
    let telemetry = Telemetry::enabled();
    telemetry.enable_tracing();
    {
        let mut outer = telemetry.scope("panel");
        outer.attr("points", 5);
        // `observed_run` adds the engine's own `engine.core` span under it.
        observed_run(&telemetry, 100);
    }
    let doc = telemetry.chrome_trace_json();
    let value: serde::Value = serde_json::from_str(&doc).expect("export is valid JSON");
    let obj = value.as_object().expect("top level is an object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v.as_array().expect("traceEvents is an array"))
        .expect("traceEvents present");
    assert_eq!(events.len(), 2);
    for ev in events {
        let fields = ev.as_object().expect("event is an object");
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("event field {name}"))
        };
        assert_eq!(get("ph"), serde::Value::Str("X".to_owned()));
        assert!(matches!(
            get("ts"),
            serde::Value::UInt(_) | serde::Value::Int(_)
        ));
        assert!(matches!(
            get("dur"),
            serde::Value::UInt(_) | serde::Value::Int(_)
        ));
        get("name");
        get("tid");
        get("args");
    }
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| {
            e.as_object()
                .and_then(|f| f.iter().find(|(k, _)| k == "name"))
                .and_then(|(_, v)| match v {
                    serde::Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
        })
        .collect();
    assert!(names.contains(&"panel".to_owned()));
    assert!(names.contains(&"engine.core".to_owned()));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let telemetry = Telemetry::disabled();
    observed_run(&telemetry, 300);
    assert!(!telemetry.is_enabled());
    assert!(telemetry.recent_events().is_empty());
    let snap = telemetry.snapshot();
    assert_eq!(snap.events_total, 0);
    assert!(snap.counters.is_empty());
}
