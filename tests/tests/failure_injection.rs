//! Failure injection: the system must stay well-behaved (no panics, no
//! non-finite signals, bounded state) under abusive inputs — saturating
//! mismatches, absurd variation amplitudes, degenerate configurations.

use adaptive_clock::ro::RoBounds;
use adaptive_clock::system::{Scheme, SensorSpec, SystemBuilder};
use integration_tests::all_schemes;
use variation::sources::{ConstantOffset, Harmonic, Waveform};

/// A mismatch far beyond the RO bounds: the controller saturates at the
/// design maximum and the system keeps running with a persistent error,
/// rather than diverging.
#[test]
fn ro_length_saturates_at_design_bounds() {
    let c = 64i64;
    let system = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::iir_paper())
        .ro_bounds(RoBounds { min: 32, max: 96 })
        .single_sensor_mu(-200.0) // would need l_RO = 264
        .build()
        .expect("valid");
    let run = system.run(&variation::sources::NoVariation, 3000);
    for s in run.samples() {
        assert!(
            s.lro <= 96.0,
            "RO length must respect max bound, got {}",
            s.lro
        );
        assert!(
            s.lro >= 32.0,
            "RO length must respect min bound, got {}",
            s.lro
        );
        assert!(s.tau.is_finite() && s.period.is_finite());
    }
    // the loop cannot close the gap; a persistent negative error remains
    let tail = run.skip(2500);
    assert!(
        tail.worst_negative_error() > 100.0,
        "saturated loop must report the uncovered mismatch"
    );
}

/// A variation so deep it would drive the period negative: the RO model
/// floors at one stage delay and time keeps advancing.
#[test]
fn period_floor_prevents_time_reversal() {
    let c = 8i64;
    let system = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::FreeRo { extra_length: 0 })
        .build()
        .expect("valid");
    let crush = ConstantOffset::new(-1000.0);
    let run = system.run(&crush, 500);
    assert_eq!(run.len(), 500);
    let mut prev = f64::MIN;
    for s in run.samples() {
        assert!(s.period >= 1.0, "period {} fell below one stage", s.period);
        assert!(s.time > prev, "time must advance monotonically");
        prev = s.time;
    }
}

/// NaN-producing waveform: the period floor absorbs the NaN (max(1.0)
/// selects the finite operand), so the run completes with finite times.
#[test]
fn nan_waveform_does_not_poison_the_run() {
    struct EvilWave;
    impl Waveform for EvilWave {
        fn value(&self, t: f64) -> f64 {
            if (5000.0..5200.0).contains(&t) {
                f64::NAN
            } else {
                0.0
            }
        }
        fn amplitude_bound(&self) -> f64 {
            0.0
        }
    }
    let system = SystemBuilder::new(64)
        .cdn_delay(64.0)
        .scheme(Scheme::FreeRo { extra_length: 0 })
        .build()
        .expect("valid");
    let run = system.run(&EvilWave, 300);
    for s in run.samples() {
        assert!(s.time.is_finite(), "edge times must stay finite");
        assert!(s.period.is_finite(), "periods must stay finite");
    }
}

/// Sensor dropout modelled as one sensor reading absurdly low: the loop
/// follows the worst sensor into saturation but recovers the moment the
/// reading returns (step back at t = 100 000).
#[test]
fn loop_recovers_from_transient_sensor_glitch() {
    let c = 64i64;
    // glitch low between t=64k and t=128k stage units
    struct Glitch;
    impl Waveform for Glitch {
        fn value(&self, t: f64) -> f64 {
            if (64_000.0..128_000.0).contains(&t) {
                -40.0
            } else {
                0.0
            }
        }
        fn amplitude_bound(&self) -> f64 {
            40.0
        }
    }
    let system = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::iir_paper())
        .sensors(vec![SensorSpec {
            offset: 0.0,
            dynamic: Some(std::sync::Arc::new(Glitch)),
            noise: None,
        }])
        .build()
        .expect("valid");
    let run = system.run(&variation::sources::NoVariation, 4000);
    // during the glitch the loop stretched the RO
    let mid: Vec<f64> = run
        .samples()
        .iter()
        .filter(|s| (70_000.0..120_000.0).contains(&s.time))
        .map(|s| s.lro)
        .collect();
    assert!(
        mid.iter().any(|&l| l > 95.0),
        "loop must chase the glitched sensor"
    );
    // well after recovery the loop is back at equilibrium
    let tail = run
        .samples()
        .iter()
        .filter(|s| s.time > 180_000.0)
        .collect::<Vec<_>>();
    assert!(!tail.is_empty(), "run must extend past recovery");
    for s in tail {
        assert!(
            (s.lro - c as f64).abs() <= 2.0,
            "post-glitch l_RO {} must return to ≈ c",
            s.lro
        );
    }
}

/// Degenerate configurations are rejected with typed errors, not panics.
#[test]
fn builder_rejects_degenerate_configs_for_every_scheme() {
    for scheme in all_schemes() {
        assert!(SystemBuilder::new(-3)
            .scheme(scheme.clone())
            .build()
            .is_err());
        assert!(SystemBuilder::new(64)
            .scheme(scheme.clone())
            .cdn_delay(f64::NAN)
            .build()
            .is_err());
        assert!(SystemBuilder::new(64)
            .scheme(scheme.clone())
            .sensors(vec![])
            .build()
            .is_err());
    }
}

/// Extreme but finite variation amplitudes: every scheme completes a run
/// with finite signals (the paper's model is additive, so nothing blows
/// up — the clock just gets slow).
#[test]
fn extreme_amplitudes_stay_finite_for_all_schemes() {
    let wild = Harmonic::new(500.0, 1000.0, 0.0);
    for scheme in all_schemes() {
        let system = SystemBuilder::new(64)
            .cdn_delay(64.0)
            .scheme(scheme.clone())
            .build()
            .expect("valid");
        let run = system.run(&wild, 1000);
        assert!(!run.is_empty());
        for s in run.samples() {
            assert!(
                s.tau.is_finite() && s.period.is_finite() && s.lro.is_finite(),
                "{}: non-finite sample {s:?}",
                scheme.label()
            );
        }
    }
}
