//! Sensor-noise rejection ablation: TDC measurement noise feeds straight
//! into the control error, so the control block's filtering matters. The
//! paper's IIR (a low-pass with DC-unity loop) averages the noise away;
//! TEAtime chases the sign of every noisy reading and random-walks.

use adaptive_clock::system::{Scheme, SensorSpec, SystemBuilder};
use clock_metrics::Summary;
use variation::sources::NoVariation;

fn lro_std(scheme: Scheme, sigma: f64) -> f64 {
    let system = SystemBuilder::new(64)
        .cdn_delay(64.0)
        .scheme(scheme)
        .sensors(vec![SensorSpec::ideal().with_noise(sigma, 2024)])
        .build()
        .expect("valid");
    let run = system.run(&NoVariation, 8000).skip(2000);
    let lro: Vec<f64> = run.samples().iter().map(|s| s.lro).collect();
    Summary::of(&lro).expect("non-empty").std
}

/// Under pure measurement noise (quiet die), the IIR keeps the RO length
/// markedly steadier than TEAtime.
#[test]
fn iir_rejects_sensor_noise_better_than_teatime() {
    let sigma = 2.0;
    let iir = lro_std(Scheme::iir_paper(), sigma);
    let tea = lro_std(Scheme::TeaTime, sigma);
    assert!(
        iir < 0.7 * tea,
        "IIR l_RO std {iir} should be well below TEAtime's {tea}"
    );
}

/// The induced period wobble grows with the noise level for both loops,
/// and vanishes when the noise does.
#[test]
fn noise_response_scales_with_sigma() {
    for scheme in [Scheme::iir_paper(), Scheme::TeaTime] {
        let s0 = lro_std(scheme.clone(), 0.0);
        let s1 = lro_std(scheme.clone(), 1.0);
        let s3 = lro_std(scheme.clone(), 3.0);
        assert!(
            s1 > s0,
            "{}: noise must perturb the loop ({s0} -> {s1})",
            scheme.label()
        );
        assert!(
            s3 > s1,
            "{}: more noise, more wobble ({s1} -> {s3})",
            scheme.label()
        );
    }
    // TEAtime's noiseless baseline is its quiescent hold (zero wander).
    assert!(lro_std(Scheme::TeaTime, 0.0) < 1e-9);
}

/// The free-running RO ignores its sensors entirely, so sensor noise
/// cannot move it — the degenerate but important control case.
#[test]
fn free_ro_is_immune_to_sensor_noise() {
    let std = lro_std(Scheme::FreeRo { extra_length: 0 }, 4.0);
    assert_eq!(std, 0.0);
}

/// Mean period stays pinned at the set-point under zero-mean noise: noise
/// must not bias the loop (the integer floor is the only asymmetry, worth
/// a fraction of a stage).
#[test]
fn zero_mean_noise_does_not_bias_the_period() {
    for scheme in [Scheme::iir_paper(), Scheme::TeaTime] {
        let system = SystemBuilder::new(64)
            .cdn_delay(64.0)
            .scheme(scheme.clone())
            .sensors(vec![SensorSpec::ideal().with_noise(2.0, 99)])
            .build()
            .expect("valid");
        let run = system.run(&NoVariation, 8000).skip(2000);
        let mean = run.mean_period();
        assert!(
            (mean - 64.0).abs() < 1.5,
            "{}: mean period {mean} drifted",
            scheme.label()
        );
    }
}
