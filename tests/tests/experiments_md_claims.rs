//! Guards EXPERIMENTS.md against code drift: the headline numbers quoted
//! in the document are re-measured here with tolerances. If one of these
//! tests fails after an intentional change, update EXPERIMENTS.md in the
//! same commit.

use experiments::config::PaperParams;
use experiments::runner::RunCtx;
use experiments::{fig7, fig8, fig9};

fn ctx() -> RunCtx {
    RunCtx::new(PaperParams::default())
}

/// EXPERIMENTS.md Fig. 7 table: margins per scheme per perturbation period.
#[test]
fn fig7_margin_table_matches_documentation() {
    let documented: &[(f64, &[(&str, f64)])] = &[
        (
            25.0,
            &[
                ("IIR RO", 7.0),
                ("Free RO", 7.0),
                ("TEAtime RO", 8.0),
                ("Fixed clock", 13.0),
            ],
        ),
        (
            37.5,
            &[
                ("IIR RO", 4.0),
                ("Free RO", 5.0),
                ("TEAtime RO", 5.0),
                ("Fixed clock", 13.0),
            ],
        ),
        (
            50.0,
            &[
                ("IIR RO", 3.0),
                ("Free RO", 4.0),
                ("TEAtime RO", 4.0),
                ("Fixed clock", 13.0),
            ],
        ),
    ];
    for (te, rows) in documented {
        let panel = fig7::run_panel(&ctx(), *te);
        let margins = fig7::panel_margins(&panel);
        for (label, want) in *rows {
            let got = margins
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .1;
            assert!(
                (got - want).abs() <= 1.0,
                "Te={te}c {label}: measured {got}, EXPERIMENTS.md says {want}"
            );
        }
    }
}

/// EXPERIMENTS.md Fig. 8 upper rows (selected): IIR plateau ≈ 0.83 at small
/// delay, 0.91 at t_clk = 10c; TEAtime crosses 1 near the right edge.
#[test]
fn fig8_upper_rows_match_documentation() {
    let r = fig8::run_upper(&ctx(), 9);
    let iir = adaptive_clock::system::Scheme::iir_paper();
    let tea = adaptive_clock::system::Scheme::TeaTime;
    let y_small = fig8::y_at(&r, &iir, 0.1);
    let y_large = fig8::y_at(&r, &iir, 10.0);
    assert!((y_small - 0.833).abs() < 0.03, "IIR @0.1c: {y_small}");
    assert!((y_large - 0.914).abs() < 0.05, "IIR @10c: {y_large}");
    let tea_large = fig8::y_at(&r, &tea, 10.0);
    assert!(
        tea_large > 1.0,
        "TEAtime must cross 1 by t_clk = 10c: {tea_large}"
    );
}

/// EXPERIMENTS.md Fig. 8 lower rows: above-1 hump near Te/c ≈ 3.65, free RO
/// first below 1, convergence by Te/c = 1000.
#[test]
fn fig8_lower_rows_match_documentation() {
    let r = fig8::run_lower(&ctx(), 9);
    let iir = adaptive_clock::system::Scheme::iir_paper();
    let free = adaptive_clock::system::Scheme::FreeRo { extra_length: 0 };
    // the hump: somewhere in 2..8 every scheme exceeds 1
    let hump = fig8::y_at(&r, &iir, 3.65);
    assert!(hump > 1.05, "IIR hump: {hump}");
    // convergence at the slow end
    let yi = fig8::y_at(&r, &iir, 1000.0);
    let yf = fig8::y_at(&r, &free, 1000.0);
    assert!((yi - 0.832).abs() < 0.03, "IIR @1000c: {yi}");
    assert!((yi - yf).abs() < 0.05, "IIR/free convergence: {yi} vs {yf}");
}

/// EXPERIMENTS.md Fig. 9 headline panel (t_clk = 0.75c, Te = 25c): the
/// free RO undercuts the IIR exactly at strongly negative mismatch, and the
/// quoted corner values hold.
#[test]
fn fig9_panel_rows_match_documentation() {
    let panel = fig9::run_panel(&ctx(), 0.75, 25.0, 9);
    let free = panel.series_named("Free RO").expect("series");
    let iir = panel.series_named("IIR RO").expect("series");
    let f_neg = free.nearest(-0.2).expect("point");
    let i_neg = iir.nearest(-0.2).expect("point");
    assert!(
        f_neg < i_neg,
        "at μ = -0.2c the free RO must win: {f_neg} vs {i_neg}"
    );
    assert!((f_neg - 0.908).abs() < 0.03, "free @-0.2: {f_neg}");
    let f_pos = free.nearest(0.2).expect("point");
    let i_pos = iir.nearest(0.2).expect("point");
    assert!((f_pos - 1.277).abs() < 0.05, "free @+0.2: {f_pos}");
    assert!(
        i_pos < 0.9,
        "IIR must stay well below 1 at μ = +0.2c: {i_pos}"
    );
}

/// EXPERIMENTS.md constraints section: stability bound M = 10.
#[test]
fn stability_bound_matches_documentation() {
    let h = zdomain::iir_paper_filter();
    let bound = zdomain::closedloop::max_stable_cdn_delay(&h, 50).expect("stable at M=0");
    assert_eq!(bound, 10, "EXPERIMENTS.md documents M = 10");
}

/// EXPERIMENTS.md ext-stability table values.
#[test]
fn stability_map_matches_documentation() {
    let rows = experiments::ext_stability::run(300);
    let get = |needle: &str| {
        rows.iter()
            .find(|r| r.label.contains(needle))
            .unwrap_or_else(|| panic!("row {needle}"))
    };
    assert_eq!(get("paper").max_stable_m, Some(10));
    assert_eq!(get("aggressive").max_stable_m, Some(3));
    assert_eq!(get("sluggish").max_stable_m, Some(51));
    let paper = get("paper");
    assert!((paper.radius_at_m1 - 0.809).abs() < 0.01);
    assert!((paper.phase_margin_deg.expect("crossing") - 70.8).abs() < 1.0);
    assert!((paper.sensitivity_peak - 1.42).abs() < 0.02);
}

/// EXPERIMENTS.md ext-faults headline numbers (the `--quick` chaos grid
/// is fully deterministic, so these are exact).
#[test]
fn ext_faults_headlines_match_documentation() {
    let cells = experiments::ext_faults::run(&ctx(), true);
    let injected: u64 = cells.iter().map(|c| c.injected).sum();
    assert_eq!(injected, 28, "EXPERIMENTS.md documents 28 strikes");
    let lane = |cell: &experiments::ext_faults::FaultCell, scheme: &str| {
        cell.lanes
            .iter()
            .find(|l| l.scheme == scheme)
            .unwrap_or_else(|| panic!("lane {scheme}"))
            .report
    };
    let cell = |label: &str| {
        cells
            .iter()
            .find(|c| c.class.label() == label)
            .unwrap_or_else(|| panic!("cell {label}"))
    };
    // the median vote erases a stuck-at sensor: 642 violations -> 0
    let stuck = cell("tdc-stuck-at");
    assert_eq!(lane(stuck, "IIR RO").violations, 642);
    assert_eq!(lane(stuck, "IIR+res RO").violations, 0);
    // hardened IIR survives SEUs with zero violations, one re-lock per strike
    for label in ["seu-ctl-state", "seu-lro-word"] {
        let seu = cell(label);
        let hardened = lane(seu, "IIR+res RO");
        assert_eq!(hardened.violations, 0, "{label}");
        assert_eq!(hardened.relock_events as u64, seu.injected, "{label}");
        assert!(lane(seu, "IIR RO").violations > 0, "{label}");
    }
    // a dying RO stage is fatal only without feedback
    let ro = cell("ro-stage-fail");
    assert_eq!(lane(ro, "Free RO").violations, 3148);
    assert!(lane(ro, "IIR RO").violations <= 4);
}
