//! Property-based integration tests over the full system API.

use adaptive_clock::system::{Scheme, SensorSpec, SystemBuilder};
use clock_metrics::margin;
use proptest::prelude::*;
use variation::sources::{Harmonic, NoVariation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The IIR loop cancels any static mismatch within the RO's authority:
    /// post-transient margin ≈ 0 regardless of μ.
    #[test]
    fn iir_cancels_any_static_mismatch(mu in -12.0f64..12.0) {
        let system = SystemBuilder::new(64)
            .cdn_delay(64.0)
            .scheme(Scheme::iir_paper())
            .single_sensor_mu(mu)
            .build()
            .expect("valid");
        let run = system.run(&NoVariation, 2500).skip(2000);
        prop_assert!(
            margin::required_margin(&run) <= 1.0,
            "μ={mu}: residual margin {}",
            margin::required_margin(&run)
        );
    }

    /// Relative adaptive period is invariant under exchanging μ's sign for
    /// the fixed clock baseline denominator... weaker but robust: the
    /// fixed clock's needed period is exactly c + max(e) − μ (within
    /// quantization), for any phase of the harmonic.
    #[test]
    fn fixed_clock_needed_period_is_analytic(
        mu in -10.0f64..10.0,
        phase in 0.0f64..std::f64::consts::TAU,
        te_over_c in 20.0f64..80.0,
    ) {
        let c = 64.0;
        let hodv = Harmonic::new(12.8, te_over_c * c, phase);
        let system = SystemBuilder::new(64)
            .scheme(Scheme::Fixed)
            .single_sensor_mu(mu)
            .build()
            .expect("valid");
        let run = system.run(&hodv, 8000).skip(1000);
        let needed = margin::needed_fixed_period(&run);
        let analytic = c + 12.8 - mu;
        prop_assert!(
            (needed - analytic).abs() <= 1.2,
            "needed {needed} vs analytic {analytic}"
        );
    }

    /// Adding a sensor can only increase (never decrease) the margin a
    /// free-running RO needs: the worst-of-N reading is monotone in the
    /// sensor set.
    #[test]
    fn free_ro_margin_monotone_in_sensors(
        offs in proptest::collection::vec(-8.0f64..8.0, 1..6),
        extra in -8.0f64..8.0,
    ) {
        let hodv = Harmonic::new(6.4, 64.0 * 40.0, 0.0);
        let margin_for = |offsets: &[f64]| -> f64 {
            let sensors: Vec<SensorSpec> =
                offsets.iter().map(|&o| SensorSpec::offset(o)).collect();
            let system = SystemBuilder::new(64)
                .cdn_delay(64.0)
                .scheme(Scheme::FreeRo { extra_length: 0 })
                .sensors(sensors)
                .build()
                .expect("valid");
            margin::required_margin(&system.run(&hodv, 4000).skip(500))
        };
        let base = margin_for(&offs);
        let mut bigger = offs.clone();
        bigger.push(extra);
        let grown = margin_for(&bigger);
        prop_assert!(
            grown + 1e-9 >= base,
            "adding a sensor shrank the margin: {base} -> {grown}"
        );
    }

    /// Runs are deterministic: identical configurations and waveforms give
    /// identical traces (no hidden global state anywhere in the tower).
    #[test]
    fn runs_are_pure_functions_of_config(
        mu in -5.0f64..5.0,
        te_over_c in 10.0f64..60.0,
        scheme_idx in 0usize..3,
    ) {
        let scheme = match scheme_idx {
            0 => Scheme::iir_paper(),
            1 => Scheme::TeaTime,
            _ => Scheme::FreeRo { extra_length: 2 },
        };
        let hodv = Harmonic::new(12.8, te_over_c * 64.0, 0.0);
        let build = || SystemBuilder::new(64)
            .cdn_delay(64.0)
            .scheme(scheme.clone())
            .single_sensor_mu(mu)
            .build()
            .expect("valid");
        let a = build().run(&hodv, 600);
        let b = build().run(&hodv, 600);
        prop_assert_eq!(a, b);
    }
}
