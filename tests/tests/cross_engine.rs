//! Cross-engine validation: the z-domain theory, the discrete fixed-M
//! loop, the dtsim block diagram and the event-driven engine must tell the
//! same story wherever their domains overlap.

use adaptive_clock::controller::{FloatIir, IirConfig};
use adaptive_clock::dtmodel::{build_fig4_model, probes};
use adaptive_clock::loopsim::{DiscreteLoop, LoopInputs};
use adaptive_clock::system::{Scheme, SystemBuilder};
use adaptive_clock::tdc::Quantization;
use integration_tests::assert_close;
use variation::sources::NoVariation;
use zdomain::closedloop;

/// z-domain steady-state predictions (final value theorem) vs the event
/// engine's actual settling values for a static mismatch.
#[test]
fn event_engine_settles_where_fvt_predicts() {
    let c = 64i64;
    let mu = -10.0;
    let system = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::IirFloat(IirConfig::paper()))
        .quantization(Quantization::None)
        .single_sensor_mu(mu)
        .build()
        .expect("valid");
    let run = system.run(&NoVariation, 3000).skip(2500);
    // FVT: δ(∞) = 0 and l_RO(∞) deviates by −μ from equilibrium — the
    // sensor offset maps one-to-one onto the z-domain μ input (a negative
    // offset lowers τ, so the loop stretches the RO by |μ|).
    let h = zdomain::iir_paper_filter();
    let dl_pred = closedloop::steady_state_length(&h, 1, 0.0, 0.0, mu).expect("stable loop");
    // dl_pred is the deviation from equilibrium for a unit-weighted step;
    // equilibrium is l_RO = c.
    let want_lro = c as f64 + dl_pred;
    let got_lro = run.samples().last().expect("samples recorded").lro;
    assert_close("steady-state l_RO", got_lro, want_lro, 0.5);
    let got_delta = run.samples().last().expect("samples recorded").delta;
    assert_close("steady-state δ", got_delta, 0.0, 0.05);
}

/// The dtsim diagram, the discrete loop, and the z-domain step response
/// agree on the full transient, not just the endpoint.
#[test]
fn three_way_transient_agreement() {
    let m = 1usize;
    let steps = 100usize;
    // 1. z-domain
    let h = zdomain::iir_paper_filter();
    let hd = closedloop::error_transfer(&h, m);
    let theory = hd.step_response(steps);
    // 2. discrete loop
    let ctrl = FloatIir::from_config(&IirConfig::paper(), 0.0).expect("paper config");
    let mut dl = DiscreteLoop::new(m, ctrl, Quantization::None);
    let one = |_: i64| 1.0;
    let zero = |_: i64| 0.0;
    let tr = dl.run(
        &LoopInputs {
            setpoint: &one,
            homogeneous: &zero,
            heterogeneous: &zero,
        },
        steps,
    );
    // 3. dtsim diagram
    let ctrl = FloatIir::from_config(&IirConfig::paper(), 0.0).expect("paper config");
    let mut sim =
        build_fig4_model(m, ctrl, |_| 1.0, |_| 0.0, |_| 0.0).expect("well-formed diagram");
    sim.run(steps as u64).expect("clean run");
    let dt_delta = sim.trace(probes::DELTA).expect("probe installed");

    for (k, &want) in theory.iter().enumerate() {
        assert_close(&format!("theory vs loop, k={k}"), tr.delta[k], want, 1e-9);
        assert_close(
            &format!("loop vs dtsim, k={k}"),
            dt_delta.samples()[k],
            tr.delta[k],
            1e-9,
        );
    }
}

/// Event engine vs discrete loop: for a *static* mismatch (no waveform
/// sampling-time skew at all), the two engines settle identically even
/// with integer quantization on.
#[test]
fn event_and_discrete_settle_identically_on_static_mismatch() {
    let c = 64i64;
    let mu = 7.0;
    // Event engine.
    let system = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::iir_paper())
        .single_sensor_mu(mu)
        .build()
        .expect("valid");
    let ev = system.run(&NoVariation, 2000).skip(1800);
    let ev_lro = ev.samples().last().expect("samples").lro;
    // Discrete loop (M = 1 since t_clk = c and T ≈ c at equilibrium).
    let ctrl = adaptive_clock::controller::IntIirControl::new(IirConfig::paper(), c)
        .expect("paper config");
    let mut dl = DiscreteLoop::new(1, ctrl, Quantization::Floor);
    let cs = |_: i64| c as f64;
    let zero = |_: i64| 0.0;
    let mus = move |_: i64| mu;
    let tr = dl.run(
        &LoopInputs {
            setpoint: &cs,
            homogeneous: &zero,
            heterogeneous: &mus,
        },
        2000,
    );
    let dl_lro = *tr.lro.last().expect("steps recorded");
    assert_close("event vs discrete settled l_RO", ev_lro, dl_lro, 1.0);
    // Both must hover at c - mu (loop cancels the mismatch).
    assert_close("settled l_RO vs c-μ", dl_lro, c as f64 - mu, 1.5);
}

/// Full circle: simulate the loop, *identify* a transfer function from the
/// simulated error sequence alone, and recover the Eq. (5) algebra — data
/// to theory with no analytic shortcut.
#[test]
fn identified_model_from_simulation_matches_eq5() {
    let m = 1usize;
    // Impulse in the set-point channel; record δ.
    let ctrl = FloatIir::from_config(&IirConfig::paper(), 0.0).expect("paper config");
    let mut dl = DiscreteLoop::new(m, ctrl, Quantization::None);
    let impulse = |n: i64| if n == 0 { 1.0 } else { 0.0 };
    let zero = |_: i64| 0.0;
    let tr = dl.run(
        &LoopInputs {
            setpoint: &impulse,
            homogeneous: &zero,
            heterogeneous: &zero,
        },
        400,
    );
    // Identify from the data.
    let h = zdomain::iir_paper_filter();
    let hd_true = closedloop::error_transfer(&h, m);
    let nb = hd_true.num().degree().unwrap_or(0);
    let na = hd_true.den().degree().unwrap_or(0);
    let fitted = zdomain::ident::fit_impulse_response(&tr.delta, nb, na)
        .expect("identification succeeds on clean data");
    // The identified model reproduces the analytic response and margins.
    let want = hd_true.impulse_response(300);
    let got = fitted.impulse_response(300);
    for k in 0..300 {
        assert_close(&format!("ident k={k}"), got[k], want[k], 1e-6);
    }
    let rad_true = hd_true.pole_radius().unwrap_or(0.0);
    let rad_fit = fitted.pole_radius().unwrap_or(0.0);
    assert_close("identified spectral radius", rad_fit, rad_true, 1e-3);
}

/// The closed-loop stability boundary from the Jury test matches observed
/// divergence of the discrete simulation as CDN depth grows.
#[test]
fn stability_boundary_matches_simulation() {
    let h = zdomain::iir_paper_filter();
    let bound = closedloop::max_stable_cdn_delay(&h, 100).expect("stable at M=0");
    let diverges = |m: usize| -> bool {
        let ctrl = FloatIir::from_config(&IirConfig::paper(), 0.0).expect("paper config");
        let mut dl = DiscreteLoop::new(m, ctrl, Quantization::None);
        let one = |_: i64| 1.0;
        let zero = |_: i64| 0.0;
        let tr = dl.run(
            &LoopInputs {
                setpoint: &one,
                homogeneous: &zero,
                heterogeneous: &zero,
            },
            4000,
        );
        let tail_worst = tr.delta[3500..].iter().fold(0.0f64, |a, d| a.max(d.abs()));
        tail_worst > 10.0
    };
    assert!(
        !diverges(bound),
        "loop at the stability bound M={bound} must converge"
    );
    assert!(
        diverges(bound + 2),
        "loop beyond the stability bound must diverge"
    );
}
