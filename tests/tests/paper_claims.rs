//! End-to-end checks of the paper's headline claims, driven exclusively
//! through the public APIs (the way a downstream user would).

use adaptive_clock::system::Scheme;
use clock_metrics::margin;
use clock_metrics::worked::WorkedExample;
use integration_tests::{all_schemes, paper_system, steady_run};
use variation::sources::{Harmonic, SingleEvent};

/// §IV-A headline: under a slow HoDV, every adaptive system needs less
/// margin than a fixed clock; the relative adaptive period sits below 1.
#[test]
fn adaptive_clocks_reduce_safety_margin_under_slow_hodv() {
    let hodv = Harmonic::new(12.8, 64.0 * 50.0, 0.0);
    let fixed = steady_run(&paper_system(Scheme::Fixed, 0.0), &hodv);
    let fixed_needed = margin::needed_fixed_period(&fixed);
    assert!(fixed_needed > 75.0, "fixed clock must pay the full 0.2c");
    for scheme in all_schemes() {
        if matches!(scheme, Scheme::Fixed) {
            continue;
        }
        let label = scheme.label();
        let run = steady_run(&paper_system(scheme, 0.0), &hodv);
        let ratio = margin::relative_adaptive_period(&run, &fixed);
        assert!(
            ratio < 0.95,
            "{label}: relative adaptive period {ratio} must be well below 1"
        );
    }
}

/// §V conclusion: "the free running ring oscillator can not be used alone
/// as a source of adaptive clock" — under heterogeneous variation it keeps
/// a persistent error that the IIR loop cancels.
#[test]
fn free_ro_cannot_fight_heterogeneous_variation_iir_can() {
    let mu = -12.0;
    let quiet = variation::sources::NoVariation;
    let free = steady_run(
        &paper_system(Scheme::FreeRo { extra_length: 0 }, mu),
        &quiet,
    );
    let iir = steady_run(&paper_system(Scheme::iir_paper(), mu), &quiet);
    assert!(
        margin::required_margin(&free) >= 11.0,
        "free RO margin {} must pay ≈ |μ|",
        margin::required_margin(&free)
    );
    assert!(
        margin::required_margin(&iir) <= 1.0,
        "IIR margin {} must be ≈ 0 after compensation",
        margin::required_margin(&iir)
    );
}

/// §II-A.2: single-event droop — no adaptive benefit once the CDN delay
/// exceeds half the event duration (Eq. 3 saturation).
#[test]
fn droop_benefit_vanishes_beyond_half_duration() {
    // Tν = 20c so the loop's intrinsic ~1-period measurement skew is small
    // relative to the droop (Eq. 3 is stated for the CDN delay alone).
    let c = 64.0;
    let droop = SingleEvent::new(12.8, 20.0 * c, 200.0 * c);
    let short_sys = adaptive_clock::system::SystemBuilder::new(64)
        .cdn_delay(0.5 * c) // t_clk = Tν/40
        .scheme(Scheme::FreeRo { extra_length: 0 })
        .build()
        .expect("valid");
    let long_sys = adaptive_clock::system::SystemBuilder::new(64)
        .cdn_delay(16.0 * c) // t_clk = 0.8·Tν > Tν/2
        .scheme(Scheme::FreeRo { extra_length: 0 })
        .build()
        .expect("valid");
    let fixed_sys = adaptive_clock::system::SystemBuilder::new(64)
        .scheme(Scheme::Fixed)
        .build()
        .expect("valid");
    let short = short_sys.run(&droop, 20_000).skip(100);
    let long = long_sys.run(&droop, 20_000).skip(100);
    let fixed = fixed_sys.run(&droop, 20_000).skip(100);
    let m_short = margin::required_margin(&short);
    let m_long = margin::required_margin(&long);
    let m_fixed = margin::required_margin(&fixed);
    assert!(
        m_short < 0.35 * m_fixed,
        "short CDN must attenuate the droop: {m_short} vs fixed {m_fixed}"
    );
    assert!(
        m_long > 0.9 * m_fixed,
        "long CDN must see ≈ the full droop: {m_long} vs fixed {m_fixed}"
    );
}

/// §IV worked examples: the arithmetic the paper closes §IV with.
#[test]
fn worked_examples_reproduce_60_and_70_percent() {
    let a = WorkedExample::hodv_paper().compute();
    assert_eq!(a.margined_setpoint, 77);
    assert!((a.sm_reduction_pct - 60.0).abs() < 1e-9);
    let b = WorkedExample::hedv_paper().compute();
    assert_eq!(b.margined_setpoint, 90);
    assert!((b.sm_reduction_pct - 70.0).abs() < 1e-9);
}

/// §IV-A (Fig. 7 narration): the adaptation error shrinks monotonically
/// across the paper's three perturbation periods for the IIR RO.
#[test]
fn iir_margin_monotone_in_perturbation_period() {
    let mut margins = Vec::new();
    for te in [25.0, 37.5, 50.0] {
        let hodv = Harmonic::new(12.8, 64.0 * te, 0.0);
        let run = steady_run(&paper_system(Scheme::iir_paper(), 0.0), &hodv);
        margins.push(margin::required_margin(&run));
    }
    assert!(
        margins[0] >= margins[1] && margins[1] >= margins[2],
        "margins must not grow as Te grows: {margins:?}"
    );
    assert!(
        margins[2] < margins[0],
        "Te=50c must strictly beat Te=25c: {margins:?}"
    );
}

/// The paper's Eq. (8) design rule is not vacuous: an IIR violating it
/// fails to cancel a static mismatch (nonzero steady-state error), while
/// the compliant filter succeeds. Verified in the z-domain — the integer
/// implementation refuses to construct the invalid filter at all.
#[test]
fn eq10_violation_leaves_steady_state_error() {
    use zdomain::{closedloop, Polynomial, TransferFunction};
    // A "leaky" variant: D(1) != 0 (taps sum 4 but constant 5 ≠ 1/k*·…).
    let leaky = TransferFunction::new(
        Polynomial::delay(1),
        Polynomial::new(vec![5.0, -2.0, -1.0, -0.5, -0.25, -0.125, -0.125]),
    )
    .expect("causal");
    assert!(!closedloop::satisfies_constraints(&leaky));
    let err = closedloop::steady_state_error(&leaky, 1, 1.0, 0.0, 0.0).expect("stable");
    assert!(
        err.abs() > 0.1,
        "violating Eq. (8) must leave residual error, got {err}"
    );
    // The compliant paper filter: zero residual.
    let good = zdomain::iir_paper_filter();
    let err = closedloop::steady_state_error(&good, 1, 1.0, 0.0, 0.0).expect("stable");
    assert!(err.abs() < 1e-9);
    // And the integer control block rejects the violating gains outright.
    let bad_cfg = adaptive_clock::controller::IirConfig {
        kexp_exp: 3,
        k_star_exp: -1,
        tap_exps: vec![1, 0, -1, -2, -3, -3],
    };
    assert!(adaptive_clock::controller::IntIirControl::new(bad_cfg, 64).is_err());
}
