//! Verifies the shift property that `clock-metrics` relies on for its
//! margin accounting: adding `m` stages of set-point (or design length)
//! shifts the whole `τ` trajectory by exactly `+m`, so the margin read off
//! a nominal run really is the margin a re-margined system would enjoy.

use adaptive_clock::system::{Scheme, SystemBuilder};
use clock_metrics::margin;
use integration_tests::steady_run;
use variation::sources::Harmonic;

fn hodv() -> Harmonic {
    Harmonic::new(12.8, 64.0 * 37.5, 0.0)
}

/// For the loop-controlled schemes, re-run with the set-point raised by the
/// measured margin and check the re-run is violation-free against the
/// original requirement, with the predicted mean period.
#[test]
fn setpoint_shift_eliminates_violations_for_iir() {
    shift_check(Scheme::iir_paper());
}

#[test]
fn setpoint_shift_eliminates_violations_for_teatime() {
    shift_check(Scheme::TeaTime);
}

fn shift_check(scheme: Scheme) {
    let c_req = 64i64;
    let nominal = SystemBuilder::new(c_req)
        .cdn_delay(c_req as f64)
        .scheme(scheme.clone())
        .build()
        .expect("valid");
    let run = steady_run(&nominal, &hodv());
    let m = margin::required_margin(&run).ceil() as i64;
    let mean_nominal = run.mean_period();

    let shifted = SystemBuilder::new(c_req + m)
        .cdn_delay(c_req as f64)
        .scheme(scheme.clone())
        .build()
        .expect("valid");
    let run2 = steady_run(&shifted, &hodv());
    // No sample may deliver fewer than c_req stages.
    let violations = run2
        .samples()
        .iter()
        .filter(|s| s.tau < c_req as f64)
        .count();
    assert_eq!(
        violations,
        0,
        "{}: margined system must be violation-free",
        scheme.label()
    );
    // Mean period shifts by m. The shift is exact in the discrete
    // per-period model; in the event engine the longer periods sample the
    // harmonic at slightly different phases, leaving a sub-stage residual.
    let want = mean_nominal + m as f64;
    assert!(
        (run2.mean_period() - want).abs() < 0.5,
        "{}: mean period {} vs predicted {}",
        scheme.label(),
        run2.mean_period(),
        want
    );
}

/// Free-running RO: the margin is added as design length.
#[test]
fn design_length_shift_for_free_ro() {
    let c_req = 64i64;
    let nominal = SystemBuilder::new(c_req)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::FreeRo { extra_length: 0 })
        .build()
        .expect("valid");
    let run = steady_run(&nominal, &hodv());
    let m = margin::required_margin(&run).ceil() as i64;

    let shifted = SystemBuilder::new(c_req)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::FreeRo { extra_length: m })
        .build()
        .expect("valid");
    let run2 = steady_run(&shifted, &hodv());
    let violations = run2
        .samples()
        .iter()
        .filter(|s| s.tau < c_req as f64)
        .count();
    assert_eq!(violations, 0, "margined free RO must be violation-free");
    // Same sampling-phase caveat as the set-point shift: sub-stage residual.
    assert!(
        (run2.mean_period() - (run.mean_period() + m as f64)).abs() < 0.5,
        "free RO mean period must shift by the margin (got {}, want {})",
        run2.mean_period(),
        run.mean_period() + m as f64
    );
}

/// Fixed clock: the margined period is `c + m`, and running a fixed system
/// at that set-point is violation-free against the original requirement.
#[test]
fn fixed_period_shift() {
    let c_req = 64i64;
    let nominal = SystemBuilder::new(c_req)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::Fixed)
        .build()
        .expect("valid");
    let run = steady_run(&nominal, &hodv());
    let needed = margin::needed_fixed_period(&run).ceil() as i64;
    assert!(needed > c_req, "the fixed clock must need real margin");

    let shifted = SystemBuilder::new(needed)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::Fixed)
        .build()
        .expect("valid");
    let run2 = steady_run(&shifted, &hodv());
    let violations = run2
        .samples()
        .iter()
        .filter(|s| s.tau < c_req as f64)
        .count();
    assert_eq!(violations, 0, "margined fixed clock must be violation-free");
}

/// The margin is tight: shaving 2 stages off the margined set-point must
/// reintroduce violations (otherwise the accounting overstates the cost).
#[test]
fn margin_is_tight_for_fixed_clock() {
    let c_req = 64i64;
    let nominal = SystemBuilder::new(c_req)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::Fixed)
        .build()
        .expect("valid");
    let run = steady_run(&nominal, &hodv());
    let needed = margin::needed_fixed_period(&run).ceil() as i64;

    let shaved = SystemBuilder::new(needed - 2)
        .cdn_delay(c_req as f64)
        .scheme(Scheme::Fixed)
        .build()
        .expect("valid");
    let run2 = steady_run(&shaved, &hodv());
    let violations = run2
        .samples()
        .iter()
        .filter(|s| s.tau < c_req as f64)
        .count();
    assert!(violations > 0, "under-margined fixed clock must violate");
}
