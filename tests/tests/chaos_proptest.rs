//! Chaos property tests: an *arbitrary* fault schedule, run through any
//! control scheme with or without hardening, must never panic and must
//! never leak NaN/Inf into the margin and violation metrics.
//!
//! These are the robustness counterparts of `proptest_system.rs`: instead
//! of sweeping variation parameters, they sweep the fault space itself
//! (class, rate, seed) and check the *accounting* stays well-defined —
//! the simulated clock is allowed to violate timing, it is not allowed to
//! produce meaningless numbers.

use adaptive_clock::batch::{BatchLoop, LaneController};
use adaptive_clock::controller::IirConfig;
use adaptive_clock::event::Sample;
use adaptive_clock::loopsim::{constant, DiscreteLoop, LoopInputs};
use adaptive_clock::resilience::Resilience;
use adaptive_clock::system::RunTrace;
use adaptive_clock::tdc::Quantization;
use clock_faults::{FaultClass, FaultSchedule};
use clock_metrics::{margin, violation_report};
use proptest::prelude::*;

const C: i64 = 64;
const STEPS: usize = 600;
const SENSORS: usize = 3;

/// The scheme line-up every schedule is run through: unhardened and
/// hardened integer IIR, the float reference, TEAtime, and a free RO.
fn lanes() -> Vec<(LaneController, Resilience)> {
    let cfg = IirConfig::paper();
    vec![
        (
            LaneController::int_iir(&cfg, C).expect("paper config"),
            Resilience::default(),
        ),
        (
            LaneController::int_iir(&cfg, C).expect("paper config"),
            Resilience::hardened(C as f64),
        ),
        (
            LaneController::float_iir(&cfg, C as f64).expect("paper config"),
            Resilience::hardened(C as f64),
        ),
        (LaneController::teatime(C, 1.0), Resilience::default()),
        (LaneController::free(C), Resilience::hardened(C as f64)),
    ]
}

/// Adapt a faulted loop trace to the [`RunTrace`] the margin metrics
/// consume.
fn as_run_trace(tau: &[f64], lro: &[f64]) -> RunTrace {
    let samples = tau
        .iter()
        .zip(lro)
        .enumerate()
        .map(|(n, (&tau, &lro))| Sample {
            time: (n as f64 + 1.0) * C as f64,
            period: lro,
            tau,
            delta: C as f64 - tau,
            lro,
        })
        .collect();
    RunTrace::from_samples(C as f64, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (class, rate, seed) strike plan, through every scheme: the run
    /// completes, every recorded signal is finite, and every derived
    /// metric — `margin::required_margin`, `margin::adaptive_needed_period`,
    /// the full violation report — is finite.
    #[test]
    fn any_schedule_any_scheme_yields_finite_metrics(
        seed in 0u64..10_000,
        class_idx in 0usize..FaultClass::ALL.len(),
        rate in 0.25f64..12.0,
    ) {
        let class = FaultClass::ALL[class_idx];
        let schedule = FaultSchedule::random(seed, class, rate, STEPS as u64, SENSORS);
        let mut batch = BatchLoop::new();
        let line_up = lanes();
        let n_lanes = line_up.len();
        for (ctrl, resilience) in line_up {
            batch.push_with(1, ctrl, Quantization::Floor, schedule.clone(), resilience);
        }
        let setpoint = constant(C as f64);
        let zero = constant(0.0);
        let hodv = |n: i64| 3.2 * (std::f64::consts::TAU * n as f64 / 4000.0).sin();
        let inputs: Vec<LoopInputs<'_>> = (0..n_lanes)
            .map(|_| LoopInputs {
                setpoint: &setpoint,
                homogeneous: &hodv,
                heterogeneous: &zero,
            })
            .collect();
        let tr = batch.run(&inputs, STEPS);
        for lane in 0..n_lanes {
            let trace = tr.lane(lane);
            for (n, (&tau, &lro)) in trace.tau.iter().zip(&trace.lro).enumerate() {
                prop_assert!(tau.is_finite(), "lane {lane} τ[{n}] = {tau}");
                prop_assert!(lro.is_finite(), "lane {lane} l_RO[{n}] = {lro}");
            }
            let run = as_run_trace(&trace.tau, &trace.lro);
            let m = margin::required_margin(&run);
            prop_assert!(m.is_finite(), "lane {lane} required_margin {m}");
            let p = margin::adaptive_needed_period(&run);
            prop_assert!(p.is_finite(), "lane {lane} needed period {p}");
            let report = violation_report(C as f64, &trace.tau, 6.0, 2.0, 20);
            prop_assert!(report.violation_rate.is_finite());
            prop_assert!(report.worst_excursion.is_finite());
            prop_assert!(report.mean_time_to_relock.is_finite());
            prop_assert!(report.max_time_to_relock.is_finite());
        }
    }

    /// The inert guard: an *empty* schedule plus `Resilience::default()`
    /// must be bit-identical to a plain, fault-free run of the same lane —
    /// this is the property that keeps the committed `everything-quick`
    /// golden fixture byte-identical while the fault plumbing is wired
    /// through every engine.
    #[test]
    fn empty_schedule_and_default_resilience_are_bit_exact(
        mu in -6.0f64..6.0,
        amp in 0.0f64..8.0,
    ) {
        let cfg = IirConfig::paper();
        let hodv = move |n: i64| amp * (std::f64::consts::TAU * n as f64 / 900.0).sin();
        let het = move |_: i64| mu;
        let setpoint = constant(C as f64);
        let inputs = LoopInputs {
            setpoint: &setpoint,
            homogeneous: &hodv,
            heterogeneous: &het,
        };
        let ctrl = LaneController::int_iir(&cfg, C).expect("paper config");
        let mut plain = DiscreteLoop::new(1, ctrl.clone(), Quantization::Floor);
        let mut guarded = DiscreteLoop::new(1, ctrl, Quantization::Floor)
            .with_faults(FaultSchedule::new(SENSORS))
            .with_resilience(Resilience::default());
        let a = plain.run(&inputs, 400);
        let b = guarded.run(&inputs, 400);
        prop_assert_eq!(a, b);
    }
}

/// Faults make a lane diverge from its clean twin, and resetting the
/// batch restores run-to-run determinism (same schedule → same trace).
#[test]
fn faulted_runs_are_deterministic_across_reset() {
    let cfg = IirConfig::paper();
    let schedule = FaultSchedule::random(7, FaultClass::SeuLroWord, 4.0, STEPS as u64, SENSORS);
    let mut batch = BatchLoop::new();
    batch.push_with(
        1,
        LaneController::int_iir(&cfg, C).expect("paper config"),
        Quantization::Floor,
        schedule,
        Resilience::hardened(C as f64),
    );
    let setpoint = constant(C as f64);
    let zero = constant(0.0);
    let inputs = [LoopInputs {
        setpoint: &setpoint,
        homogeneous: &zero,
        heterogeneous: &zero,
    }];
    let first = batch.run(&inputs, STEPS);
    batch.reset();
    let second = batch.run(&inputs, STEPS);
    assert_eq!(first.lane(0), second.lane(0), "chaos must be reproducible");
}
