//! Ablation of the paper's additive variation model against the physically
//! grounded multiplicative one (stage delays scale by `1 + e/c_ref`).
//!
//! The paper models variations additively (its Fig. 4 injects `e` as a
//! plain summand). These tests quantify what that approximation costs: at
//! the paper's 20 % amplitudes and with the RO near the reference length,
//! nothing that changes any conclusion.

use adaptive_clock::ro::Coupling;
use adaptive_clock::system::{Scheme, SystemBuilder};
use clock_metrics::margin;
use variation::sources::Harmonic;

fn margin_with(coupling: Coupling, scheme: Scheme, te_over_c: f64) -> f64 {
    let c = 64i64;
    let hodv = Harmonic::new(0.2 * c as f64, te_over_c * c as f64, 0.0);
    let run = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(scheme)
        .coupling(coupling)
        .build()
        .expect("valid")
        .run(&hodv, 6000)
        .skip(1000);
    margin::required_margin(&run)
}

/// The two couplings agree to within about a stage for the loop-controlled
/// schemes, whose RO hovers near the reference length.
#[test]
fn couplings_agree_for_controlled_schemes() {
    for scheme in [Scheme::iir_paper(), Scheme::TeaTime] {
        for te in [25.0, 50.0] {
            let add = margin_with(Coupling::Additive, scheme.clone(), te);
            let mul = margin_with(Coupling::Multiplicative { c_ref: 64 }, scheme.clone(), te);
            assert!(
                (add - mul).abs() <= 1.5,
                "{} Te={te}c: additive {add} vs multiplicative {mul}",
                scheme.label()
            );
        }
    }
}

/// The free RO (fixed length = reference length) agrees even closer: the
/// couplings coincide exactly at `l_RO = c_ref`, so only quantization
/// differs.
#[test]
fn couplings_coincide_for_free_ro_at_reference_length() {
    let add = margin_with(Coupling::Additive, Scheme::FreeRo { extra_length: 0 }, 37.5);
    let mul = margin_with(
        Coupling::Multiplicative { c_ref: 64 },
        Scheme::FreeRo { extra_length: 0 },
        37.5,
    );
    assert!(
        (add - mul).abs() <= 1.0,
        "free RO: additive {add} vs multiplicative {mul}"
    );
}

/// Under multiplicative coupling the common-mode cancellation is exact in
/// a quiet-but-offset world: a constant slowdown is invisible to the loop.
#[test]
fn multiplicative_static_slowdown_is_invisible() {
    let c = 64i64;
    let slow = variation::sources::ConstantOffset::new(12.8); // +20% everywhere
    let run = SystemBuilder::new(c)
        .cdn_delay(c as f64)
        .scheme(Scheme::iir_paper())
        .coupling(Coupling::Multiplicative { c_ref: 64 })
        .build()
        .expect("valid")
        .run(&slow, 2000)
        .skip(200);
    // No timing error beyond quantization: the RO slows with the logic.
    assert!(
        run.worst_negative_error() <= 1.0,
        "margin {}",
        run.worst_negative_error()
    );
    // But the period is genuinely 20% longer — the clock adapted.
    assert!(
        (run.mean_period() - 76.8).abs() < 1.0,
        "mean period {}",
        run.mean_period()
    );
}

/// Where the couplings genuinely diverge: a compensated mismatch pushes
/// the RO away from the reference length, and the multiplicative model
/// then scales the variation with the longer chain. The divergence stays
/// second-order (≲ `|μ|/c_ref · amplitude`).
#[test]
fn divergence_bounded_when_ro_leaves_reference_length() {
    let c = 64i64;
    let mu = -12.0; // pushes l_RO to ≈ 76
    let hodv = Harmonic::new(0.2 * c as f64, 50.0 * c as f64, 0.0);
    let margin_of = |coupling: Coupling| {
        let run = SystemBuilder::new(c)
            .cdn_delay(c as f64)
            .scheme(Scheme::iir_paper())
            .coupling(coupling)
            .single_sensor_mu(mu)
            .build()
            .expect("valid")
            .run(&hodv, 6000)
            .skip(1500);
        margin::required_margin(&run)
    };
    let add = margin_of(Coupling::Additive);
    let mul = margin_of(Coupling::Multiplicative { c_ref: 64 });
    // second-order bound: (12/64)·12.8 ≈ 2.4 stages of slack plus a stage
    // of quantization
    assert!(
        (add - mul).abs() <= 3.5,
        "additive {add} vs multiplicative {mul}"
    );
}
